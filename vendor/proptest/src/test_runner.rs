//! Test-execution support: configuration, RNG, and case outcomes.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Config {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl Config {
    /// The default configuration with `cases` overridden.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases, ..Config::default() }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64, max_global_rejects: 65_536 }
    }
}

/// The RNG handed to strategies during a test.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// The underlying deterministic generator.
    pub rng: StdRng,
}

impl TestRng {
    /// A generator seeded from a stable hash of `name` (normally the test's
    /// module path), or from the `PROPTEST_SEED` environment variable when
    /// set — every run of a given test sees the same case sequence.
    pub fn deterministic(name: &str) -> TestRng {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(s.as_bytes())),
            Err(_) => fnv1a(name.as_bytes()),
        };
        TestRng { rng: StdRng::seed_from_u64(seed) }
    }
}

/// FNV-1a, enough to spread test names across seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` (not a failure).
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }

    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> TestCaseError {
        TestCaseError::Fail(e.to_string())
    }
}
