//! Offline vendored subset of the
//! [`proptest`](https://crates.io/crates/proptest) API.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of proptest the workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / `Just` / union / mapped strategies,
//! `prop::collection::vec`, `any::<T>()`, and the `prop_assert*` family.
//!
//! Two deliberate simplifications versus upstream:
//!
//! - **No shrinking.** A failing case reports the sampled inputs via the
//!   assertion message; it is not minimized.
//! - **Deterministic sampling.** The RNG is seeded from a hash of the test
//!   path (override with the `PROPTEST_SEED` environment variable), so a
//!   failure reproduces exactly on re-run.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategy constructors for collections (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Bounds on a generated collection's length: `[lo, hi)`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                self.lo
            } else {
                rng.rng.gen_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with element strategy and length bounds (a fixed
    /// `usize` or a `usize` range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Types with a canonical parameter-free strategy ([`any`]).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Canonical strategy source for a type.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary_sample(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rand::RngCore::next_u64(&mut rng.rng) as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> f64 {
            // Finite, spanning several orders of magnitude around zero.
            rng.rng.gen_range(-1.0e6..1.0e6)
        }
    }
}

pub use arbitrary::any;

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Discards the current case (resampled, not counted) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// A union of strategies with a common value type; each case picks one arm
/// uniformly (weights are accepted and ignored).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a `#[test]` that samples the strategies `config.cases` times and
/// runs the body, which may use `prop_assert*` / `prop_assume!` and `?`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many rejected cases ({rejected}); last: {why}",
                                    stringify!($name),
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed (case {} of {}):\n{msg}",
                                stringify!($name),
                                accepted + 1,
                                config.cases,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn config_default_and_with_cases() {
        assert!(ProptestConfig::default().cases > 0);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_honored(v in prop::collection::vec(any::<bool>(), 4),
                               w in prop::collection::vec(0u32..10, 1..5)) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!((1..5).contains(&w.len()));
            prop_assert!(w.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&k));
        }

        #[test]
        fn map_and_tuple(p in (0u32..4, 0u32..4).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(p % 10 < 4 && p / 10 < 4);
        }

        #[test]
        fn assume_discards(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(b in any::<bool>()) {
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn deterministic_rng_repeats() {
        use crate::strategy::Strategy;
        let s = 0.0f64..1.0;
        let mut r1 = crate::test_runner::TestRng::deterministic("seed-name");
        let mut r2 = crate::test_runner::TestRng::deterministic("seed-name");
        for _ in 0..20 {
            assert_eq!(s.sample(&mut r1).to_bits(), s.sample(&mut r2).to_bits());
        }
    }
}
