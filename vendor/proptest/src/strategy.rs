//! Value-generation strategies (sampling only — no shrinking).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy behind [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Object-safe strategy core, for type erasure.
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// A uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; every case picks one arm uniformly.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let k = rng.rng.gen_range(0..self.arms.len());
        self.arms[k].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
