//! Offline vendored subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace ships the small slice of `rand` it actually uses: the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, uniform range and
//! Bernoulli sampling, and a deterministic [`rngs::StdRng`] built on
//! xoshiro256++ seeded through SplitMix64.
//!
//! Determinism is a feature here, not an accident: the Monte Carlo engine
//! (`fts-montecarlo`) relies on `StdRng::seed_from_u64` producing the same
//! stream on every platform and every run. This implementation never reads
//! entropy from the OS.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// A sample of a [`Standard`]-distributed value (`f64` in `[0, 1)`,
    /// uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A 53-bit uniform float in `[0, 1)` from 64 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable without parameters (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// Generators constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed expanded with SplitMix64,
    /// matching upstream `rand`'s recommended construction.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and as a cheap standalone stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A new stream starting at `state`.
    pub fn new(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike upstream `rand` (ChaCha12), this vendored `StdRng` is a
    /// non-cryptographic xoshiro256++ — statistically strong, tiny, and
    /// fully reproducible from a `u64` seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: the small generator is the same xoshiro256++ here.
    pub type SmallRng = StdRng;

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (k, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[8 * k..8 * (k + 1)]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same == 0, "streams should be unrelated");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let ones = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&ones), "{ones} / 10000 heads");
    }

    #[test]
    fn unsized_rng_usable_through_references() {
        fn takes_dyn(rng: &mut dyn RngCore) -> bool {
            rng.gen_bool(0.5)
        }
        let mut rng = StdRng::seed_from_u64(6);
        takes_dyn(&mut rng);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
