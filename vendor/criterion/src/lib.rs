//! Offline vendored subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking API.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of criterion the workspace's benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion`] with groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], and [`black_box`].
//!
//! Measurement is honest but simple: after a warm-up, each benchmark runs
//! `sample_size` samples sized to fill `measurement_time`, and the report
//! prints min / mean / max per-iteration wall-clock time to stdout. There
//! are no plots, no statistical regression, and no saved baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box; prevents the optimizer from
/// deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints for [`Bencher::iter_batched`]; accepted for API
/// compatibility (every batch is one input here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter (used inside named groups).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Runs the measured routine; handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] but passing the input by reference.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Debug, Clone, Copy)]
struct BenchConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    config: BenchConfig,
}

impl Criterion {
    /// Consumes CLI configuration; a no-op in this vendored harness except
    /// that a non-bench invocation (`cargo test` passing `--test`) keeps
    /// working because benches only run from `criterion_main!`.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Disables plot generation (always disabled here).
    pub fn without_plots(self) -> Criterion {
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.config.measurement_time = d;
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_benchmark(&self.config, &id.into().id, f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Criterion {
        run_benchmark(&self.config, &id.into().id, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), config: self.config, _parent: self }
    }
}

/// A group of related benchmarks sharing configuration and a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: BenchConfig,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Accepted and ignored (no throughput reporting).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&self.config, &full, f);
        self
    }

    /// Runs one benchmark in the group with an explicit input.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&self.config, &full, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Throughput hints; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

fn run_benchmark(config: &BenchConfig, name: &str, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: one iteration to get a per-iter estimate.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let mut per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Warm up for roughly the configured duration.
    let warm_start = Instant::now();
    while warm_start.elapsed() < config.warm_up_time {
        let remaining = config.warm_up_time.saturating_sub(warm_start.elapsed());
        let iters = (remaining.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;
        b.iters = iters;
        f(&mut b);
        per_iter = (b.elapsed / iters as u32).max(Duration::from_nanos(1));
    }

    // Measure: `sample_size` samples sharing the measurement window.
    let per_sample = config.measurement_time / config.sample_size as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
    let mut samples = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        b.iters = iters;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{name:<50} time: [{} {} {}]  ({} samples × {iters} iters)",
        format_time(min),
        format_time(mean),
        format_time(max),
        samples.len(),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3)
    }

    #[test]
    fn bench_function_runs() {
        tiny().bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn groups_and_inputs_run() {
        let mut c = tiny();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).measurement_time(Duration::from_millis(10));
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &n| {
            b.iter(|| n * n)
        });
        g.bench_function(BenchmarkId::from_parameter("batched"), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
