//! The batch engine: deterministic scheduling, deadlines, retries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use fts_spice::linalg::SparseMatrix;
use fts_spice::{CancelToken, OpOptions, Simulator, SpiceError};

use crate::executor;
use crate::job::{Analysis, BatchReport, JobStats, SimJob, SimOutcome};
use crate::sink::WaveformSink;

/// A deadline-aware batch simulation scheduler.
///
/// Jobs execute on a work-stealing worker pool and come back in
/// **submission order**, bit-identical for any thread count (scheduling
/// affects only wall-clock time, never results). Each job gets a
/// cooperative [`CancelToken`] combining the batch-wide kill switch with
/// the job's own deadline; tokens are checked inside every Newton
/// iteration and at every transient timestep.
#[derive(Debug, Clone)]
pub struct Engine {
    threads: usize,
    share_symbolic: bool,
}

impl Engine {
    /// An engine using one worker per available core.
    pub fn new() -> Engine {
        Engine {
            threads: executor::auto_threads(),
            share_symbolic: true,
        }
    }

    /// Sets the worker count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Engine {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables the per-topology symbolic pre-pass (on by
    /// default): before scheduling, jobs whose netlists use the sparse
    /// solver are grouped by MNA sparsity pattern, and every group of two
    /// or more shares one symbolic factorization.
    pub fn share_symbolic(mut self, on: bool) -> Engine {
        self.share_symbolic = on;
        self
    }

    /// The configured worker count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Runs a batch to completion and returns submission-ordered
    /// outcomes.
    pub fn run(&self, jobs: Vec<SimJob>) -> BatchReport {
        self.run_cancellable(jobs, &CancelToken::new())
    }

    /// Like [`run`](Engine::run), with an external batch-wide kill
    /// switch: cancelling `batch` (from any thread) stops every queued
    /// and in-flight job at its next cancellation point. Cancelled jobs
    /// report [`SimOutcome::Cancelled`], not an error exit.
    pub fn run_cancellable(&self, mut jobs: Vec<SimJob>, batch: &CancelToken) -> BatchReport {
        let start = Instant::now();
        fts_telemetry::counter("engine.jobs.submitted", jobs.len() as u64);
        if fts_telemetry::enabled() {
            fts_telemetry::record("engine.queue.depth", jobs.len() as f64);
        }
        if self.share_symbolic {
            share_symbolics(&mut jobs);
        }

        let in_flight = AtomicU64::new(0);
        let indices: Vec<usize> = (0..jobs.len()).collect();
        let per_job = executor::map_blocks(&indices, self.threads, |_, &i| {
            let job = &jobs[i];
            let now_running = in_flight.fetch_add(1, Ordering::Relaxed) + 1;
            if fts_telemetry::enabled() {
                fts_telemetry::record("engine.jobs.in_flight", now_running as f64);
            }
            let result = execute(job, batch);
            in_flight.fetch_sub(1, Ordering::Relaxed);
            result
        });

        let mut outcomes = Vec::with_capacity(per_job.len());
        let mut stats = Vec::with_capacity(per_job.len());
        for (o, s) in per_job {
            outcomes.push(o);
            stats.push(s);
        }
        BatchReport {
            outcomes,
            stats,
            wall_s: start.elapsed().as_secs_f64(),
            threads: self.threads,
        }
    }

    /// Runs exactly one job on the calling thread with the same
    /// semantics, telemetry, and token derivation as the batch path —
    /// retry ladder, per-job deadline layered on the caller's `cancel`
    /// kill switch — so a served single-job submission is bit-identical
    /// to the same job inside [`run`](Engine::run). (The symbolic-sharing
    /// pre-pass only fires for groups of two or more jobs and never
    /// changes numeric results, so skipping it here is exact, not an
    /// approximation.)
    ///
    /// This is the execution hook `fts-server`'s queue workers pull jobs
    /// through.
    pub fn run_single(&self, job: &SimJob, cancel: &CancelToken) -> (SimOutcome, JobStats) {
        fts_telemetry::counter("engine.jobs.submitted", 1);
        execute(job, cancel)
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

/// Groups sparse-solver jobs by MNA sparsity pattern and shares one
/// symbolic factorization per group of two or more.
fn share_symbolics(jobs: &mut [SimJob]) {
    let mut groups: Vec<(SparseMatrix, Vec<usize>)> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        if !job.netlist.uses_sparse_solver() || job.netlist.shared_symbolic().is_some() {
            continue;
        }
        let pattern = job.netlist.mna_pattern();
        match groups.iter_mut().find(|(p, _)| p.same_pattern(&pattern)) {
            Some((_, members)) => members.push(i),
            None => groups.push((pattern, vec![i])),
        }
    }
    for (_, members) in groups {
        if members.len() < 2 {
            continue;
        }
        let symbolic = jobs[members[0]].netlist.mna_symbolic();
        fts_telemetry::counter("engine.symbolic.shared", members.len() as u64);
        for &i in &members {
            jobs[i].netlist.share_symbolic(symbolic.clone());
        }
    }
}

/// The shared per-job execution path: derives the job's cancel token
/// (deadline layered on the batch kill switch), runs the retry ladder,
/// and books outcome/latency telemetry. Both the batch scheduler and
/// [`Engine::run_single`] funnel through here, which is what makes their
/// outcomes identical.
fn execute(job: &SimJob, batch: &CancelToken) -> (SimOutcome, JobStats) {
    let token = match job.deadline {
        Some(budget) => batch.child_with_deadline(budget),
        None => batch.clone(),
    };
    // Install the job's flight recorder (if any) for the whole run; every
    // trace event the solver stack emits on this thread lands in the
    // job's own ring until the guard drops.
    let _recorder = job.trace.as_ref().map(fts_telemetry::trace::install);
    let t0 = Instant::now();
    let (outcome, attempts) = run_job(job, &token);
    let wall_s = t0.elapsed().as_secs_f64();
    // a = attempts consumed, b = wall seconds; detail is the outcome tag.
    fts_telemetry::trace::emit("job_done", outcome.kind(), attempts as f64, wall_s);

    match &outcome {
        SimOutcome::Failed { .. } => fts_telemetry::counter("engine.jobs.failed", 1),
        SimOutcome::Cancelled => fts_telemetry::counter("engine.jobs.cancelled", 1),
        SimOutcome::DeadlineExceeded { .. } => {
            fts_telemetry::counter("engine.jobs.deadline_exceeded", 1)
        }
        _ => fts_telemetry::counter("engine.jobs.succeeded", 1),
    }
    if attempts > 1 {
        fts_telemetry::counter("engine.jobs.retries", (attempts - 1) as u64);
    }
    if fts_telemetry::enabled() {
        // `record` keeps a log-scale histogram, so p50/p99 job latency
        // comes out of the snapshot directly.
        fts_telemetry::record("engine.job.wall_s", wall_s);
    }

    let stats = JobStats {
        label: job.label.clone(),
        wall_s,
        attempts,
    };
    (outcome, stats)
}

/// Runs one job through its retry ladder. Returns the outcome and the
/// number of attempts consumed.
fn run_job(job: &SimJob, token: &CancelToken) -> (SimOutcome, usize) {
    let fallback = [OpOptions::full()];
    let policies: &[OpOptions] = if job.retry.attempts.is_empty() {
        &fallback
    } else {
        &job.retry.attempts
    };

    let mut attempts = 0;
    let mut last_err = None;
    for opts in policies {
        attempts += 1;
        // Stamp subsequent trace events with the 0-based attempt index;
        // a = Newton iteration budget for the attempt.
        fts_telemetry::trace::set_attempt(attempts as u32 - 1);
        fts_telemetry::trace::emit("attempt", "", opts.max_iterations as f64, 0.0);
        match attempt(job, *opts, token) {
            Ok(outcome) => return (outcome, attempts),
            Err(e) if e.is_cancellation() => {
                let outcome = match e {
                    SpiceError::Cancelled { .. } => SimOutcome::Cancelled,
                    _ => SimOutcome::DeadlineExceeded { attempts },
                };
                // "cancelled" or "deadline_exceeded", a = attempts used.
                fts_telemetry::trace::emit(
                    match outcome {
                        SimOutcome::Cancelled => "cancelled",
                        _ => "deadline",
                    },
                    "",
                    attempts as f64,
                    0.0,
                );
                return (outcome, attempts);
            }
            Err(e) if e.is_retryable() => {
                if attempts < policies.len() {
                    // a = attempt that failed (0-based), next rung follows.
                    fts_telemetry::trace::emit("retry", "", attempts as f64 - 1.0, 0.0);
                }
                last_err = Some(e);
            }
            Err(e) => return (SimOutcome::Failed { error: e, attempts }, attempts),
        }
    }
    let error = last_err.expect("loop ran at least once and only falls through on Err");
    (SimOutcome::Failed { error, attempts }, attempts)
}

/// One attempt at the job's analysis under one operating-point policy.
fn attempt(job: &SimJob, opts: OpOptions, token: &CancelToken) -> Result<SimOutcome, SpiceError> {
    let sim = Simulator::new(&job.netlist)
        .op_options(opts)
        .cancel_token(token.clone());
    match &job.analysis {
        Analysis::Op => {
            // Warm-start: seed Newton from a caller-supplied operating
            // point when its length matches this netlist's unknown
            // vector; otherwise fall back to the cold flat start.
            let seed = job
                .initial
                .as_deref()
                .filter(|x| x.len() == job.netlist.unknown_count());
            sim.op_at(0.0, seed).map(SimOutcome::Op)
        }
        Analysis::DcSweep { source, values } => {
            let mut sim = sim;
            sim.dc_sweep(source, values).map(SimOutcome::Sweep)
        }
        Analysis::Transient {
            config,
            probes,
            max_samples,
        } => {
            let mut sink = WaveformSink::new(&job.netlist, probes, *max_samples);
            sim.transient_into(config, &mut sink)?;
            Ok(SimOutcome::Transient(sink.finish()))
        }
        Analysis::Ac { source, freqs } => sim.ac(source, freqs).map(SimOutcome::Ac),
    }
}
