//! The batch job model: what to simulate, how hard to try, and what came
//! back.

use std::time::Duration;

use fts_spice::analysis::{AcResult, OpResult, TranConfig};
use fts_spice::{Netlist, NodeId, OpOptions, SpiceError};
use fts_telemetry::trace::JobTrace;

use crate::sink::Waveforms;

/// Default retained-sample cap for transient jobs (see
/// [`crate::WaveformSink`]).
pub const DEFAULT_MAX_SAMPLES: usize = 4096;

/// The analysis a [`SimJob`] requests.
#[derive(Debug, Clone)]
pub enum Analysis {
    /// DC operating point at `t = 0`.
    Op,
    /// DC sweep of the named voltage source.
    DcSweep {
        /// Voltage source to sweep.
        source: String,
        /// Sweep values \[V\].
        values: Vec<f64>,
    },
    /// Transient analysis with bounded-memory waveform capture.
    Transient {
        /// Stepping, stop time, integrator.
        config: TranConfig,
        /// Nodes to record; empty = every non-ground node.
        probes: Vec<NodeId>,
        /// Retained-sample cap for the decimating sink.
        max_samples: usize,
    },
    /// Small-signal frequency sweep of the named source.
    Ac {
        /// Source carrying the unit AC phasor.
        source: String,
        /// Sweep frequencies \[Hz\].
        freqs: Vec<f64>,
    },
}

/// How a job's DC operating points escalate when Newton fails to
/// converge.
///
/// Each entry is one attempt's [`OpOptions`]; a later attempt runs only
/// when the previous one failed with a *retryable* error
/// ([`SpiceError::is_retryable`]). Fatal errors (singular matrix, invalid
/// netlist) and cancellations stop the ladder immediately.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Per-attempt operating-point policies, tried in order.
    pub attempts: Vec<OpOptions>,
}

impl RetryPolicy {
    /// One attempt with the full homotopy ladder inside — identical to
    /// what the legacy free functions did. This is the default.
    pub fn full() -> RetryPolicy {
        RetryPolicy {
            attempts: vec![OpOptions::full()],
        }
    }

    /// An explicit escalation ladder: plain Newton, then gmin stepping,
    /// then gmin + source stepping, then everything including
    /// pseudo-transient. Spends the least effort on easy circuits while
    /// keeping the heavyweight rungs available.
    pub fn ladder() -> RetryPolicy {
        let newton = OpOptions::newton_only();
        let gmin = OpOptions {
            gmin_stepping: true,
            source_stepping: false,
            pseudo_transient: false,
            ..OpOptions::full()
        };
        let gmin_source = OpOptions {
            gmin_stepping: true,
            source_stepping: true,
            pseudo_transient: false,
            ..OpOptions::full()
        };
        RetryPolicy {
            attempts: vec![newton, gmin, gmin_source, OpOptions::full()],
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::full()
    }
}

/// One unit of work for the batch engine: a netlist, an analysis, and the
/// execution policy around it.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// The circuit to simulate (owned: jobs move to worker threads).
    pub netlist: Netlist,
    /// The analysis to run.
    pub analysis: Analysis,
    /// Wall-clock budget; `None` = unbounded. Expiry is detected
    /// cooperatively inside Newton iterations and at every transient
    /// timestep, so an expired job stops within one timestep.
    pub deadline: Option<Duration>,
    /// Convergence escalation policy.
    pub retry: RetryPolicy,
    /// Free-form label echoed in the job's [`JobStats`].
    pub label: String,
    /// Optional flight recorder: when set, the engine installs it on the
    /// worker thread for the duration of the run, so every solver event
    /// the job produces lands in this ring. The submitter keeps a clone
    /// of the handle and snapshots it whenever it likes.
    pub trace: Option<JobTrace>,
    /// Optional Newton warm-start seed for [`Analysis::Op`] jobs: an
    /// unknown vector (length [`Netlist::unknown_count`]) from a
    /// previously solved same-topology circuit. Ignored for other
    /// analyses and when the length does not match. A seed only moves
    /// Newton's starting point — never what is solved — and the retry
    /// ladder behaves exactly as for a cold start if the seeded rung
    /// fails.
    pub initial: Option<Vec<f64>>,
}

impl SimJob {
    /// An operating-point job with default policy.
    pub fn op(netlist: Netlist) -> SimJob {
        SimJob {
            netlist,
            analysis: Analysis::Op,
            deadline: None,
            retry: RetryPolicy::full(),
            label: String::new(),
            trace: None,
            initial: None,
        }
    }

    /// A transient job recording every non-ground node.
    pub fn transient(netlist: Netlist, config: TranConfig) -> SimJob {
        SimJob {
            netlist,
            analysis: Analysis::Transient {
                config,
                probes: Vec::new(),
                max_samples: DEFAULT_MAX_SAMPLES,
            },
            deadline: None,
            retry: RetryPolicy::full(),
            label: String::new(),
            trace: None,
            initial: None,
        }
    }

    /// A DC-sweep job.
    pub fn dc_sweep(netlist: Netlist, source: &str, values: Vec<f64>) -> SimJob {
        SimJob {
            netlist,
            analysis: Analysis::DcSweep {
                source: source.to_owned(),
                values,
            },
            deadline: None,
            retry: RetryPolicy::full(),
            label: String::new(),
            trace: None,
            initial: None,
        }
    }

    /// An AC-sweep job.
    pub fn ac(netlist: Netlist, source: &str, freqs: Vec<f64>) -> SimJob {
        SimJob {
            netlist,
            analysis: Analysis::Ac {
                source: source.to_owned(),
                freqs,
            },
            deadline: None,
            retry: RetryPolicy::full(),
            label: String::new(),
            trace: None,
            initial: None,
        }
    }

    /// Sets the wall-clock deadline.
    pub fn deadline(mut self, budget: Duration) -> SimJob {
        self.deadline = Some(budget);
        self
    }

    /// Sets the retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> SimJob {
        self.retry = policy;
        self
    }

    /// Sets the label.
    pub fn label(mut self, label: &str) -> SimJob {
        self.label = label.to_owned();
        self
    }

    /// Attaches a flight recorder (see [`SimJob::trace`]). Keep a clone
    /// of the handle to read the journal back.
    pub fn trace(mut self, trace: JobTrace) -> SimJob {
        self.trace = Some(trace);
        self
    }

    /// Seeds Newton from a previously solved operating point (see
    /// [`SimJob::initial`]).
    pub fn initial(mut self, x: Vec<f64>) -> SimJob {
        self.initial = Some(x);
        self
    }

    /// Restricts which nodes a transient job records. No effect on other
    /// analyses.
    pub fn probes(mut self, nodes: &[NodeId]) -> SimJob {
        if let Analysis::Transient { probes, .. } = &mut self.analysis {
            *probes = nodes.to_vec();
        }
        self
    }

    /// Sets the transient retained-sample cap. No effect on other
    /// analyses.
    pub fn max_samples(mut self, cap: usize) -> SimJob {
        if let Analysis::Transient { max_samples, .. } = &mut self.analysis {
            *max_samples = cap;
        }
        self
    }
}

/// What a job produced. Timing lives in the separate [`JobStats`] so
/// outcomes compare equal across runs and thread counts.
#[derive(Debug, Clone, PartialEq)]
pub enum SimOutcome {
    /// Operating point solved.
    Op(OpResult),
    /// DC sweep completed, one operating point per value.
    Sweep(Vec<OpResult>),
    /// Transient completed; decimated waveforms.
    Transient(Waveforms),
    /// AC sweep completed.
    Ac(AcResult),
    /// Every permitted attempt failed with a non-recoverable error.
    Failed {
        /// The last error observed.
        error: SpiceError,
        /// Attempts consumed before giving up.
        attempts: usize,
    },
    /// The batch-wide kill switch fired while this job ran.
    Cancelled,
    /// The job's own wall-clock budget expired mid-analysis.
    DeadlineExceeded {
        /// Attempts consumed (including the one cut short).
        attempts: usize,
    },
}

impl SimOutcome {
    /// True for the three success variants.
    pub fn is_success(&self) -> bool {
        matches!(
            self,
            SimOutcome::Op(_) | SimOutcome::Sweep(_) | SimOutcome::Transient(_) | SimOutcome::Ac(_)
        )
    }

    /// Short machine-readable tag (used by the CLI report).
    pub fn kind(&self) -> &'static str {
        match self {
            SimOutcome::Op(_) => "op",
            SimOutcome::Sweep(_) => "sweep",
            SimOutcome::Transient(_) => "transient",
            SimOutcome::Ac(_) => "ac",
            SimOutcome::Failed { .. } => "failed",
            SimOutcome::Cancelled => "cancelled",
            SimOutcome::DeadlineExceeded { .. } => "deadline_exceeded",
        }
    }
}

/// Per-job execution statistics (separate from [`SimOutcome`] so outcomes
/// stay comparable across thread counts).
#[derive(Debug, Clone)]
pub struct JobStats {
    /// The job's label.
    pub label: String,
    /// Wall-clock time spent on the job \[s\].
    pub wall_s: f64,
    /// Solve attempts consumed.
    pub attempts: usize,
}

/// The result of a whole batch, in submission order.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One outcome per submitted job, submission-ordered.
    pub outcomes: Vec<SimOutcome>,
    /// One stats record per job, same order.
    pub stats: Vec<JobStats>,
    /// Wall-clock time for the whole batch \[s\].
    pub wall_s: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl BatchReport {
    /// Number of successful jobs.
    pub fn succeeded(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_success()).count()
    }
}
