//! Work-stealing parallel block executor.
//!
//! Extracted from `fts-montecarlo` (which re-exports it) so the batch
//! scheduler and the Monte Carlo engine share one executor. Work items are
//! grouped into *blocks*; a block is the unit of both scheduling and
//! accumulation. Workers pull block indices from a shared atomic counter
//! (cheap work stealing: an idle worker simply takes the next undone
//! block, so an unlucky thread stuck on slow work never gates the rest),
//! compute a per-block result sequentially, and send it back tagged with
//! its index. The caller merges results **in ascending block order**,
//! which is what makes every thread count — including the sequential
//! fallback — produce bit-identical output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

/// A reasonable worker count for this machine (at least 1).
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `trials` into `[start, end)` block ranges of at most `block_size`.
pub fn blocks(trials: u64, block_size: u64) -> Vec<(u64, u64)> {
    assert!(block_size > 0, "block_size must be positive");
    let mut out = Vec::with_capacity(trials.div_ceil(block_size) as usize);
    let mut start = 0;
    while start < trials {
        let end = (start + block_size).min(trials);
        out.push((start, end));
        start = end;
    }
    out
}

/// Runs `work` over every block and returns the results in block order.
///
/// `threads <= 1` (or a single block) runs inline on the caller's thread;
/// otherwise a scoped thread pool drains an atomic work queue. Both paths
/// invoke `work` with exactly the same `(block_index, block)` pairs and
/// order the results identically, so the output is independent of the
/// thread count.
///
/// # Panics
///
/// Propagates panics from `work` (scoped threads join on exit).
pub fn map_blocks<B, R, F>(block_list: &[B], threads: usize, work: F) -> Vec<R>
where
    B: Sync,
    R: Send,
    F: Fn(usize, &B) -> R + Sync,
{
    let threads = threads.max(1).min(block_list.len().max(1));
    if threads <= 1 || block_list.len() <= 1 {
        fts_telemetry::counter("engine.executor.workers", 1);
        fts_telemetry::counter("engine.executor.blocks", block_list.len() as u64);
        if fts_telemetry::enabled() {
            fts_telemetry::record("engine.executor.blocks_per_worker", block_list.len() as f64);
        }
        return block_list
            .iter()
            .enumerate()
            .map(|(k, b)| work(k, b))
            .collect();
    }

    fts_telemetry::counter("engine.executor.workers", threads as u64);
    fts_telemetry::counter("engine.executor.blocks", block_list.len() as u64);
    let next = AtomicU64::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let work = &work;
            scope.spawn(move || {
                // Blocks this worker pulled from the shared queue; the
                // spread across workers shows how uneven the work was.
                let mut taken = 0u64;
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed) as usize;
                    if k >= block_list.len() {
                        break;
                    }
                    taken += 1;
                    // A send can only fail if the receiver is gone, which
                    // cannot happen while this scope holds `rx` alive below.
                    let _ = tx.send((k, work(k, &block_list[k])));
                }
                if fts_telemetry::enabled() {
                    fts_telemetry::record("engine.executor.blocks_per_worker", taken as f64);
                }
            });
        }
        drop(tx);
        let mut tagged: Vec<(usize, R)> = rx.iter().collect();
        tagged.sort_by_key(|(k, _)| *k);
        tagged.into_iter().map(|(_, r)| r).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cover_range_exactly() {
        assert_eq!(blocks(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(blocks(8, 4), vec![(0, 4), (4, 8)]);
        assert_eq!(blocks(3, 100), vec![(0, 3)]);
        assert!(blocks(0, 4).is_empty());
    }

    #[test]
    fn parallel_matches_sequential_order() {
        let bl = blocks(1000, 7);
        let f = |k: usize, b: &(u64, u64)| (k as u64) * 1_000_000 + b.0 * 1000 + b.1;
        let seq = map_blocks(&bl, 1, f);
        for threads in [2, 3, 8] {
            assert_eq!(map_blocks(&bl, threads, f), seq, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_blocks_is_fine() {
        let bl = blocks(3, 1);
        let out = map_blocks(&bl, 64, |k, b| (k, *b));
        assert_eq!(out, vec![(0, (0, 1)), (1, (1, 2)), (2, (2, 3))]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        let bl: Vec<u64> = (0..32).collect();
        let out = map_blocks(&bl, 4, |_, &b| {
            // Make late blocks finish first.
            std::thread::sleep(std::time::Duration::from_micros((32 - b) * 50));
            b * 2
        });
        assert_eq!(out, (0..32).map(|b| b * 2).collect::<Vec<_>>());
    }
}
