//! Bounded-memory waveform capture for batch transient jobs.
//!
//! A naive transient collects every unknown at every timestep — for a
//! batch of long runs that is the dominant memory cost. [`WaveformSink`]
//! records only the probed nodes and holds at most `max_samples` rows: when
//! the buffer fills it drops every other retained sample and doubles its
//! keep-stride, so memory stays bounded while coverage stays uniform over
//! the whole run. The decimation decision depends only on the sample
//! sequence, never on timing, so results are bit-identical across worker
//! counts.

use fts_spice::{Netlist, NodeId, SampleSink};

/// A decimated multi-node waveform, the transient payload of a
/// [`SimOutcome`](crate::SimOutcome).
#[derive(Debug, Clone, PartialEq)]
pub struct Waveforms {
    probes: Vec<NodeId>,
    time: Vec<f64>,
    /// One row per retained sample, one column per probe.
    samples: Vec<Vec<f64>>,
    stride: usize,
    total_samples: usize,
}

impl Waveforms {
    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Retained sample instants \[s\].
    pub fn time(&self) -> &[f64] {
        &self.time
    }

    /// The probed nodes, in column order.
    pub fn probes(&self) -> &[NodeId] {
        &self.probes
    }

    /// Final keep-stride: 1 means nothing was decimated; `2^k` means the
    /// buffer overflowed `k` times.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Samples the integrator produced (before decimation).
    pub fn total_samples(&self) -> usize {
        self.total_samples
    }

    /// The retained waveform of a probed node, or `None` when the node was
    /// not probed.
    pub fn voltage(&self, node: NodeId) -> Option<Vec<f64>> {
        let col = self.probes.iter().position(|&p| p == node)?;
        Some(self.samples.iter().map(|row| row[col]).collect())
    }

    /// Voltage of probe column `col` at retained sample `k` \[V\].
    pub fn voltage_at(&self, col: usize, k: usize) -> f64 {
        self.samples[k][col]
    }
}

/// A [`SampleSink`] that captures selected node voltages with
/// stride-doubling decimation.
pub struct WaveformSink {
    probes: Vec<NodeId>,
    /// Unknown-vector column per probe; `usize::MAX` marks ground (always
    /// 0 V, not part of the unknown vector).
    columns: Vec<usize>,
    max_samples: usize,
    stride: usize,
    seen: usize,
    time: Vec<f64>,
    samples: Vec<Vec<f64>>,
}

impl WaveformSink {
    /// A sink recording `probes` (every non-ground node when empty),
    /// keeping at most `max_samples` rows.
    ///
    /// # Panics
    ///
    /// Panics when `max_samples < 2` — decimation needs room to keep both
    /// endpoints of a halved buffer.
    pub fn new(netlist: &Netlist, probes: &[NodeId], max_samples: usize) -> WaveformSink {
        assert!(max_samples >= 2, "max_samples must be at least 2");
        let probes: Vec<NodeId> = if probes.is_empty() {
            (1..netlist.node_count())
                .map(|i| netlist.node_id(i))
                .collect()
        } else {
            probes.to_vec()
        };
        let columns = probes
            .iter()
            .map(|p| {
                if p.index() == 0 {
                    usize::MAX
                } else {
                    p.index() - 1
                }
            })
            .collect();
        WaveformSink {
            probes,
            columns,
            max_samples,
            stride: 1,
            seen: 0,
            time: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// Consumes the sink into its captured [`Waveforms`].
    pub fn finish(self) -> Waveforms {
        Waveforms {
            probes: self.probes,
            time: self.time,
            samples: self.samples,
            stride: self.stride,
            total_samples: self.seen,
        }
    }
}

impl SampleSink for WaveformSink {
    fn accept(&mut self, t: f64, x: &[f64]) {
        let keep = self.seen.is_multiple_of(self.stride);
        self.seen += 1;
        if !keep {
            return;
        }
        let row: Vec<f64> = self
            .columns
            .iter()
            .map(|&c| if c == usize::MAX { 0.0 } else { x[c] })
            .collect();
        self.time.push(t);
        self.samples.push(row);
        if self.time.len() >= self.max_samples {
            // Drop every other retained row (keeping the oldest) and keep
            // only every 2·stride-th future sample.
            let mut w = 0;
            for r in (0..self.time.len()).step_by(2) {
                self.time.swap(w, r);
                self.samples.swap(w, r);
                w += 1;
            }
            self.time.truncate(w);
            self.samples.truncate(w);
            self.stride *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_spice::netlist::Waveform;

    fn rc() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        nl.resistor("R1", a, b, 1e3).unwrap();
        nl.capacitor("C1", b, Netlist::GROUND, 1e-9).unwrap();
        nl
    }

    #[test]
    fn unbounded_run_keeps_everything() {
        let nl = rc();
        let mut sink = WaveformSink::new(&nl, &[], 1024);
        for k in 0..100 {
            sink.accept(k as f64, &[1.0, 0.5, -0.1]);
        }
        let w = sink.finish();
        assert_eq!(w.len(), 100);
        assert_eq!(w.stride(), 1);
        assert_eq!(w.total_samples(), 100);
        // Empty probe list = every non-ground node (a, b).
        assert_eq!(w.probes().len(), 2);
    }

    #[test]
    fn overflow_decimates_and_doubles_stride() {
        let nl = rc();
        let cap = 16;
        let mut sink = WaveformSink::new(&nl, &[], cap);
        for k in 0..1000 {
            sink.accept(k as f64, &[k as f64, 0.0, 0.0]);
        }
        let w = sink.finish();
        assert!(w.len() < cap, "stays under the cap: {}", w.len());
        assert!(w.stride() >= 64, "stride grew: {}", w.stride());
        assert_eq!(w.total_samples(), 1000);
        // Retained samples are uniformly strided from t = 0.
        for pair in w.time().windows(2) {
            assert_eq!(pair[1] - pair[0], w.stride() as f64);
        }
        assert_eq!(w.time()[0], 0.0);
    }

    #[test]
    fn decimation_is_deterministic() {
        let nl = rc();
        let run = || {
            let mut sink = WaveformSink::new(&nl, &[], 32);
            for k in 0..777 {
                sink.accept(k as f64 * 1e-9, &[(k % 7) as f64, 1.0, 0.0]);
            }
            sink.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ground_probe_reads_zero() {
        let nl = rc();
        let mut sink = WaveformSink::new(&nl, &[Netlist::GROUND], 8);
        sink.accept(0.0, &[5.0, 5.0, 5.0]);
        let w = sink.finish();
        assert_eq!(w.voltage(Netlist::GROUND).unwrap(), vec![0.0]);
    }
}
