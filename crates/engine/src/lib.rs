//! `fts-engine` — a deadline-aware batch simulation scheduler for
//! four-terminal switching-lattice circuits.
//!
//! The repro binaries and the Monte Carlo evaluator all reduce to the same
//! shape of work: *many independent SPICE analyses over structurally
//! similar netlists*. This crate gives that shape one engine:
//!
//! * [`SimJob`] — netlist + analysis ([`Analysis`]) + execution policy
//!   (per-job deadline, [`RetryPolicy`], waveform probes);
//! * [`Engine`] — a work-stealing worker pool (see [`executor`]) that
//!   returns **submission-ordered, thread-count-independent**
//!   [`SimOutcome`]s in a [`BatchReport`];
//! * cooperative cancellation — each job runs under a
//!   [`CancelToken`](fts_spice::CancelToken) combining the batch kill
//!   switch with the job's own deadline, checked inside every Newton
//!   iteration and at every transient timestep, so deadline expiry is
//!   detected within one timestep and reported as
//!   [`SimOutcome::DeadlineExceeded`] rather than an error exit;
//! * a retry ladder — failed attempts escalate through progressively
//!   stronger [`OpOptions`](fts_spice::OpOptions) rungs, but only for
//!   *retryable* errors ([`SpiceError::is_retryable`](fts_spice::SpiceError::is_retryable));
//!   fatal errors and cancellations stop immediately;
//! * bounded-memory waveforms — transient jobs stream into a decimating
//!   [`WaveformSink`] instead of collecting every sample;
//! * per-topology symbolic sharing — same-pattern sparse jobs in a batch
//!   share one symbolic factorization automatically.
//!
//! # Example
//!
//! ```
//! use fts_engine::{Engine, SimJob, SimOutcome};
//! use fts_spice::netlist::{Netlist, Waveform};
//!
//! let mut nl = Netlist::new();
//! let a = nl.node("a");
//! nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))?;
//! nl.resistor("R1", a, Netlist::GROUND, 1.0e3)?;
//!
//! let report = Engine::new().threads(2).run(vec![
//!     SimJob::op(nl.clone()).label("op"),
//!     SimJob::dc_sweep(nl, "V1", vec![0.0, 0.5, 1.0]).label("sweep"),
//! ]);
//! assert_eq!(report.succeeded(), 2);
//! match &report.outcomes[0] {
//!     SimOutcome::Op(op) => assert!((op.voltage(a) - 1.0).abs() < 1e-9),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! # Ok::<(), fts_spice::SpiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod engine;
pub mod executor;
mod job;
mod sink;

pub use cache::{
    cache_key, params_vector, topology_hash, CacheKey, CacheMode, CacheStats, CachedResult,
    ResultCache, CACHE_KEY_VERSION, DEFAULT_CACHE_BYTES,
};
pub use engine::Engine;
pub use job::{
    Analysis, BatchReport, JobStats, RetryPolicy, SimJob, SimOutcome, DEFAULT_MAX_SAMPLES,
};
pub use sink::{WaveformSink, Waveforms};
