//! Content-addressed result caching and Newton warm-start reuse.
//!
//! The paper's workloads are massively repetitive: the same XOR3 / Fig. 11
//! lattices and NPN-class truth-table circuits are re-simulated under small
//! parameter perturbations, millions of times. This module turns that
//! repetition into two wins:
//!
//! * a **canonicalizer** ([`cache_key`]) that maps a [`SimJob`] to a stable
//!   128-bit content hash — independent of node creation order, device card
//!   order, and internal node names, but float-bit-exact in every parameter
//!   (`f64::to_bits`), versioned as [`CACHE_KEY_VERSION`];
//! * a **bounded LRU result cache** ([`ResultCache`]) keyed by that hash,
//!   with entry- and byte-caps, hit/miss/eviction counters, and a
//!   **warm-start index**: the most recent operating points per concrete
//!   topology ([`topology_hash`]), so a cache *miss* whose topology was seen
//!   before can seed Newton from the nearest cached solution
//!   ([`ResultCache::warm_lookup`]) instead of a flat start.
//!
//! # Key definition (`cache_key/1`)
//!
//! Two jobs share a key iff they are the *same computation*: the same
//! circuit up to node relabeling/reordering, the same analysis (including
//! every numeric parameter, bit-exact), the same retry ladder (homotopy
//! rungs can select different solutions of multi-stable circuits, so the
//! ladder is part of the key), and the same rendering options the caller
//! folds in ([`cache_key`]'s `waveform` bit). Labels, deadlines, and trace
//! handles are *not* part of the key: they never change the deterministic
//! result object.
//!
//! Node-order independence comes from Weisfeiler–Leman color refinement:
//! nodes start from role colors (ground / distinguished output / probe /
//! plain), then repeatedly absorb the sorted multiset of their incident
//! device signatures until the color partition stabilizes. Device cards are
//! hashed as a sorted multiset of (kind, parameter bits, terminal colors),
//! so card order cannot matter either. Refinement can in principle assign
//! equal colors to non-isomorphic regular graphs; for MNA circuit graphs
//! with distinguished ground/output nodes and parameter-colored devices
//! this is a theoretical corner, and the 128-bit key keeps accidental
//! collisions out of reach in practice.
//!
//! # Warm-start safety
//!
//! The warm index is keyed by [`topology_hash`] — the *insertion-order*
//! structural hash (same equivalence as
//! [`Netlist::same_topology`](fts_spice::Netlist::same_topology)) — because
//! an unknown vector is only meaningful for a netlist with the same node
//! and branch numbering it was solved under. A seed never changes *what*
//! is solved, only where Newton starts; if the warmed rung fails, the
//! existing homotopy ladder runs unchanged. Seeds at parameter distance
//! zero are excluded: an identical circuit must reproduce the cached
//! result bit-for-bit, which only a cache hit (or an identical cold run)
//! guarantees. Seeds beyond [`WARM_MAX_RELATIVE_STEP`] in any parameter
//! are excluded too: a solution from a different operating regime (say a
//! flipped input pattern) makes Newton converge *slower* than the
//! default start, so only genuinely nearby operating points are reused.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::Mutex;

use fts_spice::netlist::{DeviceView, Waveform};
use fts_spice::{Netlist, NodeId, OpOptions};

use crate::job::{Analysis, SimJob};

/// The canonicalizer version tag, bumped whenever the byte stream feeding
/// the hash changes shape. Rendered into every [`CacheKey`] display form,
/// so persisted or compared keys can never silently cross versions.
pub const CACHE_KEY_VERSION: &str = "cache_key/1";

/// Warm operating points retained per topology (drop-oldest).
const WARM_POINTS_PER_TOPOLOGY: usize = 8;

/// A warm seed only helps when it is *near* the solution being sought:
/// seeding Newton from a different operating regime (say, a flipped
/// input pattern that switches device states) converges slower than the
/// default start and the homotopy ladder. A stored point qualifies only
/// if every parameter moved by at most this fraction of `1 + |value|`.
const WARM_MAX_RELATIVE_STEP: f64 = 0.1;

/// Default byte budget for retained result payloads: 64 MiB.
pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

// ---------------------------------------------------------------------------
// Cache mode
// ---------------------------------------------------------------------------

/// Per-submission cache policy (the wire schema's `"cache"` member).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Consult the cache, serve hits, store results, warm-start misses.
    #[default]
    Default,
    /// Ignore the cache entirely: no lookup, no store, no warm-start.
    /// This is byte-for-byte the legacy cold execution path.
    Bypass,
    /// Recompute cold (no lookup, no warm-start) and overwrite the cached
    /// entry — the escape hatch after a solver or model change.
    Refresh,
}

impl CacheMode {
    /// Parses the wire value. `None` for unknown values (callers answer a
    /// structured 400).
    #[must_use]
    pub fn parse(s: &str) -> Option<CacheMode> {
        match s {
            "default" => Some(CacheMode::Default),
            "bypass" => Some(CacheMode::Bypass),
            "refresh" => Some(CacheMode::Refresh),
            _ => None,
        }
    }

    /// The wire spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheMode::Default => "default",
            CacheMode::Bypass => "bypass",
            CacheMode::Refresh => "refresh",
        }
    }

    /// Whether this mode reads the cache (and may warm-start).
    #[must_use]
    pub fn reads(self) -> bool {
        matches!(self, CacheMode::Default)
    }

    /// Whether this mode writes results back into the cache.
    #[must_use]
    pub fn writes(self) -> bool {
        matches!(self, CacheMode::Default | CacheMode::Refresh)
    }
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

/// Two independent 64-bit FNV-1a streams with distinct offset bases,
/// concatenated into a 128-bit digest. Content addressing needs more than
/// 64 bits (birthday bound), and the workspace is dependency-free, so two
/// decorrelated FNV lanes stand in for a real wide hash.
#[derive(Clone, Copy)]
struct Digest {
    a: u64,
    b: u64,
}

impl Digest {
    fn new() -> Digest {
        Digest {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a ^= u64::from(x);
            self.a = self.a.wrapping_mul(0x0000_0100_0000_01b3);
            self.b ^= u64::from(x.rotate_left(3));
            self.b = self.b.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn finish(self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// One 64-bit FNV-1a lane, for intermediate WL colors.
fn fnv64(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for &x in &p.to_le_bytes() {
            h ^= u64::from(x);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A versioned 128-bit content hash of one simulation job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u128);

impl fmt::Display for CacheKey {
    /// `cache_key/1:<32 hex digits>` — the wire spelling.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{CACHE_KEY_VERSION}:{:032x}", self.0)
    }
}

// ---------------------------------------------------------------------------
// Canonicalizer
// ---------------------------------------------------------------------------

/// One device flattened to hashable parts: a kind tag, the terminals it
/// touches (in role order), and its parameter bits.
struct Card {
    kind: u64,
    terminals: Vec<NodeId>,
    params: Vec<u64>,
    /// Nonzero when the analysis names this device (swept / AC source):
    /// such a device is semantically distinguished even if another card
    /// has identical parameters.
    dist: u64,
}

fn wave_bits(out: &mut Vec<u64>, wave: &Waveform) {
    match wave {
        Waveform::Dc(v) => {
            out.push(1);
            out.push(v.to_bits());
        }
        Waveform::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
            period,
        } => {
            out.push(2);
            for v in [v0, v1, delay, rise, fall, width, period] {
                out.push(v.to_bits());
            }
        }
        Waveform::Pwl(points) => {
            out.push(3);
            out.push(points.len() as u64);
            for (t, v) in points {
                out.push(t.to_bits());
                out.push(v.to_bits());
            }
        }
    }
}

/// Flattens the netlist to cards. `named` distinguishes the device the
/// analysis references by name (swept or AC source), if any.
fn cards(netlist: &Netlist, named: Option<&str>) -> Vec<Card> {
    netlist
        .devices()
        .map(|dev| match dev {
            DeviceView::Resistor { name, a, b, ohms } => Card {
                kind: 1,
                terminals: vec![a, b],
                params: vec![ohms.to_bits()],
                dist: u64::from(named == Some(name)),
            },
            DeviceView::Capacitor { name, a, b, farads } => Card {
                kind: 2,
                terminals: vec![a, b],
                params: vec![farads.to_bits()],
                dist: u64::from(named == Some(name)),
            },
            DeviceView::VSource {
                name,
                plus,
                minus,
                wave,
            } => {
                let mut params = Vec::new();
                wave_bits(&mut params, wave);
                Card {
                    kind: 3,
                    terminals: vec![plus, minus],
                    params,
                    dist: u64::from(named == Some(name)),
                }
            }
            DeviceView::ISource {
                name,
                from,
                to,
                wave,
            } => {
                let mut params = Vec::new();
                wave_bits(&mut params, wave);
                Card {
                    kind: 4,
                    terminals: vec![from, to],
                    params,
                    dist: u64::from(named == Some(name)),
                }
            }
            DeviceView::Nmos {
                name,
                d,
                g,
                s,
                params,
            } => Card {
                kind: 5,
                terminals: vec![d, g, s],
                params: vec![
                    params.kp.to_bits(),
                    params.vth.to_bits(),
                    params.lambda.to_bits(),
                    params.w_over_l.to_bits(),
                ],
                dist: u64::from(named == Some(name)),
            },
            DeviceView::Nmos3 {
                name,
                d,
                g,
                s,
                params,
            } => Card {
                kind: 6,
                terminals: vec![d, g, s],
                params: vec![
                    params.kp.to_bits(),
                    params.vth.to_bits(),
                    params.lambda.to_bits(),
                    params.w_over_l.to_bits(),
                    params.theta.to_bits(),
                    params.esat_l.to_bits(),
                    params.cgs.to_bits(),
                    params.cgd.to_bits(),
                ],
                dist: u64::from(named == Some(name)),
            },
        })
        .collect()
}

/// Canonical node colors via Weisfeiler–Leman refinement. `distinguished`
/// carries externally meaningful nodes in a meaningful order (the report
/// output node, then transient probes): each gets a role color from its
/// position, so renaming them — or any internal node — cannot change the
/// result, while *rewiring* them always does.
fn node_colors(netlist: &Netlist, cards: &[Card], distinguished: &[NodeId]) -> Vec<u64> {
    let n = netlist.node_count();
    let mut colors: Vec<u64> = vec![fnv64(&[7]); n];
    colors[Netlist::GROUND.index()] = fnv64(&[11]);
    for (k, node) in distinguished.iter().enumerate() {
        colors[node.index()] = fnv64(&[13, k as u64, colors[node.index()]]);
    }

    // Per-card signature of its parameter half, independent of refinement.
    let card_sig: Vec<u64> = cards
        .iter()
        .map(|c| {
            let mut parts = vec![c.kind, c.dist];
            parts.extend_from_slice(&c.params);
            fnv64(&parts)
        })
        .collect();

    let mut distinct = colors_distinct(&colors);
    for _round in 0..n.max(1) {
        let mut incidence: Vec<Vec<u64>> = vec![Vec::new(); n];
        for (ci, card) in cards.iter().enumerate() {
            for (role, t) in card.terminals.iter().enumerate() {
                let mut parts = vec![card_sig[ci], role as u64];
                parts.extend(card.terminals.iter().map(|x| colors[x.index()]));
                incidence[t.index()].push(fnv64(&parts));
            }
        }
        let mut next = Vec::with_capacity(n);
        for (i, inc) in incidence.iter_mut().enumerate() {
            inc.sort_unstable();
            let mut parts = vec![colors[i], inc.len() as u64];
            parts.extend_from_slice(inc);
            next.push(fnv64(&parts));
        }
        colors = next;
        let now = colors_distinct(&colors);
        if now == distinct {
            break;
        }
        distinct = now;
    }
    colors
}

fn colors_distinct(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Computes the canonical `cache_key/1` content hash for one job.
///
/// `out` is the report's output node and `waveform` the row-rendering
/// flag — both change the served result bytes, so both are part of the
/// key. The job's label, deadline, and trace handle are excluded (they
/// never affect the deterministic result object); its retry ladder is
/// included (homotopy order can select between operating points of
/// multi-stable circuits).
#[must_use]
pub fn cache_key(job: &SimJob, out: NodeId, waveform: bool) -> CacheKey {
    let named = match &job.analysis {
        Analysis::DcSweep { source, .. } | Analysis::Ac { source, .. } => Some(source.as_str()),
        _ => None,
    };
    let mut distinguished = vec![out];
    if let Analysis::Transient { probes, .. } = &job.analysis {
        distinguished.extend_from_slice(probes);
    }
    let cards = cards(&job.netlist, named);
    let colors = node_colors(&job.netlist, &cards, &distinguished);

    let mut d = Digest::new();
    d.write(CACHE_KEY_VERSION.as_bytes());
    d.u64(job.netlist.node_count() as u64);

    // Sorted multiset of canonical card signatures: card order cannot
    // matter, two cards differing in any parameter bit always do.
    let mut card_hashes: Vec<u64> = cards
        .iter()
        .map(|c| {
            let mut parts = vec![c.kind, c.dist];
            parts.extend_from_slice(&c.params);
            parts.extend(c.terminals.iter().map(|t| colors[t.index()]));
            fnv64(&parts)
        })
        .collect();
    card_hashes.sort_unstable();
    d.u64(card_hashes.len() as u64);
    for h in card_hashes {
        d.u64(h);
    }

    // Distinguished nodes by final color, in role order.
    d.u64(distinguished.len() as u64);
    for node in &distinguished {
        d.u64(colors[node.index()]);
    }

    // The analysis, parameter bits exact.
    match &job.analysis {
        Analysis::Op => d.u64(100),
        Analysis::DcSweep { values, .. } => {
            d.u64(101);
            d.u64(values.len() as u64);
            for v in values {
                d.f64(*v);
            }
        }
        Analysis::Transient {
            config,
            max_samples,
            probes: _,
        } => {
            d.u64(102);
            d.f64(config.tstop);
            match config.stepping {
                fts_spice::analysis::Stepping::Fixed { dt } => {
                    d.u64(1);
                    d.f64(dt);
                }
                fts_spice::analysis::Stepping::Adaptive {
                    dt_initial,
                    dt_min,
                    dt_max,
                    error_target,
                } => {
                    d.u64(2);
                    d.f64(dt_initial);
                    d.f64(dt_min);
                    d.f64(dt_max);
                    d.f64(error_target);
                }
            }
            d.u64(match config.integrator {
                fts_spice::analysis::Integrator::BackwardEuler => 1,
                fts_spice::analysis::Integrator::Trapezoidal => 2,
            });
            d.u64(u64::from(config.uic));
            d.u64(*max_samples as u64);
        }
        Analysis::Ac { freqs, .. } => {
            d.u64(103);
            d.u64(freqs.len() as u64);
            for f in freqs {
                d.f64(*f);
            }
        }
    }

    // The retry ladder: each rung's OpOptions.
    d.u64(job.retry.attempts.len() as u64);
    for opts in &job.retry.attempts {
        d.u64(op_options_bits(opts));
    }

    d.u64(u64::from(waveform));
    CacheKey(d.finish())
}

fn op_options_bits(o: &OpOptions) -> u64 {
    (o.max_iterations as u64) << 3
        | u64::from(o.gmin_stepping) << 2
        | u64::from(o.source_stepping) << 1
        | u64::from(o.pseudo_transient)
}

/// The *concrete* (insertion-order) structural hash: node count, branch
/// count, and every device's kind + terminal numbering — no parameter or
/// waveform values. Two netlists share it exactly when
/// [`Netlist::same_topology`](fts_spice::Netlist::same_topology) holds up
/// to hash collision, which is the admission test for reusing an unknown
/// vector as a Newton seed (the vector is indexed by this numbering).
#[must_use]
pub fn topology_hash(netlist: &Netlist) -> u64 {
    let mut parts: Vec<u64> = vec![netlist.node_count() as u64, netlist.unknown_count() as u64];
    for dev in netlist.devices() {
        let (kind, terms): (u64, Vec<NodeId>) = match dev {
            DeviceView::Resistor { a, b, .. } => (1, vec![a, b]),
            DeviceView::Capacitor { a, b, .. } => (2, vec![a, b]),
            DeviceView::VSource { plus, minus, .. } => (3, vec![plus, minus]),
            DeviceView::ISource { from, to, .. } => (4, vec![from, to]),
            DeviceView::Nmos { d, g, s, .. } => (5, vec![d, g, s]),
            DeviceView::Nmos3 { d, g, s, .. } => (6, vec![d, g, s]),
        };
        parts.push(kind);
        parts.extend(terms.iter().map(|t| t.index() as u64));
    }
    fnv64(&parts)
}

/// Flattens every numeric device parameter (insertion order, DC-evaluated
/// waveforms at `t = 0`) into the vector the warm index measures nearness
/// in. Same-topology netlists produce same-length vectors.
#[must_use]
pub fn params_vector(netlist: &Netlist) -> Vec<f64> {
    let mut v = Vec::new();
    for dev in netlist.devices() {
        match dev {
            DeviceView::Resistor { ohms, .. } => v.push(ohms),
            DeviceView::Capacitor { farads, .. } => v.push(farads),
            DeviceView::VSource { wave, .. } | DeviceView::ISource { wave, .. } => {
                v.push(wave.at(0.0));
            }
            DeviceView::Nmos { params, .. } => {
                v.extend([params.kp, params.vth, params.lambda, params.w_over_l]);
            }
            DeviceView::Nmos3 { params, .. } => {
                v.extend([params.kp, params.vth, params.lambda, params.w_over_l]);
            }
        }
    }
    v
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

/// One cached deterministic result.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The outcome tag (`"op"`, `"sweep"`, `"transient"`, `"ac"`).
    pub kind: &'static str,
    /// The deterministic result object, byte-exact as first rendered.
    pub result_json: String,
    /// Solve attempts the original run consumed.
    pub attempts: usize,
}

/// Counter snapshot for `GET /v1/cache` and `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Retained result entries.
    pub entries: usize,
    /// Bytes across retained result payloads.
    pub bytes: usize,
    /// Lookups served from the cache since startup.
    pub hits: u64,
    /// Lookups that missed since startup.
    pub misses: u64,
    /// Entries evicted by the LRU bounds since startup.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`; 0 when nothing was looked up yet.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

struct Entry {
    kind: &'static str,
    result_json: String,
    attempts: usize,
    tick: u64,
}

struct WarmPoint {
    params: Vec<f64>,
    x: Vec<f64>,
}

struct Inner {
    map: HashMap<u128, Entry>,
    /// LRU order: recency tick → key. Ticks are unique, so this is a
    /// total order; eviction pops the smallest tick.
    lru: BTreeMap<u64, u128>,
    tick: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    warm: HashMap<u64, VecDeque<WarmPoint>>,
}

/// A bounded LRU cache of deterministic result objects plus the
/// warm-start operating-point index. Interior-mutable and thread-safe:
/// the server's admission path and every queue worker share one instance.
pub struct ResultCache {
    inner: Mutex<Inner>,
    max_entries: usize,
    max_bytes: usize,
}

impl ResultCache {
    /// A cache bounded to `max_entries` results and `max_bytes` of result
    /// payload (both clamped to at least 1 entry / 1 KiB).
    #[must_use]
    pub fn new(max_entries: usize, max_bytes: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                tick: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                warm: HashMap::new(),
            }),
            max_entries: max_entries.max(1),
            max_bytes: max_bytes.max(1024),
        }
    }

    /// The configured entry cap.
    #[must_use]
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// The configured byte cap.
    #[must_use]
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    /// Looks `key` up, counting a hit (and refreshing its recency) or a
    /// miss.
    #[must_use]
    pub fn lookup(&self, key: CacheKey) -> Option<CachedResult> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key.0) {
            Some(entry) => {
                let old = entry.tick;
                entry.tick = tick;
                let hit = CachedResult {
                    kind: entry.kind,
                    result_json: entry.result_json.clone(),
                    attempts: entry.attempts,
                };
                inner.lru.remove(&old);
                inner.lru.insert(tick, key.0);
                inner.hits += 1;
                fts_telemetry::counter("cache.hits", 1);
                Some(hit)
            }
            None => {
                inner.misses += 1;
                fts_telemetry::counter("cache.misses", 1);
                None
            }
        }
    }

    /// [`lookup`](ResultCache::lookup) that counts only when it hits —
    /// the dequeue-time recheck path: the job's miss was already counted
    /// at admission, but an in-flight duplicate whose twin finished while
    /// this job sat queued can still be served from the cache.
    #[must_use]
    pub fn recheck(&self, key: CacheKey) -> Option<CachedResult> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(&key.0)?;
        let old = entry.tick;
        entry.tick = tick;
        let hit = CachedResult {
            kind: entry.kind,
            result_json: entry.result_json.clone(),
            attempts: entry.attempts,
        };
        inner.lru.remove(&old);
        inner.lru.insert(tick, key.0);
        inner.hits += 1;
        fts_telemetry::counter("cache.hits", 1);
        Some(hit)
    }

    /// Stores (or overwrites) the result for `key`, then evicts
    /// least-recently-used entries past the entry/byte bounds.
    pub fn insert(&self, key: CacheKey, kind: &'static str, result_json: String, attempts: usize) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let bytes = result_json.len();
        if let Some(old) = inner.map.remove(&key.0) {
            inner.lru.remove(&old.tick);
            inner.bytes -= old.result_json.len();
        }
        inner.map.insert(
            key.0,
            Entry {
                kind,
                result_json,
                attempts,
                tick,
            },
        );
        inner.lru.insert(tick, key.0);
        inner.bytes += bytes;
        while inner.map.len() > self.max_entries || inner.bytes > self.max_bytes {
            let Some((&oldest, &victim)) = inner.lru.iter().next() else {
                break;
            };
            // Never evict the entry just inserted on the bytes bound: an
            // oversized single result simply doesn't stay.
            inner.lru.remove(&oldest);
            if let Some(e) = inner.map.remove(&victim) {
                inner.bytes -= e.result_json.len();
            }
            inner.evictions += 1;
            fts_telemetry::counter("cache.evictions", 1);
            if inner.map.is_empty() {
                break;
            }
        }
    }

    /// Records a solved operating point for `topo` (drop-oldest past
    /// [`WARM_POINTS_PER_TOPOLOGY`]).
    pub fn warm_insert(&self, topo: u64, params: Vec<f64>, x: Vec<f64>) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        let points = inner.warm.entry(topo).or_default();
        points.push_back(WarmPoint { params, x });
        while points.len() > WARM_POINTS_PER_TOPOLOGY {
            points.pop_front();
        }
    }

    /// The nearest cached operating point for `topo` by Euclidean
    /// parameter distance — excluding distance-zero points (an identical
    /// circuit must run cold or hit, never warm, so identical inputs stay
    /// bit-reproducible) and far points (beyond
    /// [`WARM_MAX_RELATIVE_STEP`] in any component, where a seed hurts
    /// more than it helps).
    #[must_use]
    pub fn warm_lookup(&self, topo: u64, params: &[f64]) -> Option<Vec<f64>> {
        let inner = self.inner.lock().expect("cache poisoned");
        let points = inner.warm.get(&topo)?;
        let mut best: Option<(f64, &WarmPoint)> = None;
        for p in points {
            if p.params.len() != params.len() {
                continue;
            }
            let near = p.params.iter().zip(params).all(|(a, b)| {
                (a - b).abs() <= WARM_MAX_RELATIVE_STEP * (1.0 + a.abs().max(b.abs()))
            });
            if !near {
                continue;
            }
            let d2: f64 = p
                .params
                .iter()
                .zip(params)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d2 == 0.0 {
                continue;
            }
            if best.as_ref().is_none_or(|(b2, _)| d2 < *b2) {
                best = Some((d2, p));
            }
        }
        best.map(|(_, p)| p.x.clone())
    }

    /// Drops every retained result and warm point. Counters are
    /// cumulative and survive the flush.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.map.clear();
        inner.lru.clear();
        inner.bytes = 0;
        inner.warm.clear();
    }

    /// A counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache poisoned");
        CacheStats {
            entries: inner.map.len(),
            bytes: inner.bytes,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_spice::netlist::Waveform;

    fn divider(vdd: f64) -> (Netlist, NodeId) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let out = nl.node("out");
        nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(vdd))
            .unwrap();
        nl.resistor("R1", a, out, 1e3).unwrap();
        nl.resistor("R2", out, Netlist::GROUND, 1e3).unwrap();
        (nl, out)
    }

    #[test]
    fn key_is_stable_and_versioned() {
        let (nl, out) = divider(2.0);
        let k1 = cache_key(&SimJob::op(nl.clone()), out, false);
        let k2 = cache_key(&SimJob::op(nl), out, false);
        assert_eq!(k1, k2);
        assert!(k1.to_string().starts_with("cache_key/1:"), "{k1}");
        assert_eq!(k1.to_string().len(), "cache_key/1:".len() + 32);
    }

    #[test]
    fn node_creation_order_and_names_do_not_matter() {
        let (nl, out) = divider(2.0);

        // Same circuit: nodes created in the opposite order, internal
        // node renamed.
        let mut nl2 = Netlist::new();
        let out2 = nl2.node("different_output_name");
        let a2 = nl2.node("supply");
        nl2.vsource("V1", a2, Netlist::GROUND, Waveform::Dc(2.0))
            .unwrap();
        nl2.resistor("R1", a2, out2, 1e3).unwrap();
        nl2.resistor("R2", out2, Netlist::GROUND, 1e3).unwrap();

        assert_eq!(
            cache_key(&SimJob::op(nl), out, false),
            cache_key(&SimJob::op(nl2), out2, false)
        );
    }

    #[test]
    fn card_order_does_not_matter_but_values_do() {
        let (nl, out) = divider(2.0);

        let mut nl2 = Netlist::new();
        let a = nl2.node("a");
        let out2 = nl2.node("out");
        nl2.resistor("R2", out2, Netlist::GROUND, 1e3).unwrap();
        nl2.resistor("R1", a, out2, 1e3).unwrap();
        nl2.vsource("V1", a, Netlist::GROUND, Waveform::Dc(2.0))
            .unwrap();
        assert_eq!(
            cache_key(&SimJob::op(nl.clone()), out, false),
            cache_key(&SimJob::op(nl2), out2, false)
        );

        let (nl3, out3) = divider(2.0 + f64::EPSILON * 4.0);
        assert_ne!(
            cache_key(&SimJob::op(nl.clone()), out, false),
            cache_key(&SimJob::op(nl3), out3, false),
            "a one-ulp-scale parameter change must rehash"
        );

        // The output node is semantic: pointing the report at a different
        // node changes the key even on an identical netlist.
        let (mut nl4, _) = divider(2.0);
        let a4 = nl4.node("a");
        assert_ne!(
            cache_key(&SimJob::op(nl.clone()), out, false),
            cache_key(&SimJob::op(nl4), a4, false)
        );

        // The waveform render flag and the retry ladder are key bits too.
        assert_ne!(
            cache_key(&SimJob::op(nl.clone()), out, false),
            cache_key(&SimJob::op(nl.clone()), out, true)
        );
        assert_ne!(
            cache_key(&SimJob::op(nl.clone()), out, false),
            cache_key(
                &SimJob::op(nl).retry(crate::RetryPolicy::ladder()),
                out,
                false
            )
        );
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        let cache = ResultCache::new(2, 1 << 20);
        let k = |n: u128| CacheKey(n);
        cache.insert(k(1), "op", "{\"kind\":\"op\"}".into(), 1);
        cache.insert(k(2), "op", "{\"kind\":\"op\"}".into(), 1);
        assert!(cache.lookup(k(1)).is_some(), "touch 1 → 2 is now LRU");
        cache.insert(k(3), "op", "{\"kind\":\"op\"}".into(), 1);
        assert!(cache.lookup(k(2)).is_none(), "2 was evicted");
        assert!(cache.lookup(k(1)).is_some());
        assert!(cache.lookup(k(3)).is_some());
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (2, 1));
        assert_eq!((s.hits, s.misses), (3, 1));
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn byte_bound_evicts() {
        let cache = ResultCache::new(100, 1024);
        let payload = "x".repeat(700);
        cache.insert(CacheKey(1), "op", payload.clone(), 1);
        cache.insert(CacheKey(2), "op", payload, 1);
        let s = cache.stats();
        assert_eq!(s.entries, 1, "700 + 700 > 1024 → oldest evicted");
        assert!(s.bytes <= 1024);
    }

    #[test]
    fn warm_index_returns_nearest_near_nonzero_distance() {
        let cache = ResultCache::new(4, 1 << 20);
        cache.warm_insert(9, vec![1.0, 1.0], vec![0.25]);
        cache.warm_insert(9, vec![1.05, 1.0], vec![0.5]);
        // An exact match is excluded; the nearest *other* point wins.
        assert_eq!(cache.warm_lookup(9, &[1.0, 1.0]), Some(vec![0.5]));
        assert_eq!(cache.warm_lookup(9, &[1.04, 1.0]), Some(vec![0.5]));
        // Far points never seed: a solution from a different operating
        // regime slows Newton down instead of helping it.
        assert_eq!(cache.warm_lookup(9, &[5.0, 5.0]), None);
        assert_eq!(cache.warm_lookup(7, &[1.0, 1.0]), None);
        cache.flush();
        assert_eq!(cache.warm_lookup(9, &[1.04, 1.0]), None);
    }

    #[test]
    fn topology_hash_ignores_values_but_not_wiring() {
        let (a, _) = divider(1.0);
        let (b, _) = divider(2.5);
        assert_eq!(topology_hash(&a), topology_hash(&b));
        assert_eq!(params_vector(&a).len(), params_vector(&b).len());
        assert_ne!(params_vector(&a), params_vector(&b));

        let mut c = Netlist::new();
        let x = c.node("a");
        let y = c.node("out");
        c.vsource("V1", x, Netlist::GROUND, Waveform::Dc(1.0))
            .unwrap();
        c.resistor("R1", x, y, 1e3).unwrap();
        c.resistor("R2", x, Netlist::GROUND, 1e3).unwrap(); // rewired
        assert_ne!(topology_hash(&a), topology_hash(&c));
    }
}
