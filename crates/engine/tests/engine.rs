//! Batch-engine behavior: determinism, deadlines, cancellation, retry
//! taxonomy, symbolic sharing.

use std::time::{Duration, Instant};

use fts_engine::{Engine, RetryPolicy, SimJob, SimOutcome};
use fts_spice::analysis::TranConfig;
use fts_spice::netlist::{Netlist, SolverKind, Waveform};
use fts_spice::CancelToken;

/// An RC ladder with `stages` stages driven by a pulse — enough state to
/// make transients non-trivial, parameterized so different jobs differ.
fn rc_ladder(stages: usize, r: f64) -> Netlist {
    let mut nl = Netlist::new();
    let mut prev = nl.node("drive");
    nl.vsource(
        "V1",
        prev,
        Netlist::GROUND,
        Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1e-9,
            rise: 1e-9,
            fall: 1e-9,
            width: 40e-9,
            period: 0.0,
        },
    )
    .unwrap();
    for k in 0..stages {
        let next = nl.node(&format!("n{k}"));
        nl.resistor(&format!("R{k}"), prev, next, r).unwrap();
        nl.capacitor(&format!("C{k}"), next, Netlist::GROUND, 1e-12)
            .unwrap();
        prev = next;
    }
    nl
}

fn mixed_batch() -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for k in 0..6 {
        let r = 1.0e3 * (1.0 + k as f64 * 0.1);
        jobs.push(
            SimJob::transient(rc_ladder(4, r), TranConfig::fixed(1e-9, 100e-9))
                .label(&format!("tran-{k}")),
        );
        jobs.push(SimJob::op(rc_ladder(3, r)).label(&format!("op-{k}")));
    }
    jobs.push(SimJob::dc_sweep(
        rc_ladder(2, 2.0e3),
        "V1",
        vec![0.0, 0.5, 1.0],
    ));
    jobs.push(SimJob::ac(rc_ladder(3, 1.0e3), "V1", vec![1e3, 1e6, 1e9]));
    jobs
}

#[test]
fn batch_outcomes_are_submission_ordered_and_thread_independent() {
    let sequential = Engine::new().threads(1).run(mixed_batch());
    for threads in [2, 4, 8] {
        let parallel = Engine::new().threads(threads).run(mixed_batch());
        assert_eq!(
            parallel.outcomes, sequential.outcomes,
            "threads={threads} diverged from sequential"
        );
    }
    assert_eq!(sequential.succeeded(), sequential.outcomes.len());
    // Stats stay aligned with submission order.
    assert_eq!(sequential.stats[0].label, "tran-0");
    assert_eq!(sequential.stats[2].label, "tran-1");
}

#[test]
fn expired_deadline_reports_deadline_exceeded_quickly() {
    // Without cancellation this transient runs ~10^8 timesteps — hours.
    // The deadline must cut it off within one timestep of expiry.
    let endless = SimJob::transient(rc_ladder(4, 1.0e3), TranConfig::fixed(1e-9, 0.1))
        .deadline(Duration::from_millis(20))
        .label("endless");
    let quick = SimJob::op(rc_ladder(3, 1.0e3)).label("quick");

    let t0 = Instant::now();
    let report = Engine::new().threads(2).run(vec![endless, quick]);
    let elapsed = t0.elapsed();

    assert!(
        matches!(report.outcomes[0], SimOutcome::DeadlineExceeded { .. }),
        "got {:?}",
        report.outcomes[0]
    );
    // The deadline job died on schedule, not at tstop.
    assert!(elapsed < Duration::from_secs(10), "took {elapsed:?}");
    // An expired neighbor does not poison the rest of the batch.
    assert!(report.outcomes[1].is_success());
    assert_eq!(report.succeeded(), 1);
}

#[test]
fn batch_kill_switch_cancels_in_flight_jobs() {
    let jobs: Vec<SimJob> = (0..3)
        .map(|k| {
            SimJob::transient(rc_ladder(4, 1.0e3), TranConfig::fixed(1e-9, 0.1))
                .label(&format!("endless-{k}"))
        })
        .collect();

    let batch = CancelToken::new();
    let killer = batch.clone();
    let t0 = Instant::now();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        killer.cancel();
    });
    let report = Engine::new().threads(2).run_cancellable(jobs, &batch);
    handle.join().unwrap();
    let elapsed = t0.elapsed();

    assert!(elapsed < Duration::from_secs(10), "took {elapsed:?}");
    for (k, outcome) in report.outcomes.iter().enumerate() {
        assert_eq!(*outcome, SimOutcome::Cancelled, "job {k}: {outcome:?}");
    }
}

#[test]
fn fatal_errors_are_not_retried() {
    // Sweeping a nonexistent source is NotFound — fatal, so even a
    // four-rung ladder consumes exactly one attempt.
    let job = SimJob::dc_sweep(rc_ladder(2, 1.0e3), "V_MISSING", vec![0.0, 1.0])
        .retry(RetryPolicy::ladder());
    let report = Engine::new().threads(1).run(vec![job]);
    match &report.outcomes[0] {
        SimOutcome::Failed { error, attempts } => {
            assert_eq!(*attempts, 1);
            assert!(!error.is_retryable(), "{error:?}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(report.stats[0].attempts, 1);
}

#[test]
fn ladder_policy_matches_full_policy_on_easy_circuits() {
    let full = Engine::new()
        .threads(1)
        .run(vec![SimJob::op(rc_ladder(3, 1.0e3))]);
    let ladder = Engine::new().threads(1).run(vec![
        SimJob::op(rc_ladder(3, 1.0e3)).retry(RetryPolicy::ladder())
    ]);
    // Linear circuit: plain Newton converges on the first rung, and the
    // solution is the same either way.
    assert_eq!(ladder.stats[0].attempts, 1);
    match (&full.outcomes[0], &ladder.outcomes[0]) {
        (SimOutcome::Op(a), SimOutcome::Op(b)) => assert_eq!(a.unknowns(), b.unknowns()),
        other => panic!("expected two op results, got {other:?}"),
    }
}

#[test]
fn symbolic_sharing_does_not_change_results() {
    let sparse_batch = |share: bool| {
        let jobs: Vec<SimJob> = (0..4)
            .map(|k| {
                let mut nl = rc_ladder(30, 1.0e3 * (1.0 + k as f64));
                nl.set_solver(SolverKind::Sparse);
                SimJob::op(nl)
            })
            .collect();
        Engine::new().threads(2).share_symbolic(share).run(jobs)
    };
    let shared = sparse_batch(true);
    let unshared = sparse_batch(false);
    assert_eq!(shared.outcomes, unshared.outcomes);
    assert_eq!(shared.succeeded(), 4);
}

#[test]
fn transient_outcome_carries_decimated_waveforms() {
    let nl = rc_ladder(3, 1.0e3);
    let probe = nl.find_node("n2").unwrap();
    let job = SimJob::transient(nl, TranConfig::fixed(1e-10, 100e-9))
        .probes(&[probe])
        .max_samples(64);
    let report = Engine::new().threads(1).run(vec![job]);
    match &report.outcomes[0] {
        SimOutcome::Transient(w) => {
            assert_eq!(w.probes(), &[probe]);
            assert!(w.len() < 64);
            assert!(w.total_samples() >= 1000);
            assert!(w.stride() > 1);
            let v = w.voltage(probe).unwrap();
            assert_eq!(v.len(), w.len());
            // The ladder output charges toward the pulse level while the
            // pulse is high.
            let peak = v.iter().cloned().fold(0.0, f64::max);
            assert!(peak > 0.5, "peak {peak}");
        }
        other => panic!("expected Transient, got {other:?}"),
    }
}

#[test]
fn run_single_matches_batch_outcomes_exactly() {
    let batch = Engine::new().threads(2).run(mixed_batch());
    let engine = Engine::new();
    for (k, job) in mixed_batch().into_iter().enumerate() {
        let (outcome, stats) = engine.run_single(&job, &CancelToken::new());
        assert_eq!(
            outcome, batch.outcomes[k],
            "job {k} ({}) diverged from the batch path",
            stats.label
        );
        assert_eq!(stats.label, batch.stats[k].label);
        assert_eq!(stats.attempts, batch.stats[k].attempts);
    }
}

#[test]
fn run_single_honors_cancel_and_deadline() {
    let engine = Engine::new();
    // Pre-cancelled kill switch → Cancelled before any work.
    let token = CancelToken::new();
    token.cancel();
    let endless = SimJob::transient(rc_ladder(4, 1.0e3), TranConfig::fixed(1e-9, 0.1));
    let (outcome, _) = engine.run_single(&endless, &token);
    assert_eq!(outcome, SimOutcome::Cancelled);
    // A tiny per-job deadline layers on a fresh token.
    let bounded = endless.deadline(Duration::from_millis(20));
    let t0 = Instant::now();
    let (outcome, _) = engine.run_single(&bounded, &CancelToken::new());
    assert!(matches!(outcome, SimOutcome::DeadlineExceeded { .. }));
    assert!(t0.elapsed() < Duration::from_secs(5));
}

#[test]
fn traced_job_records_solver_events_in_its_own_ring() {
    use fts_telemetry::trace::JobTrace;
    let trace = JobTrace::new(256);
    let job = SimJob::op(rc_ladder(3, 1.0e3)).trace(trace.clone());
    let report = Engine::new().threads(1).run(vec![job]);
    assert_eq!(report.succeeded(), 1);

    let snap = trace.snapshot();
    let kinds: Vec<&str> = snap.events.iter().map(|e| e.kind).collect();
    for required in ["attempt", "homotopy_step", "newton_converged", "op_solved"] {
        assert!(kinds.contains(&required), "missing {required} in {kinds:?}");
    }
    assert_eq!(
        snap.events.last().map(|e| (e.kind, e.detail)),
        Some(("job_done", "op")),
        "journal must close with the outcome event"
    );
    for pair in snap.events.windows(2) {
        assert!(pair[0].t_us <= pair[1].t_us, "timestamps must be monotone");
    }

    // An untraced run must not leak events into someone else's ring.
    let before = trace.snapshot().events.len();
    let untraced = Engine::new()
        .threads(1)
        .run(vec![SimJob::op(rc_ladder(3, 1.0e3))]);
    assert_eq!(untraced.succeeded(), 1);
    assert_eq!(trace.snapshot().events.len(), before);
}

#[test]
fn trace_ring_stays_bounded_on_chatty_transients() {
    use fts_telemetry::trace::JobTrace;
    let trace = JobTrace::new(16);
    // 100 fixed steps emit well over 16 events; the ring must cap and
    // count the overflow rather than grow.
    let job = SimJob::transient(rc_ladder(4, 1.0e3), TranConfig::fixed(1e-9, 100e-9))
        .trace(trace.clone());
    let report = Engine::new().threads(1).run(vec![job]);
    assert_eq!(report.succeeded(), 1);
    let snap = trace.snapshot();
    assert_eq!(snap.capacity, 16);
    assert_eq!(snap.events.len(), 16);
    assert!(snap.dropped > 0, "overflow must be counted");
    assert_eq!(snap.events.last().map(|e| e.kind), Some("job_done"));
}
