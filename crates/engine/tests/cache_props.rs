//! Property tests for the `cache_key/1` canonicalizer: the key must be
//! invariant under every representation detail (node creation order,
//! device card order, internal node names) and sensitive to every
//! semantic detail (parameter values, wiring, the probed output node,
//! the waveform flag). Randomized with a hand-rolled LCG so the suite
//! stays dependency-free and the failing seed is printed on panic.

use fts_engine::{cache_key, CacheKey, SimJob};
use fts_spice::netlist::{Netlist, Waveform};
use fts_spice::NodeId;

/// Deterministic 64-bit LCG (Knuth's MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 1
    }

    /// Uniform draw in `0..n`.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// In-place Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.below(i + 1));
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Resistor,
    Capacitor,
    Source,
}

/// One abstract device over node *indices* (0 = ground) — the circuit's
/// semantic content, independent of names and insertion order.
#[derive(Clone)]
struct Dev {
    kind: Kind,
    a: usize,
    b: usize,
    value: f64,
}

/// A random connected-ish circuit: one DC source plus a handful of
/// resistors and capacitors over `nodes` internal nodes.
fn random_circuit(rng: &mut Lcg) -> (Vec<Dev>, usize, usize) {
    let nodes = 3 + rng.below(5); // internal node count (indices 1..=nodes)
    let mut devs = vec![Dev {
        kind: Kind::Source,
        a: 1,
        b: 0,
        value: 1.0 + rng.below(40) as f64 / 8.0,
    }];
    let count = 4 + rng.below(6);
    for _ in 0..count {
        let a = 1 + rng.below(nodes);
        let mut b = rng.below(nodes + 1);
        if b == a {
            b = (a % nodes) + 1; // avoid self-loops; keep in range
        }
        if b == a {
            b = 0;
        }
        let kind = if rng.below(4) == 0 {
            Kind::Capacitor
        } else {
            Kind::Resistor
        };
        let value = match kind {
            Kind::Capacitor => 1e-12 * (1.0 + rng.below(100) as f64),
            _ => 1e2 * (1.0 + rng.below(1000) as f64),
        };
        devs.push(Dev { kind, a, b, value });
    }
    let out = 1 + rng.below(nodes);
    (devs, nodes, out)
}

/// Builds a concrete [`Netlist`] from the abstract circuit: devices are
/// inserted in `order`, and internal node `i` is called `name(i)` — so
/// both node-creation order and node names vary with the caller.
fn build(
    devs: &[Dev],
    order: &[usize],
    nodes: usize,
    name: impl Fn(usize) -> String,
) -> (Netlist, Vec<NodeId>) {
    let mut nl = Netlist::new();
    let mut ids: Vec<Option<NodeId>> = vec![None; nodes + 1];
    ids[0] = Some(Netlist::GROUND);
    let id_of = |nl: &mut Netlist, ids: &mut Vec<Option<NodeId>>, k: usize| {
        if ids[k].is_none() {
            ids[k] = Some(nl.node(&name(k)));
        }
        ids[k].expect("just created")
    };
    for (slot, &k) in order.iter().enumerate() {
        let d = &devs[k];
        let a = id_of(&mut nl, &mut ids, d.a);
        let b = id_of(&mut nl, &mut ids, d.b);
        match d.kind {
            Kind::Resistor => nl.resistor(&format!("R{slot}"), a, b, d.value).unwrap(),
            Kind::Capacitor => nl.capacitor(&format!("C{slot}"), a, b, d.value).unwrap(),
            Kind::Source => nl
                .vsource(&format!("V{slot}"), a, b, Waveform::Dc(d.value))
                .unwrap(),
        };
    }
    let ids = ids
        .into_iter()
        .enumerate()
        .map(|(k, id)| id.unwrap_or_else(|| nl.node(&name(k))))
        .collect();
    (nl, ids)
}

fn key_of(devs: &[Dev], order: &[usize], nodes: usize, out: usize, wave: bool) -> CacheKey {
    let (nl, ids) = build(devs, order, nodes, |k| format!("n{k}"));
    cache_key(&SimJob::op(nl), ids[out], wave)
}

#[test]
fn key_is_invariant_under_order_and_naming() {
    let mut rng = Lcg(0x5eed_0001);
    for trial in 0..60 {
        let (devs, nodes, out) = random_circuit(&mut rng);
        let identity: Vec<usize> = (0..devs.len()).collect();
        let reference = key_of(&devs, &identity, nodes, out, false);

        // Reordered cards + renamed internal nodes + (therefore) a
        // different node-creation order must hash identically.
        let mut order = identity.clone();
        rng.shuffle(&mut order);
        let (nl, ids) = build(&devs, &order, nodes, |k| format!("x{}", k * 7 + 3));
        let renamed = cache_key(&SimJob::op(nl), ids[out], false);
        assert_eq!(
            reference, renamed,
            "trial {trial}: permuted/renamed circuit changed the key"
        );
    }
}

#[test]
fn key_is_sensitive_to_semantic_changes() {
    let mut rng = Lcg(0x5eed_0002);
    for trial in 0..60 {
        let (devs, nodes, out) = random_circuit(&mut rng);
        let identity: Vec<usize> = (0..devs.len()).collect();
        let reference = key_of(&devs, &identity, nodes, out, false);

        // A parameter nudge on one random device changes the key.
        let victim = rng.below(devs.len());
        let mut poked = devs.clone();
        poked[victim].value *= 1.5;
        assert_ne!(
            reference,
            key_of(&poked, &identity, nodes, out, false),
            "trial {trial}: parameter change kept the key"
        );

        // Rewiring one terminal to a different node changes the key.
        let mut rewired = devs.clone();
        let d = &mut rewired[victim];
        let was = d.b;
        d.b = (d.b + 1) % (nodes + 1);
        if d.b == d.a {
            d.b = (d.b + 1) % (nodes + 1);
        }
        if d.b != was {
            assert_ne!(
                reference,
                key_of(&rewired, &identity, nodes, out, false),
                "trial {trial}: rewiring kept the key"
            );
        }

        // The waveform flag is part of the key (a waveform row renders
        // different result bytes, so it must not collide).
        assert_ne!(
            reference,
            key_of(&devs, &identity, nodes, out, true),
            "trial {trial}: waveform flag not keyed"
        );
    }
}

#[test]
fn key_distinguishes_asymmetric_output_nodes() {
    // Deterministic ladder: n1 —1k— n2 —2k— n3 —3k— GND with the source
    // on n1. Every node plays a structurally different role, so probing
    // a different node must change the key. (Automorphic nodes — e.g.
    // two dangling ones — are *allowed* to collide: isomorphic circuits
    // produce identical results.)
    let ladder = || {
        let mut nl = Netlist::new();
        let n1 = nl.node("n1");
        let n2 = nl.node("n2");
        let n3 = nl.node("n3");
        nl.vsource("V1", n1, Netlist::GROUND, Waveform::Dc(5.0))
            .unwrap();
        nl.resistor("R1", n1, n2, 1e3).unwrap();
        nl.resistor("R2", n2, n3, 2e3).unwrap();
        nl.resistor("R3", n3, Netlist::GROUND, 3e3).unwrap();
        (nl, [n1, n2, n3])
    };
    let (nl, nodes) = ladder();
    let at_n2 = cache_key(&SimJob::op(nl), nodes[1], false);
    let (nl, nodes) = ladder();
    let at_n3 = cache_key(&SimJob::op(nl), nodes[2], false);
    assert_ne!(at_n2, at_n3, "output node must be part of the key");
}

#[test]
fn key_spelling_is_versioned_and_stable_across_rebuilds() {
    let mut rng = Lcg(0x5eed_0003);
    let (devs, nodes, out) = random_circuit(&mut rng);
    let identity: Vec<usize> = (0..devs.len()).collect();
    let a = key_of(&devs, &identity, nodes, out, false);
    let b = key_of(&devs, &identity, nodes, out, false);
    assert_eq!(a, b, "same circuit must key identically across rebuilds");
    let spelled = a.to_string();
    assert!(
        spelled.starts_with("cache_key/1:"),
        "key spelling must be versioned: {spelled}"
    );
    assert_eq!(spelled.len(), "cache_key/1:".len() + 32, "{spelled}");
}
