//! Per-job flight recorder: a bounded ring buffer of structured solver
//! events owned by whoever launched the job.
//!
//! The global span/counter machinery in this crate aggregates across the
//! whole process and flushes at shutdown — good for benches, useless for
//! asking *why job 42 was slow* on a live server. A [`JobTrace`] is the
//! per-job complement: the job's owner mints one, attaches it to the job,
//! and the execution stack ([`install`]ed for the duration of the run)
//! [`emit`]s events into it — homotopy ladder steps, Newton
//! convergence/divergence, sparse factorizations, transient step
//! accept/reject, retries, deadlines. The owner keeps a clone of the
//! handle and can [`JobTrace::snapshot`] it at any time, including while
//! the job is still running.
//!
//! Design constraints, in order:
//!
//! * **Disabled is free.** When no trace is installed anywhere in the
//!   process, [`emit`] is a single relaxed atomic load and an immediate
//!   return — the permanent cost to un-traced workloads is one predictable
//!   branch.
//! * **Enabled is allocation-free.** Events carry only `&'static str`
//!   labels and two `f64` payloads; recording one is a thread-local read,
//!   an (uncontended — the ring is owned by the running worker) mutex
//!   lock, and a 48-byte copy into a pre-sized ring.
//! * **Bounded.** The ring has a fixed capacity; once full, the oldest
//!   event is overwritten and [`TraceSnapshot::dropped`] counts the loss.
//!   A runaway transient cannot grow a job's journal without limit.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default event capacity for a [`JobTrace`] ring.
pub const DEFAULT_EVENT_CAP: usize = 4096;

/// One recorded flight-recorder event.
///
/// `kind` is the event class (`"homotopy_step"`, `"newton_converged"`,
/// …); `detail` refines it (the homotopy strategy name, the solver
/// backend, …). `a` and `b` are two per-kind numeric payloads — iteration
/// counts, residuals, matrix sizes — documented per kind at the emission
/// site. Keeping the payload fixed-shape is what makes recording
/// allocation-free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlightEvent {
    /// Microseconds since the trace was minted.
    pub t_us: f64,
    /// Retry-ladder attempt (0-based) the event belongs to.
    pub attempt: u32,
    /// Event class.
    pub kind: &'static str,
    /// Event refinement (strategy, solver, reason; `""` when unused).
    pub detail: &'static str,
    /// First numeric payload (per-kind meaning; 0 when unused).
    pub a: f64,
    /// Second numeric payload (per-kind meaning; 0 when unused).
    pub b: f64,
}

struct Ring {
    start_ns: u64,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    events: Vec<FlightEvent>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, mut ev: FlightEvent) {
        ev.t_us = (crate::now_ns().saturating_sub(self.start_ns)) as f64 / 1e3;
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            let head = self.head;
            self.events[head] = ev;
            self.head = (head + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

/// A consistent copy of a job's journal at one instant.
#[derive(Clone, Debug)]
pub struct TraceSnapshot {
    /// Ring capacity the trace was minted with.
    pub capacity: usize,
    /// Events overwritten because the ring was full.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

/// Shared handle to one job's bounded event journal.
///
/// Cloning is cheap (one `Arc`); all clones observe the same ring. The
/// handle is `Send + Sync` — the job's owner typically keeps one clone to
/// serve snapshots while a worker thread records through another.
#[derive(Clone)]
pub struct JobTrace {
    inner: Arc<Mutex<Ring>>,
}

impl std::fmt::Debug for JobTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTrace").finish_non_exhaustive()
    }
}

impl JobTrace {
    /// Mints a trace with room for `capacity` events (clamped to ≥ 1).
    /// Event timestamps are relative to this call.
    pub fn new(capacity: usize) -> JobTrace {
        JobTrace {
            inner: Arc::new(Mutex::new(Ring {
                start_ns: crate::now_ns(),
                cap: capacity.max(1),
                head: 0,
                events: Vec::new(),
                dropped: 0,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        // A panic while holding the ring lock leaves plain data in a
        // valid state; keep serving the journal.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Copies the journal out, oldest event first.
    pub fn snapshot(&self) -> TraceSnapshot {
        let ring = self.lock();
        let mut events = Vec::with_capacity(ring.events.len());
        events.extend_from_slice(&ring.events[ring.head..]);
        events.extend_from_slice(&ring.events[..ring.head]);
        TraceSnapshot {
            capacity: ring.cap,
            dropped: ring.dropped,
            events,
        }
    }

    /// Number of events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }
}

/// Count of traces currently installed across all threads. `emit` checks
/// this first so un-traced processes pay one relaxed load per call site.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static INSTALLED: RefCell<Option<JobTrace>> = const { RefCell::new(None) };
    static ATTEMPT: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard returned by [`install`]; uninstalls (restoring any
/// previously installed trace) on drop. Not `Send`: the guard must drop
/// on the thread that installed it.
pub struct TraceGuard {
    prev: Option<JobTrace>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        INSTALLED.with(|slot| *slot.borrow_mut() = self.prev.take());
        ATTEMPT.with(|a| a.set(0));
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Installs `trace` as the calling thread's recorder: until the returned
/// guard drops, every [`emit`] on this thread lands in `trace`'s ring.
/// Installs nest (the previous recorder is restored on drop), though jobs
/// normally install exactly one for their whole run.
pub fn install(trace: &JobTrace) -> TraceGuard {
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    let prev = INSTALLED.with(|slot| slot.borrow_mut().replace(trace.clone()));
    ATTEMPT.with(|a| a.set(0));
    TraceGuard {
        prev,
        _not_send: PhantomData,
    }
}

/// Stamps subsequent events on this thread with retry-ladder attempt `n`
/// (0-based). No-op when no trace is installed anywhere.
pub fn set_attempt(n: u32) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    ATTEMPT.with(|a| a.set(n));
}

/// Records one event into the calling thread's installed trace, if any.
///
/// When no trace is installed anywhere in the process this is a single
/// relaxed atomic load. When another thread is tracing but this one is
/// not, it is that load plus a thread-local `None` check.
#[inline]
pub fn emit(kind: &'static str, detail: &'static str, a: f64, b: f64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    emit_installed(kind, detail, a, b);
}

fn emit_installed(kind: &'static str, detail: &'static str, a: f64, b: f64) {
    INSTALLED.with(|slot| {
        if let Some(trace) = slot.borrow().as_ref() {
            trace.lock().push(FlightEvent {
                t_us: 0.0, // stamped inside push, under the ring lock
                attempt: ATTEMPT.with(Cell::get),
                kind,
                detail,
                a,
                b,
            });
        }
    });
}

/// True when at least one trace is installed somewhere in the process.
/// Lets expensive event *preparation* (not just recording) be skipped.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_install_records_nothing() {
        let trace = JobTrace::new(8);
        emit("ghost", "", 1.0, 2.0);
        assert!(trace.is_empty());
    }

    #[test]
    fn events_record_in_order_with_attempts() {
        let trace = JobTrace::new(8);
        {
            let _g = install(&trace);
            emit("first", "x", 1.0, 0.0);
            set_attempt(1);
            emit("second", "y", 2.0, 0.5);
        }
        let snap = trace.snapshot();
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].kind, "first");
        assert_eq!(snap.events[0].attempt, 0);
        assert_eq!(snap.events[1].kind, "second");
        assert_eq!(snap.events[1].attempt, 1);
        assert!(snap.events[0].t_us <= snap.events[1].t_us);
        // Guard dropped: emissions stop.
        emit("late", "", 0.0, 0.0);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let trace = JobTrace::new(3);
        {
            let _g = install(&trace);
            for k in 0..7 {
                emit("e", "", k as f64, 0.0);
            }
        }
        let snap = trace.snapshot();
        assert_eq!(snap.capacity, 3);
        assert_eq!(snap.dropped, 4);
        let kept: Vec<f64> = snap.events.iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![4.0, 5.0, 6.0], "oldest dropped first");
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = JobTrace::new(8);
        let inner = JobTrace::new(8);
        let _g1 = install(&outer);
        emit("outer", "", 0.0, 0.0);
        {
            let _g2 = install(&inner);
            emit("inner", "", 0.0, 0.0);
        }
        emit("outer", "", 0.0, 0.0);
        assert_eq!(outer.len(), 2);
        assert_eq!(inner.len(), 1);
    }

    #[test]
    fn threads_do_not_cross_record() {
        let trace = JobTrace::new(8);
        let _g = install(&trace);
        std::thread::scope(|s| {
            s.spawn(|| {
                // Installed on the parent thread only; this thread has no
                // recorder, so its emissions vanish.
                emit("other_thread", "", 0.0, 0.0);
            })
            .join()
            .unwrap();
        });
        emit("this_thread", "", 0.0, 0.0);
        let snap = trace.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, "this_thread");
    }

    #[test]
    fn snapshot_while_installed_sees_live_events() {
        let trace = JobTrace::new(8);
        let observer = trace.clone();
        let _g = install(&trace);
        emit("mid_flight", "", 0.0, 0.0);
        assert_eq!(observer.snapshot().events.len(), 1);
    }

    #[test]
    fn uninstalled_emit_is_cheap() {
        // With no trace installed on this thread the emit path must stay
        // in the same budget as the disabled span fast path. (Sibling
        // tests may have traces installed on their own threads, so this
        // exercises the at-worst thread-local-miss path.)
        let t0 = std::time::Instant::now();
        for k in 0..2_000_000u64 {
            emit("off", "", k as f64, 0.0);
        }
        let dt = t0.elapsed();
        assert!(dt.as_secs_f64() < 2.0, "uninstalled emit too slow: {dt:?}");
    }
}
