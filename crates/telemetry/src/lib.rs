//! Workspace-wide tracing, metrics, and solver-convergence diagnostics.
//!
//! Every hot path in the reproduction — the SPICE homotopy ladder, the
//! Monte Carlo trial loop, the synthesis pipeline, lattice path
//! enumeration — computes timing and convergence data that used to be
//! discarded. This crate collects it with three primitives:
//!
//! * **Spans** ([`span`]): hierarchical RAII timers. Each thread keeps its
//!   own span stack and buffers, so instrumentation never contends across
//!   the Monte Carlo worker pool; buffers merge deterministically at
//!   [`snapshot`] time (integer nanosecond sums keyed by sorted span path,
//!   so the aggregate is independent of merge order).
//! * **Counters** ([`counter`]): named monotonic event counts.
//! * **Value histograms** ([`record`]): log-scale streaming histograms
//!   with mean/min/max and p50/p90/p99 summaries — Newton iteration
//!   counts, residuals, per-trial wall times.
//! * **Per-job flight recorder** ([`trace`]): bounded drop-oldest rings
//!   of structured solver events attributable to a single job, installed
//!   on the worker thread for the duration of one run and snapshotted by
//!   the job's owner. Independent of the global on/off switch above.
//!
//! Telemetry is **off by default** and *no-op cheap* when disabled: every
//! entry point is a single relaxed atomic load followed by an immediate
//! return — no allocation, no clock read, no lock. Enable it with
//! [`set_enabled`], then export with [`snapshot`] as a human-readable
//! tree ([`TelemetryReport::render_tree`]), machine-readable JSON
//! ([`TelemetryReport::to_json`]), or a Chrome `chrome://tracing` /
//! Perfetto trace ([`TelemetryReport::to_chrome_trace`]).
//!
//! # Example
//!
//! ```
//! fts_telemetry::set_enabled(true);
//! fts_telemetry::reset();
//! {
//!     let _outer = fts_telemetry::span("solve");
//!     for k in 0..3 {
//!         let _inner = fts_telemetry::span("newton");
//!         fts_telemetry::counter("iterations", 7);
//!         fts_telemetry::record("residual", 1e-9 * (k + 1) as f64);
//!     }
//! }
//! let report = fts_telemetry::snapshot();
//! assert_eq!(report.counter("iterations"), 21);
//! assert_eq!(report.span("solve/newton").unwrap().count, 3);
//! assert_eq!(report.histogram("residual").unwrap().summary.n, 3);
//! fts_telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod metrics;
mod registry;
mod report;
mod span;
pub mod trace;

pub use metrics::{HistogramSummary, LogHistogram};
pub use report::{CounterStat, HistogramStat, SpanStat, TelemetryReport, TraceEvent};
pub use span::SpanGuard;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables telemetry collection.
///
/// Disabling does not clear already-collected data; use [`reset`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when telemetry collection is enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opens a timed span named `name`, nested under the calling thread's
/// innermost open span. The span closes (and its duration is recorded)
/// when the returned guard drops.
///
/// When telemetry is disabled this is a single atomic load — the guard is
/// disarmed and nothing is allocated or locked.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span::begin(name)
}

/// Adds `delta` to the named counter (no-op while disabled).
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    registry::with_buffer(|b| b.add_counter(name, delta));
}

/// Streams `value` into the named log-scale histogram (no-op while
/// disabled).
#[inline]
pub fn record(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    registry::with_buffer(|b| b.record_value(name, value));
}

/// Merges every thread's buffers into one [`TelemetryReport`].
///
/// The merge is deterministic: span/counter/histogram aggregates are
/// integer (or order-invariant float) reductions keyed by name and
/// emitted in sorted order; trace events sort by start time. Collection
/// continues — the buffers are not cleared.
pub fn snapshot() -> TelemetryReport {
    registry::snapshot()
}

/// Clears all collected data (open spans on live threads survive and will
/// report into fresh buffers when they close).
pub fn reset() {
    registry::reset();
}

/// Nanoseconds since the first telemetry call in this process — the common
/// clock for all spans and trace events.
pub(crate) fn now_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = ANCHOR.get_or_init(Instant::now);
    anchor.elapsed().as_nanos() as u64
}

#[cfg(test)]
pub(crate) mod test_lock {
    //! Telemetry state is global; tests that enable/reset it serialize on
    //! this lock so the default multi-threaded test runner cannot
    //! interleave them.
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_calls_collect_nothing() {
        let _l = test_lock::hold();
        set_enabled(false);
        reset();
        {
            let _g = span("ghost");
            counter("ghost_count", 5);
            record("ghost_value", 1.0);
        }
        let r = snapshot();
        assert!(r.span("ghost").is_none());
        assert_eq!(r.counter("ghost_count"), 0);
        assert!(r.histogram("ghost_value").is_none());
    }

    #[test]
    fn disabled_fast_path_is_cheap() {
        // The disabled entry points must be a bare atomic check: 2M calls
        // in well under a second even on a loaded CI machine. (A single
        // allocation or mutex acquisition per call would blow this bound
        // by an order of magnitude.)
        let _l = test_lock::hold();
        set_enabled(false);
        let t0 = std::time::Instant::now();
        for k in 0..2_000_000u64 {
            let _g = span("off");
            counter("off", k);
            record("off", k as f64);
        }
        let dt = t0.elapsed();
        assert!(dt.as_secs_f64() < 2.0, "disabled path too slow: {dt:?}");
    }

    #[test]
    fn toggling_mid_span_does_not_panic() {
        let _l = test_lock::hold();
        set_enabled(false);
        reset();
        set_enabled(true);
        let g = span("outer");
        set_enabled(false);
        drop(g); // armed guard still closes cleanly
        let g2 = span("ignored"); // disarmed
        set_enabled(true);
        drop(g2);
        set_enabled(false);
    }
}
