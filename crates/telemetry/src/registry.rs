//! The thread-aware global registry.
//!
//! Each thread owns a [`ThreadBuffer`] behind a thread-local
//! `Arc<Mutex<…>>`; the registry keeps a second `Arc` so buffers outlive
//! their threads (the Monte Carlo executor spawns scoped workers that die
//! after every ensemble, but their telemetry must survive until the caller
//! snapshots). The per-thread mutex is uncontended except during
//! [`snapshot`]/[`reset`], so the hot path is a thread-local access plus
//! an unclocked lock.
//!
//! Determinism: [`snapshot`] merges buffers in *registration order* (a
//! monotone id handed out on first use). All span and counter aggregates
//! are integer sums keyed by name — associative and commutative, hence
//! independent of even that order; histogram float moments are the only
//! order-sensitive reduction, and the fixed ordering pins them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::LogHistogram;
use crate::report::{self, TelemetryReport};

/// Hard cap on buffered raw trace events per thread; aggregates keep
/// counting past it and the drop count is reported.
pub(crate) const EVENT_CAP: usize = 65_536;

/// One still-open span on a thread's stack.
pub(crate) struct ActiveSpan {
    pub path: String,
    pub start_ns: u64,
    pub child_ns: u64,
}

/// Closed-span aggregate for one span path on one thread.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanAgg {
    pub count: u64,
    pub total_ns: u64,
    pub self_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

/// A raw completed-span event for the Chrome trace exporter.
#[derive(Debug, Clone)]
pub(crate) struct RawEvent {
    pub path: String,
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// Everything one thread has collected.
#[derive(Default)]
pub(crate) struct ThreadBuffer {
    pub stack: Vec<ActiveSpan>,
    pub spans: BTreeMap<String, SpanAgg>,
    pub counters: BTreeMap<&'static str, u64>,
    pub histograms: BTreeMap<&'static str, LogHistogram>,
    pub events: Vec<RawEvent>,
    pub dropped_events: u64,
}

impl ThreadBuffer {
    pub fn begin_span(&mut self, name: &'static str, now_ns: u64) {
        let path = match self.stack.last() {
            Some(parent) => format!("{}/{name}", parent.path),
            None => name.to_owned(),
        };
        self.stack.push(ActiveSpan {
            path,
            start_ns: now_ns,
            child_ns: 0,
        });
    }

    pub fn end_span(&mut self, now_ns: u64) {
        let Some(span) = self.stack.pop() else {
            // A disabled→enabled toggle can orphan a close; ignore it.
            return;
        };
        let dur = now_ns.saturating_sub(span.start_ns);
        let self_ns = dur.saturating_sub(span.child_ns);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += dur;
        }
        let agg = self.spans.entry(span.path.clone()).or_insert(SpanAgg {
            count: 0,
            total_ns: 0,
            self_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
        agg.count += 1;
        agg.total_ns += dur;
        agg.self_ns += self_ns;
        agg.min_ns = agg.min_ns.min(dur);
        agg.max_ns = agg.max_ns.max(dur);
        if self.events.len() < EVENT_CAP {
            self.events.push(RawEvent {
                path: span.path,
                start_ns: span.start_ns,
                dur_ns: dur,
            });
        } else {
            self.dropped_events += 1;
        }
    }

    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    pub fn record_value(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().push(value);
    }

    fn clear(&mut self) {
        // Open spans stay on the stack; everything closed is dropped.
        self.spans.clear();
        self.counters.clear();
        self.histograms.clear();
        self.events.clear();
        self.dropped_events = 0;
    }
}

type Shared = Arc<Mutex<ThreadBuffer>>;

static REGISTRY: Mutex<Vec<(u32, Shared)>> = Mutex::new(Vec::new());
static NEXT_ID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static LOCAL: Shared = register();
}

fn register() -> Shared {
    let buf: Shared = Arc::default();
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((id, buf.clone()));
    buf
}

/// Runs `f` against the calling thread's buffer.
pub(crate) fn with_buffer<R>(f: impl FnOnce(&mut ThreadBuffer) -> R) -> R {
    LOCAL.with(|shared| f(&mut shared.lock().unwrap_or_else(|e| e.into_inner())))
}

/// Merges every registered buffer into a report (see module docs for the
/// determinism argument).
pub(crate) fn snapshot() -> TelemetryReport {
    let entries: Vec<(u32, Shared)> = {
        let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        reg.sort_by_key(|(id, _)| *id);
        reg.iter().map(|(id, b)| (*id, b.clone())).collect()
    };

    let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, LogHistogram> = BTreeMap::new();
    let mut events: Vec<report::TraceEvent> = Vec::new();
    let mut dropped = 0u64;

    for (tid, shared) in &entries {
        let buf = shared.lock().unwrap_or_else(|e| e.into_inner());
        for (path, agg) in &buf.spans {
            match spans.get_mut(path) {
                Some(acc) => {
                    acc.count += agg.count;
                    acc.total_ns += agg.total_ns;
                    acc.self_ns += agg.self_ns;
                    acc.min_ns = acc.min_ns.min(agg.min_ns);
                    acc.max_ns = acc.max_ns.max(agg.max_ns);
                }
                None => {
                    spans.insert(path.clone(), *agg);
                }
            }
        }
        for (&name, &v) in &buf.counters {
            *counters.entry(name.to_owned()).or_insert(0) += v;
        }
        for (&name, h) in &buf.histograms {
            histograms.entry(name.to_owned()).or_default().merge(h);
        }
        for ev in &buf.events {
            events.push(report::TraceEvent {
                path: ev.path.clone(),
                tid: *tid,
                start_us: ev.start_ns as f64 / 1.0e3,
                dur_us: ev.dur_ns as f64 / 1.0e3,
            });
        }
        dropped += buf.dropped_events;
    }
    events.sort_by(|a, b| a.start_us.total_cmp(&b.start_us).then(a.tid.cmp(&b.tid)));

    TelemetryReport::assemble(spans, counters, histograms, events, dropped)
}

/// Clears all buffers and drops buffers whose threads have exited.
pub(crate) fn reset() {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for (_, shared) in reg.iter() {
        shared.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
    // A buffer only the registry still references belongs to a dead thread.
    reg.retain(|(_, shared)| Arc::strong_count(shared) > 1);
}
