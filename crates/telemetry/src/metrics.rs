//! Streaming log-scale histograms with moment tracking.
//!
//! Values in this workspace span many orders of magnitude — Newton
//! residuals near 1e-12, trial wall times in milliseconds, path counts in
//! the millions — so the histogram bins are logarithmic: a fixed layout of
//! [`BINS_PER_DECADE`] bins per decade from 1e-12 up to 1e9, with explicit
//! underflow/overflow buckets. Counts are exact integers, so merging
//! histograms is associative and the merged result is independent of
//! merge order.

/// Lowest represented decade (values below `10^DECADE_LO` underflow).
const DECADE_LO: i32 = -12;
/// Highest represented decade (values at or above `10^DECADE_HI` overflow).
const DECADE_HI: i32 = 9;
/// Log-scale resolution.
const BINS_PER_DECADE: usize = 8;
/// Total number of regular bins.
const NBINS: usize = (DECADE_HI - DECADE_LO) as usize * BINS_PER_DECADE;

/// A streaming log-scale histogram plus Welford moments.
///
/// `push` is O(1) and allocation-free after construction; `merge` adds
/// exact bin counts and combines moments with the Chan et al. update.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    bins: Vec<u64>,
    /// Values ≤ 0 or below the lowest decade.
    below: u64,
    /// Values at or above the highest decade.
    above: u64,
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram {
            bins: vec![0; NBINS],
            below: 0,
            above: 0,
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);

        if x <= 0.0 {
            self.below += 1;
            return;
        }
        let l = x.log10();
        if l < DECADE_LO as f64 {
            self.below += 1;
        } else if l >= DECADE_HI as f64 {
            self.above += 1;
        } else {
            let k = ((l - DECADE_LO as f64) * BINS_PER_DECADE as f64) as usize;
            self.bins[k.min(NBINS - 1)] += 1;
        }
    }

    /// Merges another histogram. Bin counts add exactly; moments combine
    /// with the pairwise Chan update (order-dependent only through float
    /// rounding, which is why callers merge in a fixed order).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let delta = other.mean - self.mean;
        let n = na + nb;
        self.mean += delta * nb / n;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.below += other.below;
        self.above += other.above;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The `q`-quantile (`q` in `[0, 1]`) at log-bin resolution: the upper
    /// edge of the bin where the cumulative count crosses `q·n`. Underflow
    /// resolves to the observed minimum, overflow to the observed maximum;
    /// an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.n as f64).ceil().max(1.0) as u64;
        let mut cum = self.below;
        if cum >= target {
            return self.min;
        }
        for (k, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                let edge = DECADE_LO as f64 + (k + 1) as f64 / BINS_PER_DECADE as f64;
                // Never report past the observed extremes. (`.max().min()`
                // rather than `clamp`, which panics on an inverted or NaN
                // range — unreachable from `push`, but this accessor must
                // never take the exporter down.)
                return 10f64.powf(edge).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Condenses the histogram into a [`HistogramSummary`].
    pub fn summary(&self) -> HistogramSummary {
        let empty = self.n == 0;
        HistogramSummary {
            n: self.n,
            mean: if empty { 0.0 } else { self.mean },
            std_dev: if empty {
                0.0
            } else {
                (self.m2 / self.n as f64).max(0.0).sqrt()
            },
            min: if empty { 0.0 } else { self.min },
            max: if empty { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// The condensed distribution summary exported per metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Observations.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (log-bin resolution).
    pub p50: f64,
    /// 90th percentile (log-bin resolution).
    pub p90: f64,
    /// 99th percentile (log-bin resolution).
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        let s = h.summary();
        assert_eq!(s.n, 0);
        assert_eq!((s.mean, s.std_dev, s.min, s.max), (0.0, 0.0, 0.0, 0.0));
        assert_eq!((s.p50, s.p90, s.p99), (0.0, 0.0, 0.0));
    }

    #[test]
    fn quantiles_stay_finite_on_empty_and_hostile_input() {
        let mut h = LogHistogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "empty quantile {q}");
        }
        h.push(f64::NAN);
        h.push(f64::INFINITY);
        h.push(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0, "non-finite samples are ignored");
        h.push(2.0);
        let s = h.summary();
        for (name, v) in [
            ("mean", s.mean),
            ("std_dev", s.std_dev),
            ("min", s.min),
            ("max", s.max),
            ("p50", s.p50),
            ("p90", s.p90),
            ("p99", s.p99),
        ] {
            assert!(v.is_finite(), "{name} = {v} not finite");
        }
    }

    #[test]
    fn single_sample_quantiles_bracket_the_sample() {
        let mut h = LogHistogram::new();
        h.push(3.7e-3);
        let s = h.summary();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.7e-3);
        assert_eq!(s.min, s.max);
        // All quantiles fall on the single sample (clamped to extremes).
        for q in [s.p50, s.p90, s.p99] {
            assert_eq!(q, 3.7e-3, "quantile {q}");
        }
    }

    #[test]
    fn quantiles_track_a_log_uniform_sweep() {
        let mut h = LogHistogram::new();
        // 1000 log-uniform samples over 1e-6..1e0.
        for k in 0..1000 {
            h.push(10f64.powf(-6.0 + 6.0 * k as f64 / 1000.0));
        }
        let s = h.summary();
        // p50 near 1e-3, p90 near 10^-0.6, within one bin (factor 10^(1/8)).
        let tol = 10f64.powf(2.0 / BINS_PER_DECADE as f64);
        assert!(s.p50 / 1e-3 < tol && 1e-3 / s.p50 < tol, "p50 {}", s.p50);
        let p90_expect = 10f64.powf(-0.6);
        assert!(
            s.p90 / p90_expect < tol && p90_expect / s.p90 < tol,
            "p90 {}",
            s.p90
        );
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
    }

    #[test]
    fn saturated_overflow_bucket_reports_observed_max() {
        let mut h = LogHistogram::new();
        // Everything at or beyond the top decade.
        for k in 1..=10 {
            h.push(1e9 * k as f64);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.5), 1e10);
        assert_eq!(h.quantile(1.0), 1e10);
        assert_eq!(h.summary().max, 1e10);
    }

    #[test]
    fn saturated_underflow_bucket_reports_observed_min() {
        let mut h = LogHistogram::new();
        h.push(0.0);
        h.push(-5.0);
        h.push(1e-15);
        assert_eq!(h.quantile(0.5), -5.0);
        assert_eq!(h.summary().min, -5.0);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let mut h = LogHistogram::new();
        h.push(f64::NAN);
        h.push(f64::INFINITY);
        h.push(1.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.summary().mean, 1.0);
    }

    #[test]
    fn merge_matches_sequential_pushes() {
        let xs: Vec<f64> = (1..500).map(|k| (k as f64) * 1.7e-4).collect();
        let mut whole = LogHistogram::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        xs[..250].iter().for_each(|&x| left.push(x));
        xs[250..].iter().for_each(|&x| right.push(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.quantile(0.5), whole.quantile(0.5));
        assert!((left.summary().mean - whole.summary().mean).abs() < 1e-12);
        assert!((left.summary().std_dev - whole.summary().std_dev).abs() < 1e-12);
    }

    #[test]
    fn merging_empty_is_identity_both_ways() {
        let mut a = LogHistogram::new();
        a.push(2.0);
        let before = a.clone();
        a.merge(&LogHistogram::new());
        assert_eq!(a, before);
        let mut e = LogHistogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
