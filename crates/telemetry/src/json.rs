//! Minimal JSON emission helpers (no serde in the offline build).

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub(crate) fn num(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_owned();
    }
    if x == 0.0 {
        return "0".to_owned();
    }
    let mag = x.abs();
    if (1.0e-4..1.0e15).contains(&mag) {
        format!("{x}")
    } else {
        format!("{x:e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{01}"), "\\u0001");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(1.0e-300), "1e-300");
        assert!(num(3.0e20).contains('e'));
    }
}
