//! The merged telemetry report and its three exporters.

use std::collections::BTreeMap;

use crate::json::{esc, num};
use crate::metrics::{HistogramSummary, LogHistogram};
use crate::registry::SpanAgg;

/// Merged statistics for one span path across all threads.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Slash-separated nesting path, e.g. `mc.run/mc.trial/spice.op`.
    pub path: String,
    /// Completed executions.
    pub count: u64,
    /// Total wall time across executions \[s\].
    pub total_s: f64,
    /// Total time minus time attributed to child spans \[s\].
    pub self_s: f64,
    /// Fastest single execution \[s\].
    pub min_s: f64,
    /// Slowest single execution \[s\].
    pub max_s: f64,
}

/// A named event count.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterStat {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A named value distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStat {
    /// Histogram name.
    pub name: String,
    /// Distribution summary.
    pub summary: HistogramSummary,
}

/// One completed span instance, for the Chrome trace exporter.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span nesting path.
    pub path: String,
    /// Telemetry thread id (registration order, 1-based).
    pub tid: u32,
    /// Start time relative to the telemetry clock anchor \[µs\].
    pub start_us: f64,
    /// Duration \[µs\].
    pub dur_us: f64,
}

/// A deterministic merge of every thread's telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Value histograms, sorted by name.
    pub histograms: Vec<HistogramStat>,
    /// Raw span instances (capped per thread), sorted by start time.
    pub events: Vec<TraceEvent>,
    /// Events dropped once a thread's buffer cap was reached.
    pub dropped_events: u64,
}

const NS: f64 = 1.0e-9;

impl TelemetryReport {
    pub(crate) fn assemble(
        spans: BTreeMap<String, SpanAgg>,
        counters: BTreeMap<String, u64>,
        histograms: BTreeMap<String, LogHistogram>,
        events: Vec<TraceEvent>,
        dropped_events: u64,
    ) -> TelemetryReport {
        TelemetryReport {
            spans: spans
                .into_iter()
                .map(|(path, a)| SpanStat {
                    path,
                    count: a.count,
                    total_s: a.total_ns as f64 * NS,
                    self_s: a.self_ns as f64 * NS,
                    min_s: if a.count == 0 {
                        0.0
                    } else {
                        a.min_ns as f64 * NS
                    },
                    max_s: a.max_ns as f64 * NS,
                })
                .collect(),
            counters: counters
                .into_iter()
                .map(|(name, value)| CounterStat { name, value })
                .collect(),
            histograms: histograms
                .into_iter()
                .map(|(name, h)| HistogramStat {
                    name,
                    summary: h.summary(),
                })
                .collect(),
            events,
            dropped_events,
        }
    }

    /// Looks up a span aggregate by exact path.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the human-readable report: a span tree (indentation follows
    /// the nesting path) followed by counters and histogram summaries.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        out.push_str("spans (count | total | self | min..max):\n");
        if self.spans.is_empty() {
            out.push_str("  (none)\n");
        }
        for s in &self.spans {
            let depth = s.path.matches('/').count();
            let name = s.path.rsplit('/').next().unwrap_or(&s.path);
            out.push_str(&format!(
                "{:indent$}{name:<width$} {:>8} | {:>10} | {:>10} | {}..{}\n",
                "",
                s.count,
                fmt_secs(s.total_s),
                fmt_secs(s.self_s),
                fmt_secs(s.min_s),
                fmt_secs(s.max_s),
                indent = 2 + 2 * depth,
                width = 34usize.saturating_sub(2 * depth),
            ));
        }
        out.push_str("\ncounters:\n");
        if self.counters.is_empty() {
            out.push_str("  (none)\n");
        }
        for c in &self.counters {
            out.push_str(&format!("  {:<40} {}\n", c.name, c.value));
        }
        out.push_str("\nhistograms (n | mean | p50 | p90 | p99 | max):\n");
        if self.histograms.is_empty() {
            out.push_str("  (none)\n");
        }
        for h in &self.histograms {
            let s = &h.summary;
            out.push_str(&format!(
                "  {:<40} {:>8} | {:.3e} | {:.3e} | {:.3e} | {:.3e} | {:.3e}\n",
                h.name, s.n, s.mean, s.p50, s.p90, s.p99, s.max
            ));
        }
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "\n({} trace events dropped at buffer cap)\n",
                self.dropped_events
            ));
        }
        out
    }

    /// Serializes the report as a single JSON object (schema
    /// `fts-telemetry/1`; see the README "Observability" section).
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"path\":\"{}\",\"count\":{},\"total_s\":{},\"self_s\":{},\"min_s\":{},\"max_s\":{}}}",
                    esc(&s.path),
                    s.count,
                    num(s.total_s),
                    num(s.self_s),
                    num(s.min_s),
                    num(s.max_s)
                )
            })
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|c| format!("{{\"name\":\"{}\",\"value\":{}}}", esc(&c.name), c.value))
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|h| {
                let s = &h.summary;
                format!(
                    concat!(
                        "{{\"name\":\"{}\",\"n\":{},\"mean\":{},\"std_dev\":{},",
                        "\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}"
                    ),
                    esc(&h.name),
                    s.n,
                    num(s.mean),
                    num(s.std_dev),
                    num(s.min),
                    num(s.max),
                    num(s.p50),
                    num(s.p90),
                    num(s.p99)
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"schema\":\"fts-telemetry/1\",\"spans\":[{}],\"counters\":[{}],",
                "\"histograms\":[{}],\"dropped_events\":{}}}"
            ),
            spans.join(","),
            counters.join(","),
            hists.join(","),
            self.dropped_events
        )
    }

    /// Serializes the raw span instances in the Chrome trace-event format
    /// (load in `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                let name = e.path.rsplit('/').next().unwrap_or(&e.path);
                format!(
                    concat!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},",
                        "\"dur\":{},\"pid\":1,\"tid\":{}}}"
                    ),
                    esc(name),
                    esc(&e.path),
                    num(e.start_us),
                    num(e.dur_us),
                    e.tid
                )
            })
            .collect();
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
            events.join(",")
        )
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1.0e-3 {
        format!("{:.3}ms", s * 1.0e3)
    } else if s >= 1.0e-6 {
        format!("{:.3}us", s * 1.0e6)
    } else {
        format!("{:.0}ns", s * 1.0e9)
    }
}

#[cfg(test)]
mod tests {
    use crate::test_lock;

    /// Structural sanity check for hand-rolled JSON: balanced braces and
    /// brackets outside string literals.
    fn balanced(s: &str) -> bool {
        let (mut brace, mut bracket) = (0i64, 0i64);
        let mut in_str = false;
        let mut escape = false;
        for c in s.chars() {
            if escape {
                escape = false;
                continue;
            }
            match c {
                '\\' if in_str => escape = true,
                '"' => in_str = !in_str,
                '{' if !in_str => brace += 1,
                '}' if !in_str => brace -= 1,
                '[' if !in_str => bracket += 1,
                ']' if !in_str => bracket -= 1,
                _ => {}
            }
            if brace < 0 || bracket < 0 {
                return false;
            }
        }
        brace == 0 && bracket == 0 && !in_str
    }

    fn sample_report() -> crate::TelemetryReport {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        {
            let _a = crate::span("stage");
            let _b = crate::span("solve \"quoted\"");
            crate::counter("events", 2);
            crate::record("latency_s", 3.0e-3);
        }
        let r = crate::snapshot();
        crate::set_enabled(false);
        r
    }

    #[test]
    fn json_export_is_balanced_and_complete() {
        let r = sample_report();
        let j = r.to_json();
        assert!(balanced(&j), "unbalanced JSON: {j}");
        assert!(j.starts_with("{\"schema\":\"fts-telemetry/1\""));
        assert!(j.contains("\"path\":\"stage\""));
        assert!(j.contains("solve \\\"quoted\\\""), "quotes escaped");
        assert!(j.contains("\"name\":\"events\",\"value\":2"));
        assert!(j.contains("\"name\":\"latency_s\""));
    }

    #[test]
    fn chrome_trace_has_complete_events() {
        let r = sample_report();
        let t = r.to_chrome_trace();
        assert!(balanced(&t), "unbalanced trace JSON: {t}");
        assert!(t.contains("\"traceEvents\":["));
        assert!(t.contains("\"ph\":\"X\""));
        assert!(t.contains("\"tid\":"));
    }

    #[test]
    fn tree_render_indents_children() {
        let r = sample_report();
        let tree = r.render_tree();
        assert!(tree.contains("stage"));
        // The child renders by last segment, indented deeper than parent.
        let parent_line = tree
            .lines()
            .find(|l| l.trim_start().starts_with("stage"))
            .unwrap();
        let child_line = tree.lines().find(|l| l.contains("solve")).unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(child_line) > indent(parent_line));
        assert!(tree.contains("counters:"));
        assert!(tree.contains("histograms"));
    }

    #[test]
    fn empty_report_renders() {
        let _l = test_lock::hold();
        crate::set_enabled(false);
        crate::reset();
        let r = crate::snapshot();
        assert!(r.render_tree().contains("(none)"));
        assert!(balanced(&r.to_json()));
        assert!(balanced(&r.to_chrome_trace()));
    }
}
