//! RAII span guards.

use std::marker::PhantomData;

use crate::registry;

/// Closes its span when dropped. `!Send`: a span must end on the thread
/// that opened it, because the span stack is thread-local.
#[must_use = "a span is timed until this guard drops"]
pub struct SpanGuard {
    armed: bool,
    _not_send: PhantomData<*const ()>,
}

pub(crate) fn begin(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            armed: false,
            _not_send: PhantomData,
        };
    }
    let now = crate::now_ns();
    registry::with_buffer(|b| b.begin_span(name, now));
    SpanGuard {
        armed: true,
        _not_send: PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            let now = crate::now_ns();
            registry::with_buffer(|b| b.end_span(now));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::test_lock;

    fn spin(us: u64) {
        let t0 = std::time::Instant::now();
        while t0.elapsed().as_micros() < us as u128 {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nesting_builds_paths_and_attributes_self_time() {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        {
            let _a = crate::span("outer");
            spin(200);
            for _ in 0..3 {
                let _b = crate::span("inner");
                spin(100);
            }
        }
        let r = crate::snapshot();
        crate::set_enabled(false);

        let outer = r.span("outer").expect("outer recorded");
        let inner = r.span("outer/inner").expect("inner nested under outer");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert!(outer.total_s >= inner.total_s, "parent contains children");
        // Self time excludes the three inner spans.
        assert!(outer.self_s < outer.total_s);
        assert!(
            outer.self_s >= 100.0e-6,
            "outer spun 200us outside children"
        );
        assert!(inner.min_s <= inner.max_s);
    }

    #[test]
    fn sibling_threads_merge_into_one_aggregate() {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _g = crate::span("worker");
                    crate::counter("work_items", 10);
                    spin(50);
                });
            }
        });
        let r = crate::snapshot();
        crate::set_enabled(false);

        let w = r.span("worker").expect("workers recorded");
        assert_eq!(w.count, 4, "one span per thread, merged");
        assert_eq!(r.counter("work_items"), 40);
        // Trace events survive thread exit and carry distinct thread ids.
        let tids: std::collections::HashSet<u32> = r
            .events
            .iter()
            .filter(|e| e.path == "worker")
            .map(|e| e.tid)
            .collect();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn snapshot_is_cumulative_and_reset_clears() {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        crate::counter("ticks", 1);
        assert_eq!(crate::snapshot().counter("ticks"), 1);
        crate::counter("ticks", 2);
        assert_eq!(
            crate::snapshot().counter("ticks"),
            3,
            "snapshot does not clear"
        );
        crate::reset();
        assert_eq!(crate::snapshot().counter("ticks"), 0);
        crate::set_enabled(false);
    }
}
