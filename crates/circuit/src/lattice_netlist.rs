//! Wiring a switching lattice into the paper's §V test circuit.
//!
//! The pull-up network is a 500 kΩ resistor to VDD = 1.2 V; the pull-down
//! network is the lattice itself (top plate = output, bottom plate =
//! ground), so the circuit computes the *complement* of the lattice
//! function. A 10 fF capacitor loads the output.

use fts_lattice::Lattice;
use fts_logic::Literal;
use fts_spice::{Netlist, NodeId, Simulator, Waveform};

use crate::model::SwitchCircuitModel;
use crate::switch;
use crate::CircuitError;

/// Electrical configuration of the lattice test bench (defaults follow
/// §V of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchConfig {
    /// Supply voltage \[V\].
    pub vdd: f64,
    /// Pull-up resistance \[Ω\].
    pub pullup_ohms: f64,
    /// Output load capacitance \[F\].
    pub load_cap: f64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            vdd: 1.2,
            pullup_ohms: 500.0e3,
            load_cap: 10.0e-15,
        }
    }
}

/// A lattice instantiated as a circuit, ready for DC or transient runs.
#[derive(Debug, Clone)]
pub struct LatticeCircuit {
    netlist: Netlist,
    out: NodeId,
    vars: usize,
    config: BenchConfig,
}

impl LatticeCircuit {
    /// Builds the §V test bench around `lattice` for `vars` input
    /// variables. Input sources `VIN0..` / `VIN0N..` (true/complement) are
    /// created for every variable and initialized to 0 V / VDD.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction failures; rejects lattices whose
    /// sites reference variables ≥ `vars`.
    pub fn build(
        lattice: &Lattice,
        vars: usize,
        model: &SwitchCircuitModel,
        config: BenchConfig,
    ) -> Result<LatticeCircuit, CircuitError> {
        Self::build_with(lattice, vars, config, |_| *model)
    }

    /// Like [`LatticeCircuit::build`] but with a per-site model: `site_model`
    /// is called once per switch (row-major) and may return a different
    /// [`SwitchCircuitModel`] for every site. This is how process-variation
    /// engines instantiate mismatched lattices — each fabricated switch gets
    /// its own perturbed transistor parameters.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction failures; rejects lattices whose
    /// sites reference variables ≥ `vars`.
    pub fn build_with(
        lattice: &Lattice,
        vars: usize,
        config: BenchConfig,
        mut site_model: impl FnMut(fts_lattice::Site) -> SwitchCircuitModel,
    ) -> Result<LatticeCircuit, CircuitError> {
        for lit in lattice.literals() {
            if let Literal::Var { index, .. } = *lit {
                if index as usize >= vars {
                    return Err(CircuitError::MissingStimulus { variable: index });
                }
            }
        }

        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        nl.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(config.vdd))?;
        let top = nl.node("top");
        nl.resistor("RPU", vdd, top, config.pullup_ohms)?;
        nl.capacitor("CLOAD", top, Netlist::GROUND, config.load_cap)?;

        // Input rails: true and complement per variable.
        let mut input_nodes = Vec::with_capacity(vars);
        for v in 0..vars {
            let p = nl.node(&format!("in{v}"));
            let n = nl.node(&format!("in{v}n"));
            nl.vsource(&format!("VIN{v}"), p, Netlist::GROUND, Waveform::Dc(0.0))?;
            nl.vsource(
                &format!("VIN{v}N"),
                n,
                Netlist::GROUND,
                Waveform::Dc(config.vdd),
            )?;
            input_nodes.push((p, n));
        }

        let (rows, cols) = (lattice.rows(), lattice.cols());
        // Vertical nodes: row boundary r (0..=rows) at column c. Row 0 is
        // the shared top plate; row `rows` is the grounded bottom plate.
        let vert = |nl: &mut Netlist, r: usize, c: usize| -> NodeId {
            if r == 0 {
                top
            } else if r == rows {
                Netlist::GROUND
            } else {
                nl.node(&format!("v{r}_{c}"))
            }
        };
        // Horizontal nodes: boundary between (r, c) and (r, c+1); edge
        // terminals get private floating nodes.
        let horiz =
            |nl: &mut Netlist, r: usize, b: usize| -> NodeId { nl.node(&format!("h{r}_{b}")) };

        for r in 0..rows {
            for c in 0..cols {
                let name = format!("S{r}_{c}");
                let gate = match lattice.literal((r, c)) {
                    Literal::True => vdd,
                    Literal::False => Netlist::GROUND,
                    Literal::Var { index, negated } => {
                        let (p, n) = input_nodes[index as usize];
                        if negated {
                            n
                        } else {
                            p
                        }
                    }
                };
                let t_top = vert(&mut nl, r, c);
                let t_bottom = vert(&mut nl, r + 1, c);
                let t_left = horiz(&mut nl, r, c);
                let t_right = horiz(&mut nl, r, c + 1);
                let model = site_model((r, c));
                switch::add_switch(
                    &mut nl,
                    &name,
                    gate,
                    [t_top, t_right, t_bottom, t_left],
                    &model,
                )?;
            }
        }

        Ok(LatticeCircuit {
            netlist: nl,
            out: top,
            vars,
            config,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Analyzes the MNA sparsity pattern of this circuit, returning a
    /// symbolic factorization shareable with every same-topology circuit
    /// (e.g. all parameter-variation trials of a Monte Carlo ensemble).
    pub fn mna_symbolic(&self) -> std::sync::Arc<fts_spice::Symbolic> {
        self.netlist.mna_symbolic()
    }

    /// Installs a shared symbolic factorization (see
    /// [`fts_spice::netlist::Netlist::share_symbolic`]); analyses of this
    /// circuit then skip the fill-reducing ordering. Safe even when the
    /// topology later turns out to differ: the pattern is verified and a
    /// mismatch falls back to a fresh analysis.
    pub fn share_symbolic(&mut self, symbolic: std::sync::Arc<fts_spice::Symbolic>) {
        self.netlist.share_symbolic(symbolic);
    }

    /// The output node (lattice top plate).
    pub fn out(&self) -> NodeId {
        self.out
    }

    /// The bench configuration.
    pub fn config(&self) -> &BenchConfig {
        &self.config
    }

    /// DC output voltage for a packed input assignment: input `v` is
    /// driven to VDD when bit `v` is set, its complement rail to the
    /// opposite level.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn dc_output(&self, assignment: u32) -> Result<f64, CircuitError> {
        let mut nl = self.netlist.clone();
        let vdd = self.config.vdd;
        for v in 0..self.vars {
            let bit = (assignment >> v) & 1 == 1;
            nl.set_vsource(
                &format!("VIN{v}"),
                Waveform::Dc(if bit { vdd } else { 0.0 }),
            )?;
            nl.set_vsource(
                &format!("VIN{v}N"),
                Waveform::Dc(if bit { 0.0 } else { vdd }),
            )?;
        }
        let op = Simulator::new(&nl).op()?;
        Ok(op.voltage(self.out))
    }

    /// Recovers the Boolean function computed at the output by thresholded
    /// DC analysis over all input assignments. The bench inverts the
    /// lattice (pull-down network), so this is `NOT f_lattice`.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn dc_truth_table(&self) -> Result<Vec<bool>, CircuitError> {
        let mut out = Vec::with_capacity(1 << self.vars);
        for x in 0..(1u32 << self.vars) {
            let v = self.dc_output(x)?;
            out.push(v > self.config.vdd / 2.0);
        }
        Ok(out)
    }

    /// Replaces the stimulus of variable `v` (and its complement rail) for
    /// transient runs.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown variables.
    pub fn set_stimulus(
        &mut self,
        v: usize,
        wave: Waveform,
        complement: Waveform,
    ) -> Result<(), CircuitError> {
        if v >= self.vars {
            return Err(CircuitError::MissingStimulus { variable: v as u8 });
        }
        self.netlist.set_vsource(&format!("VIN{v}"), wave)?;
        self.netlist.set_vsource(&format!("VIN{v}N"), complement)?;
        Ok(())
    }
}

/// Builds PWL stimulus waveforms (true rail and complement) from a bit
/// sequence: one phase per bit, `transition` seconds of linear edge at
/// each phase boundary, levels 0 / `vdd`.
pub fn pwl_from_bits(bits: &[bool], phase: f64, transition: f64, vdd: f64) -> (Waveform, Waveform) {
    let level = |b: bool| if b { vdd } else { 0.0 };
    let mut pos = Vec::with_capacity(2 * bits.len());
    let mut neg = Vec::with_capacity(2 * bits.len());
    for (k, &b) in bits.iter().enumerate() {
        let t0 = k as f64 * phase + if k == 0 { 0.0 } else { transition };
        let t1 = (k + 1) as f64 * phase;
        pos.push((t0, level(b)));
        pos.push((t1, level(b)));
        neg.push((t0, level(!b)));
        neg.push((t1, level(!b)));
    }
    (Waveform::Pwl(pos), Waveform::Pwl(neg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_logic::generators;

    fn model() -> SwitchCircuitModel {
        SwitchCircuitModel::square_hfo2().unwrap()
    }

    #[test]
    fn and2_column_inverts_to_nand() {
        // 2×1 lattice computing a·b → circuit output is NAND(a,b).
        let lat = Lattice::from_literals(2, 1, vec![Literal::pos(0), Literal::pos(1)]).unwrap();
        let ckt = LatticeCircuit::build(&lat, 2, &model(), BenchConfig::default()).unwrap();
        let tt = ckt.dc_truth_table().unwrap();
        assert_eq!(tt, vec![true, true, true, false]);
    }

    #[test]
    fn or2_row_inverts_to_nor() {
        let lat = Lattice::from_literals(1, 2, vec![Literal::pos(0), Literal::pos(1)]).unwrap();
        let ckt = LatticeCircuit::build(&lat, 2, &model(), BenchConfig::default()).unwrap();
        let tt = ckt.dc_truth_table().unwrap();
        assert_eq!(tt, vec![true, false, false, false]);
    }

    #[test]
    fn output_low_level_is_nonzero_ratioed_logic() {
        // The resistive pull-up fights the on lattice: V_OL > 0 as in the
        // paper (0.22 V for XOR3).
        let lat = Lattice::from_literals(1, 1, vec![Literal::pos(0)]).unwrap();
        let ckt = LatticeCircuit::build(&lat, 1, &model(), BenchConfig::default()).unwrap();
        let v_on = ckt.dc_output(0b1).unwrap();
        assert!(v_on > 0.01 && v_on < 0.45, "ratioed V_OL: {v_on}");
        let v_off = ckt.dc_output(0b0).unwrap();
        assert!(v_off > 1.15, "pull-up restores: {v_off}");
    }

    #[test]
    fn constant_sites_tie_to_rails() {
        let lat = Lattice::from_literals(1, 1, vec![Literal::True]).unwrap();
        let ckt = LatticeCircuit::build(&lat, 1, &model(), BenchConfig::default()).unwrap();
        assert!(
            ckt.dc_output(0).unwrap() < 0.45,
            "always-on switch pulls down"
        );
        let lat = Lattice::from_literals(1, 1, vec![Literal::False]).unwrap();
        let ckt = LatticeCircuit::build(&lat, 1, &model(), BenchConfig::default()).unwrap();
        assert!(
            ckt.dc_output(0).unwrap() > 1.15,
            "always-off switch floats the plate"
        );
    }

    #[test]
    fn circuit_recovers_majority_function() {
        // Synthesize MAJ3 and verify the circuit computes its complement.
        let f = generators::majority(3);
        let lat = fts_synth::dual::altun_riedel(&f).unwrap();
        let ckt = LatticeCircuit::build(&lat, 3, &model(), BenchConfig::default()).unwrap();
        let tt = ckt.dc_truth_table().unwrap();
        for x in 0..8u32 {
            assert_eq!(tt[x as usize], !f.eval(x), "input {x:03b}");
        }
    }

    #[test]
    fn per_site_models_change_the_electrical_result() {
        // A 1×1 lattice with a weakened switch (half Kp) pulls down less
        // strongly, so V_OL rises versus the nominal build — but the logic
        // level stays the same.
        let lat = Lattice::from_literals(1, 1, vec![Literal::pos(0)]).unwrap();
        let nominal = model();
        let uniform = LatticeCircuit::build(&lat, 1, &nominal, BenchConfig::default()).unwrap();
        let weak = LatticeCircuit::build_with(&lat, 1, BenchConfig::default(), |_| {
            let mut m = nominal;
            m.type_a.kp *= 0.5;
            m.type_b.kp *= 0.5;
            m
        })
        .unwrap();
        let v_nom = uniform.dc_output(0b1).unwrap();
        let v_weak = weak.dc_output(0b1).unwrap();
        assert!(v_weak > v_nom, "weaker pull-down: {v_weak} vs {v_nom}");
        assert!(v_weak < 0.6, "still reads as logic low");
    }

    #[test]
    fn build_with_matches_build_for_constant_model() {
        let lat = Lattice::from_literals(1, 2, vec![Literal::pos(0), Literal::pos(1)]).unwrap();
        let m = model();
        let a = LatticeCircuit::build(&lat, 2, &m, BenchConfig::default()).unwrap();
        let b = LatticeCircuit::build_with(&lat, 2, BenchConfig::default(), |_| m).unwrap();
        for x in 0..4u32 {
            let (va, vb) = (a.dc_output(x).unwrap(), b.dc_output(x).unwrap());
            assert!((va - vb).abs() < 1e-12, "input {x}: {va} vs {vb}");
        }
    }

    #[test]
    fn build_rejects_unstimulated_variables() {
        let lat = Lattice::from_literals(1, 1, vec![Literal::pos(5)]).unwrap();
        let err = LatticeCircuit::build(&lat, 3, &model(), BenchConfig::default());
        assert!(matches!(
            err,
            Err(CircuitError::MissingStimulus { variable: 5 })
        ));
    }

    #[test]
    fn pwl_bits_produce_complementary_rails() {
        let (p, n) = pwl_from_bits(&[false, true, true], 100e-9, 1e-9, 1.2);
        for &t in &[50e-9, 150e-9, 250e-9] {
            let vp = p.at(t);
            let vn = n.at(t);
            assert!((vp + vn - 1.2).abs() < 1e-9, "rails complement at {t}");
        }
        assert_eq!(p.at(50e-9), 0.0);
        assert_eq!(p.at(150e-9), 1.2);
    }
}
