//! Complementary (dual-rail) lattice circuits — the §VI-A extension.
//!
//! The paper foresees "using a four-terminal lattice for a pull-up
//! network, as used for a pull-down network. This complementary structure
//! obviously makes the static power consumption almost zero and eliminates
//! the dominance of the rise time delay caused by a high pull-up
//! resistor." This module builds exactly that circuit: a pull-up lattice
//! computing `NOT f` between VDD and the output, and a pull-down lattice
//! computing `f` between the output and ground, both made of the same
//! n-type four-terminal switches.

use fts_lattice::Lattice;
use fts_logic::{Literal, TruthTable};
use fts_spice::{Netlist, NodeId, Simulator, Waveform};

use crate::lattice_netlist::BenchConfig;
use crate::model::SwitchCircuitModel;
use crate::switch;
use crate::CircuitError;

/// A complementary lattice circuit: two lattices, no pull-up resistor.
#[derive(Debug, Clone)]
pub struct ComplementaryCircuit {
    netlist: Netlist,
    out: NodeId,
    vars: usize,
    config: BenchConfig,
}

impl ComplementaryCircuit {
    /// Builds the dual-rail circuit. `pulldown` must compute `f` (its
    /// conduction pulls the output low) and `pullup` must compute `NOT f`.
    ///
    /// The two networks share the input rails; the `pullup_ohms` field of
    /// the bench config is unused (there is no resistor).
    ///
    /// # Errors
    ///
    /// Propagates netlist failures; rejects lattices referencing
    /// variables ≥ `vars`.
    pub fn build(
        pulldown: &Lattice,
        pullup: &Lattice,
        vars: usize,
        model: &SwitchCircuitModel,
        config: BenchConfig,
    ) -> Result<ComplementaryCircuit, CircuitError> {
        for lat in [pulldown, pullup] {
            for lit in lat.literals() {
                if let Literal::Var { index, .. } = *lit {
                    if index as usize >= vars {
                        return Err(CircuitError::MissingStimulus { variable: index });
                    }
                }
            }
        }
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        nl.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(config.vdd))?;
        let out = nl.node("out");
        nl.capacitor("CLOAD", out, Netlist::GROUND, config.load_cap)?;

        let mut input_nodes = Vec::with_capacity(vars);
        for v in 0..vars {
            let p = nl.node(&format!("in{v}"));
            let n = nl.node(&format!("in{v}n"));
            nl.vsource(&format!("VIN{v}"), p, Netlist::GROUND, Waveform::Dc(0.0))?;
            nl.vsource(
                &format!("VIN{v}N"),
                n,
                Netlist::GROUND,
                Waveform::Dc(config.vdd),
            )?;
            input_nodes.push((p, n));
        }

        wire_lattice(&mut nl, "pu", pullup, vdd, out, &input_nodes, vdd, model)?;
        wire_lattice(
            &mut nl,
            "pd",
            pulldown,
            out,
            Netlist::GROUND,
            &input_nodes,
            vdd,
            model,
        )?;
        Ok(ComplementaryCircuit {
            netlist: nl,
            out,
            vars,
            config,
        })
    }

    /// Builds the dual-rail realization of `f` by synthesizing both
    /// networks with [`fts_synth::synthesize`].
    ///
    /// # Errors
    ///
    /// Propagates synthesis and construction failures.
    pub fn synthesize(
        f: &TruthTable,
        model: &SwitchCircuitModel,
        config: BenchConfig,
    ) -> Result<ComplementaryCircuit, CircuitError> {
        let pd = fts_synth::synthesize(f).map_err(|_| CircuitError::InvalidConfig {
            reason: "pull-down synthesis failed",
        })?;
        let pu = fts_synth::synthesize(&!f).map_err(|_| CircuitError::InvalidConfig {
            reason: "pull-up synthesis failed",
        })?;
        Self::build(&pd.lattice, &pu.lattice, f.vars(), model, config)
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The output node.
    pub fn out(&self) -> NodeId {
        self.out
    }

    /// DC output voltage for a packed input assignment.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn dc_output(&self, assignment: u32) -> Result<f64, CircuitError> {
        let nl = self.with_inputs(assignment)?;
        Ok(Simulator::new(&nl).op()?.voltage(self.out))
    }

    /// DC supply current magnitude for an input assignment — the static
    /// power figure of merit (§VI-A: "almost zero").
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn static_supply_current(&self, assignment: u32) -> Result<f64, CircuitError> {
        let nl = self.with_inputs(assignment)?;
        let op = Simulator::new(&nl).op()?;
        Ok(op.vsource_current(&nl, "VDD")?.abs())
    }

    /// The Boolean function recovered by thresholded DC analysis. The
    /// complementary circuit computes `NOT f` like the resistive bench.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn dc_truth_table(&self) -> Result<Vec<bool>, CircuitError> {
        (0..(1u32 << self.vars))
            .map(|x| Ok(self.dc_output(x)? > self.config.vdd / 2.0))
            .collect()
    }

    fn with_inputs(&self, assignment: u32) -> Result<Netlist, CircuitError> {
        let mut nl = self.netlist.clone();
        let vdd = self.config.vdd;
        for v in 0..self.vars {
            let bit = (assignment >> v) & 1 == 1;
            nl.set_vsource(
                &format!("VIN{v}"),
                Waveform::Dc(if bit { vdd } else { 0.0 }),
            )?;
            nl.set_vsource(
                &format!("VIN{v}N"),
                Waveform::Dc(if bit { 0.0 } else { vdd }),
            )?;
        }
        Ok(nl)
    }
}

/// Wires a lattice between two plate nodes inside an existing netlist.
/// Shared by the resistive and complementary benches.
#[allow(clippy::too_many_arguments)] // netlist wiring genuinely takes this many handles
pub(crate) fn wire_lattice(
    nl: &mut Netlist,
    prefix: &str,
    lattice: &Lattice,
    top: NodeId,
    bottom: NodeId,
    input_nodes: &[(NodeId, NodeId)],
    vdd: NodeId,
    model: &SwitchCircuitModel,
) -> Result<(), CircuitError> {
    let (rows, cols) = (lattice.rows(), lattice.cols());
    let vert = |nl: &mut Netlist, r: usize, c: usize| -> NodeId {
        if r == 0 {
            top
        } else if r == rows {
            bottom
        } else {
            nl.node(&format!("{prefix}_v{r}_{c}"))
        }
    };
    for r in 0..rows {
        for c in 0..cols {
            let gate = match lattice.literal((r, c)) {
                Literal::True => vdd,
                Literal::False => Netlist::GROUND,
                Literal::Var { index, negated } => {
                    let (p, n) = input_nodes[index as usize];
                    if negated {
                        n
                    } else {
                        p
                    }
                }
            };
            let t_top = vert(nl, r, c);
            let t_bottom = vert(nl, r + 1, c);
            let t_left = nl.node(&format!("{prefix}_h{r}_{c}"));
            let t_right = nl.node(&format!("{prefix}_h{r}_{}", c + 1));
            switch::add_switch(
                nl,
                &format!("{prefix}_S{r}_{c}"),
                gate,
                [t_top, t_right, t_bottom, t_left],
                model,
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_logic::generators;

    fn model() -> SwitchCircuitModel {
        SwitchCircuitModel::square_hfo2().unwrap()
    }

    #[test]
    fn complementary_and2_computes_nand() {
        let f = generators::and(2);
        let ckt = ComplementaryCircuit::synthesize(&f, &model(), BenchConfig::default()).unwrap();
        let tt = ckt.dc_truth_table().unwrap();
        assert_eq!(tt, vec![true, true, true, false]);
    }

    #[test]
    fn complementary_output_low_is_near_ground() {
        // No ratioed divider: the low level sits at (almost) 0 V instead
        // of the resistive bench's ~0.2 V.
        let f = generators::and(2);
        let ckt = ComplementaryCircuit::synthesize(&f, &model(), BenchConfig::default()).unwrap();
        let v_low = ckt.dc_output(0b11).unwrap();
        assert!(v_low < 0.02, "complementary V_OL ≈ 0: {v_low}");
    }

    #[test]
    fn complementary_static_current_is_tiny() {
        // §VI-A: "makes the static power consumption almost zero". The
        // resistive bench burns VDD/(R_pu + R_lattice) ≈ µA when the
        // output is low; the complementary circuit leaks only.
        let f = generators::and(2);
        let ckt = ComplementaryCircuit::synthesize(&f, &model(), BenchConfig::default()).unwrap();
        for x in 0..4u32 {
            let i = ckt.static_supply_current(x).unwrap();
            assert!(i < 5e-8, "input {x:02b}: static current {i:.3e}");
        }
    }

    #[test]
    fn complementary_xor3_functional() {
        let f = generators::xor(3);
        let pd = crate::experiments::xor3_lattice();
        let pu = fts_synth::synthesize(&!&f).unwrap().lattice;
        let ckt =
            ComplementaryCircuit::build(&pd, &pu, 3, &model(), BenchConfig::default()).unwrap();
        let tt = ckt.dc_truth_table().unwrap();
        for x in 0..8u32 {
            assert_eq!(tt[x as usize], !f.eval(x), "input {x:03b}");
        }
    }

    #[test]
    fn rejects_out_of_range_variables() {
        let lat = Lattice::filled(1, 1, Literal::pos(7)).unwrap();
        let err = ComplementaryCircuit::build(&lat, &lat, 2, &model(), BenchConfig::default());
        assert!(matches!(
            err,
            Err(CircuitError::MissingStimulus { variable: 7 })
        ));
    }
}
