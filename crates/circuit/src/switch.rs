//! Instantiating one four-terminal switch (the Fig. 9 subcircuit) into a
//! netlist.

use fts_spice::{Netlist, NodeId, SpiceError};

use crate::model::SwitchCircuitModel;

/// The four terminal nodes of a switch instance, ordered
/// `[top, right, bottom, left]` to match the lattice wiring.
pub type SwitchTerminals = [NodeId; 4];

/// Adds the six-MOSFET four-terminal switch subcircuit to `netlist`.
///
/// Edge transistors (Type A) connect the four adjacent terminal pairs;
/// diagonal transistors (Type B) connect top–bottom and left–right. Every
/// terminal also receives its grounded capacitance, per the paper's §V.
///
/// All six gates share the `gate` node — the defining feature of the
/// four-terminal switch: one control input for every current path.
///
/// # Errors
///
/// Propagates netlist errors (foreign nodes, bad parameters).
pub fn add_switch(
    netlist: &mut Netlist,
    name: &str,
    gate: NodeId,
    terminals: SwitchTerminals,
    model: &SwitchCircuitModel,
) -> Result<(), SpiceError> {
    let [top, right, bottom, left] = terminals;
    // Type A: the four edges of the terminal ring.
    let edges = [(top, right), (right, bottom), (bottom, left), (left, top)];
    for (k, (a, b)) in edges.iter().enumerate() {
        netlist.nmos(&format!("{name}_A{k}"), *a, gate, *b, model.type_a)?;
    }
    // Type B: the two diagonals.
    netlist.nmos(&format!("{name}_B0"), top, gate, bottom, model.type_b)?;
    netlist.nmos(&format!("{name}_B1"), left, gate, right, model.type_b)?;
    // 1 fF to ground on every terminal.
    for (k, t) in terminals.iter().enumerate() {
        if *t != Netlist::GROUND {
            netlist.capacitor(
                &format!("{name}_C{k}"),
                *t,
                Netlist::GROUND,
                model.terminal_cap,
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_spice::{Simulator, Waveform};

    fn model() -> SwitchCircuitModel {
        SwitchCircuitModel::square_hfo2().unwrap()
    }

    fn one_switch(gate_v: f64) -> (Netlist, NodeId) {
        let mut nl = Netlist::new();
        let g = nl.node("g");
        let t1 = nl.node("t1");
        let t2 = nl.node("t2");
        let t3 = nl.node("t3");
        let t4 = nl.node("t4");
        nl.vsource("VG", g, Netlist::GROUND, Waveform::Dc(gate_v))
            .unwrap();
        nl.vsource("VD", t1, Netlist::GROUND, Waveform::Dc(1.2))
            .unwrap();
        nl.resistor("RL", t3, Netlist::GROUND, 1.0e6).unwrap();
        add_switch(&mut nl, "X1", g, [t1, t2, t3, t4], &model()).unwrap();
        (nl, t3)
    }

    #[test]
    fn switch_connects_when_gate_high() {
        let (nl, out) = one_switch(1.2);
        let op = Simulator::new(&nl).op().unwrap();
        assert!(
            op.voltage(out) > 0.9,
            "ON switch passes: {}",
            op.voltage(out)
        );
    }

    #[test]
    fn switch_isolates_when_gate_low() {
        let (nl, out) = one_switch(0.0);
        let op = Simulator::new(&nl).op().unwrap();
        assert!(
            op.voltage(out) < 0.05,
            "OFF switch isolates: {}",
            op.voltage(out)
        );
    }

    #[test]
    fn all_terminal_pairs_conduct() {
        // Drive each terminal in turn, load each other terminal: the ON
        // switch must connect every pair (the paper's symmetry criterion).
        let m = model();
        for drive in 0..4usize {
            for sense in 0..4usize {
                if drive == sense {
                    continue;
                }
                let mut nl = Netlist::new();
                let g = nl.node("g");
                let ts = [nl.node("t1"), nl.node("t2"), nl.node("t3"), nl.node("t4")];
                nl.vsource("VG", g, Netlist::GROUND, Waveform::Dc(1.2))
                    .unwrap();
                nl.vsource("VD", ts[drive], Netlist::GROUND, Waveform::Dc(1.2))
                    .unwrap();
                nl.resistor("RL", ts[sense], Netlist::GROUND, 1.0e6)
                    .unwrap();
                add_switch(&mut nl, "X1", g, ts, &m).unwrap();
                let op = Simulator::new(&nl).op().unwrap();
                assert!(
                    op.voltage(ts[sense]) > 0.85,
                    "pair {drive}->{sense}: {}",
                    op.voltage(ts[sense])
                );
            }
        }
    }

    #[test]
    fn subcircuit_has_six_transistors() {
        let mut nl = Netlist::new();
        let g = nl.node("g");
        let ts = [nl.node("t1"), nl.node("t2"), nl.node("t3"), nl.node("t4")];
        add_switch(&mut nl, "X1", g, ts, &model()).unwrap();
        // 6 MOSFETs + 4 caps.
        assert_eq!(nl.device_count(), 10);
    }
}
