use std::error::Error;
use std::fmt;

use fts_extract::ExtractError;
use fts_lattice::LatticeError;
use fts_spice::SpiceError;

/// Errors produced while building or simulating lattice circuits.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A lattice site references an input variable with no stimulus.
    MissingStimulus {
        /// Variable index without a waveform.
        variable: u8,
    },
    /// The requested chain length or lattice is degenerate.
    InvalidConfig {
        /// Explanation.
        reason: &'static str,
    },
    /// A bisection target could not be bracketed.
    TargetNotBracketed {
        /// The unreachable target value.
        target: f64,
    },
    /// Underlying simulator failure.
    Spice(SpiceError),
    /// Underlying lattice failure.
    Lattice(LatticeError),
    /// Underlying model-extraction failure.
    Extract(ExtractError),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::MissingStimulus { variable } => {
                write!(f, "no stimulus provided for input variable {variable}")
            }
            CircuitError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CircuitError::TargetNotBracketed { target } => {
                write!(f, "bisection target {target:.3e} not bracketed")
            }
            CircuitError::Spice(e) => write!(f, "spice error: {e}"),
            CircuitError::Lattice(e) => write!(f, "lattice error: {e}"),
            CircuitError::Extract(e) => write!(f, "extract error: {e}"),
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CircuitError::Spice(e) => Some(e),
            CircuitError::Lattice(e) => Some(e),
            CircuitError::Extract(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpiceError> for CircuitError {
    fn from(e: SpiceError) -> Self {
        CircuitError::Spice(e)
    }
}

impl From<LatticeError> for CircuitError {
    fn from(e: LatticeError) -> Self {
        CircuitError::Lattice(e)
    }
}

impl From<ExtractError> for CircuitError {
    fn from(e: ExtractError) -> Self {
        CircuitError::Extract(e)
    }
}
