//! Circuit-level modeling of four-terminal switching lattices (§IV–V of
//! the DATE 2019 paper).
//!
//! * [`model`] — the six-MOSFET switch subcircuit parameters (Fig. 9):
//!   four "Type A" edge transistors and two "Type B" diagonal transistors,
//!   obtained from the virtual-TCAD extraction flow;
//! * [`switch`] — instantiating one four-terminal switch into a netlist;
//! * [`lattice_netlist`] — wiring an arbitrary [`fts_lattice::Lattice`]
//!   into the paper's test circuit: 1.2 V supply, 500 kΩ pull-up on the
//!   top plate, grounded bottom plate, 1 fF terminal caps, 10 fF load;
//! * [`experiments`] — the paper's §V experiments: the inverse-XOR3
//!   transient (Fig. 11) and the series-switch drive studies (Fig. 12);
//! * [`complementary`] — the §VI-A dual-rail extension (lattice pull-up
//!   network: near-zero static power, no resistor-limited rise);
//! * [`metrics`] — the §VI-A power / delay / energy / bandwidth analysis.
//!
//! # Example
//!
//! ```
//! use fts_circuit::experiments::{xor3_lattice, Xor3Experiment};
//! use fts_circuit::model::SwitchCircuitModel;
//!
//! let model = SwitchCircuitModel::square_hfo2()?;
//! let report = Xor3Experiment::quick().run(&model)?;
//! assert!(report.functional, "lattice must compute the inverse XOR3");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` deliberately rejects NaN configuration values.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod complementary;
pub mod experiments;
pub mod lattice_netlist;
pub mod metrics;
pub mod model;
pub mod switch;

mod error;
pub use error::CircuitError;
