//! The paper's §V circuit experiments: the inverse-XOR3 transient
//! (Fig. 11) and the series-switch drive studies (Fig. 12a/b).

use fts_lattice::Lattice;
use fts_logic::{generators, Literal};
use fts_spice::analysis::{Integrator, TranConfig};
use fts_spice::{measure, Netlist, Simulator, Waveform};

use crate::lattice_netlist::{pwl_from_bits, BenchConfig, LatticeCircuit};
use crate::model::SwitchCircuitModel;
use crate::switch;
use crate::CircuitError;

/// The 3×3 XOR3 lattice of the paper's Fig. 3b, found by the
/// simulated-annealing search in `fts-synth` and fixed here for
/// reproducibility:
///
/// ```text
/// a'  c'  a
/// b'  1   b
/// a   c   a'
/// ```
///
/// # Example
///
/// ```
/// use fts_circuit::experiments::xor3_lattice;
/// use fts_logic::generators;
///
/// let lat = xor3_lattice();
/// assert_eq!(lat.truth_table(3)?, generators::xor(3));
/// # Ok::<(), fts_lattice::LatticeError>(())
/// ```
pub fn xor3_lattice() -> Lattice {
    Lattice::from_literals(
        3,
        3,
        vec![
            Literal::neg(0),
            Literal::neg(2),
            Literal::pos(0),
            Literal::neg(1),
            Literal::True,
            Literal::pos(1),
            Literal::pos(0),
            Literal::pos(2),
            Literal::neg(0),
        ],
    )
    .expect("constant literals form a valid 3×3 lattice")
}

/// Configuration of the Fig. 11 transient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Xor3Experiment {
    /// Time allotted to each of the eight input phases \[s\].
    pub phase: f64,
    /// Input edge time \[s\].
    pub transition: f64,
    /// Simulation step \[s\].
    pub dt: f64,
    /// Integration method.
    pub integrator: Integrator,
    /// Electrical bench.
    pub bench: BenchConfig,
}

impl Xor3Experiment {
    /// Paper-fidelity settings: 120 ns phases resolved with 0.2 ns steps.
    pub fn paper() -> Xor3Experiment {
        Xor3Experiment {
            phase: 120.0e-9,
            transition: 1.0e-9,
            dt: 0.2e-9,
            integrator: Integrator::Trapezoidal,
            bench: BenchConfig::default(),
        }
    }

    /// Coarser settings for unit tests and doc examples (~4× faster).
    pub fn quick() -> Xor3Experiment {
        Xor3Experiment {
            dt: 0.8e-9,
            ..Xor3Experiment::paper()
        }
    }

    /// Builds the stimulus-wired lattice circuit and the transient
    /// configuration — the *job half* of [`run`](Xor3Experiment::run).
    /// Batch clients hand the netlist and config to the engine and feed
    /// the resulting output waveform back into
    /// [`analyze`](Xor3Experiment::analyze).
    ///
    /// # Errors
    ///
    /// Propagates circuit construction failures.
    pub fn prepare(
        &self,
        model: &SwitchCircuitModel,
    ) -> Result<(LatticeCircuit, TranConfig), CircuitError> {
        let lat = xor3_lattice();
        let mut ckt = LatticeCircuit::build(&lat, 3, model, self.bench)?;
        // Drive inputs through 000,001,…,111 (variable v toggles with
        // period 2^v phases).
        for v in 0..3usize {
            let bits: Vec<bool> = (0..8u32).map(|x| (x >> v) & 1 == 1).collect();
            let (p, n) = pwl_from_bits(&bits, self.phase, self.transition, self.bench.vdd);
            ckt.set_stimulus(v, p, n)?;
        }
        let tstop = self.phase * 8.0;
        let cfg = TranConfig::fixed(self.dt, tstop).integrator(self.integrator);
        Ok((ckt, cfg))
    }

    /// Measures a simulated output waveform against the Fig. 11 protocol —
    /// the *measurement half* of [`run`](Xor3Experiment::run).
    pub fn analyze(&self, time: &[f64], output: Vec<f64>) -> Xor3Report {
        let xor = generators::xor(3);

        // Read the settled level in the last 20% of each phase.
        let mut functional = true;
        let mut v_ol: f64 = f64::NEG_INFINITY;
        let mut v_oh: f64 = f64::INFINITY;
        let mut levels = Vec::with_capacity(8);
        for x in 0..8u32 {
            let t0 = (x as f64 + 0.8) * self.phase;
            let t1 = (x + 1) as f64 * self.phase;
            let lvl = measure::settled_level(time, &output, t0, t1);
            levels.push(lvl);
            let expect_high = !xor.eval(x); // inverse XOR3
            if expect_high {
                v_oh = v_oh.min(lvl);
                functional &= lvl > 0.7 * self.bench.vdd;
            } else {
                v_ol = v_ol.max(lvl);
                functional &= lvl < 0.45;
            }
        }

        // Rise/fall of the output between the settled rails.
        let rise = measure::rise_time(time, &output, v_ol.max(0.0), v_oh, 1);
        let fall = measure::fall_time(time, &output, v_ol.max(0.0), v_oh, 1);
        Xor3Report {
            functional,
            v_ol,
            v_oh,
            rise_s: rise,
            fall_s: fall,
            phase_levels: levels,
            time: time.to_vec(),
            output,
        }
    }

    /// Runs the experiment: the XOR3 lattice driven through all eight
    /// input combinations; the output must equal `NOT XOR3` (the lattice
    /// is the pull-down network).
    ///
    /// # Errors
    ///
    /// Propagates circuit and simulator failures.
    pub fn run(&self, model: &SwitchCircuitModel) -> Result<Xor3Report, CircuitError> {
        let (ckt, cfg) = self.prepare(model)?;
        let tr = Simulator::new(ckt.netlist()).transient(&cfg)?;
        let out = tr.voltage(ckt.out());
        Ok(self.analyze(&tr.time, out))
    }
}

/// Results of the Fig. 11 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Xor3Report {
    /// True when every phase settled to the correct logic level.
    pub functional: bool,
    /// Worst-case low output level \[V\] (paper: ≈ 0.22 V).
    pub v_ol: f64,
    /// Worst-case high output level \[V\].
    pub v_oh: f64,
    /// 10–90% rise time \[s\] (paper: ≈ 11.3 ns), when measurable.
    pub rise_s: Option<f64>,
    /// 90–10% fall time \[s\] (paper: ≈ 4.7 ns), when measurable.
    pub fall_s: Option<f64>,
    /// Settled output level per input phase \[V\].
    pub phase_levels: Vec<f64>,
    /// Simulation time base \[s\].
    pub time: Vec<f64>,
    /// Output waveform \[V\].
    pub output: Vec<f64>,
}

/// Builds the Fig. 12 series chain: `n` four-terminal switches connected
/// top-to-bottom, every gate tied to the driven rail, bottom grounded.
///
/// Returns the netlist and the name of the driving source.
///
/// # Errors
///
/// Rejects `n == 0`.
pub fn series_chain_netlist(
    model: &SwitchCircuitModel,
    n: usize,
    vdd: f64,
) -> Result<(Netlist, &'static str), CircuitError> {
    if n == 0 {
        return Err(CircuitError::InvalidConfig {
            reason: "chain needs at least one switch",
        });
    }
    let mut nl = Netlist::new();
    let drive = nl.node("drive");
    nl.vsource("VDRV", drive, Netlist::GROUND, Waveform::Dc(vdd))?;
    let mut upper = drive;
    for k in 0..n {
        let lower = if k + 1 == n {
            Netlist::GROUND
        } else {
            nl.node(&format!("c{k}"))
        };
        let left = nl.node(&format!("l{k}"));
        let right = nl.node(&format!("r{k}"));
        switch::add_switch(
            &mut nl,
            &format!("S{k}"),
            drive,
            [upper, right, lower, left],
            model,
        )?;
        upper = lower;
    }
    Ok((nl, "VDRV"))
}

/// Fig. 12a: current through a chain of `n` switches at the given supply
/// (1.2 V in the paper) \[A\].
///
/// # Errors
///
/// Propagates simulator failures.
pub fn series_chain_current(
    model: &SwitchCircuitModel,
    n: usize,
    vdd: f64,
) -> Result<f64, CircuitError> {
    let (nl, src) = series_chain_netlist(model, n, vdd)?;
    let op = Simulator::new(&nl).op()?;
    // The source delivers current, so its branch current is negative.
    Ok(-op.vsource_current(&nl, src)?)
}

/// Fig. 12b: supply voltage needed to push `target` amps through a chain
/// of `n` switches, found by bisection \[V\].
///
/// # Errors
///
/// Returns [`CircuitError::TargetNotBracketed`] when the target current is
/// unreachable below `v_max`.
pub fn series_chain_voltage_for_current(
    model: &SwitchCircuitModel,
    n: usize,
    target: f64,
    v_max: f64,
) -> Result<f64, CircuitError> {
    // One netlist serves the whole bisection: only the drive level changes,
    // so every operating point reuses the same symbolic factorization.
    let (mut nl, src) = series_chain_netlist(model, n, v_max)?;
    nl.share_symbolic(nl.mna_symbolic());
    let mut current = |v: f64| -> Result<f64, CircuitError> {
        nl.set_vsource(src, Waveform::Dc(v))?;
        let op = Simulator::new(&nl).op()?;
        Ok(-op.vsource_current(&nl, src)?)
    };
    let (mut lo, mut hi) = (0.0f64, v_max);
    if current(hi)? < target {
        return Err(CircuitError::TargetNotBracketed { target });
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if current(mid)? < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_logic::generators;

    fn model() -> SwitchCircuitModel {
        SwitchCircuitModel::square_hfo2().unwrap()
    }

    #[test]
    fn xor3_lattice_matches_fig3b_function() {
        let lat = xor3_lattice();
        assert_eq!(lat.rows(), 3);
        assert_eq!(lat.cols(), 3);
        assert_eq!(lat.truth_table(3).unwrap(), generators::xor(3));
    }

    #[test]
    fn xor3_transient_is_functional_fig11() {
        let report = Xor3Experiment::quick().run(&model()).unwrap();
        assert!(report.functional, "levels: {:?}", report.phase_levels);
        // Paper: V_OL ≈ 0.22 V — ratioed logic, clearly above ground but
        // below the 0.45 V read threshold.
        assert!(
            report.v_ol > 0.02 && report.v_ol < 0.45,
            "V_OL {}",
            report.v_ol
        );
        assert!(report.v_oh > 1.1, "V_OH {}", report.v_oh);
        // Paper: rise ≈ 11.3 ns, fall ≈ 4.7 ns; same order, rise slower
        // than fall (weak resistive pull-up vs strong pull-down).
        let rise = report.rise_s.expect("rising edge present");
        let fall = report.fall_s.expect("falling edge present");
        assert!(rise > 1.0e-9 && rise < 60.0e-9, "rise {rise:.3e}");
        assert!(fall > 0.2e-9 && fall < 30.0e-9, "fall {fall:.3e}");
        assert!(rise > fall, "pull-up slower than pull-down");
    }

    #[test]
    fn chain_current_decreases_with_length_fig12a() {
        let m = model();
        let mut last = f64::INFINITY;
        let mut values = Vec::new();
        for n in [1usize, 2, 5, 11, 21] {
            let i = series_chain_current(&m, n, 1.2).unwrap();
            assert!(i > 0.0 && i < last, "n={n}: {i:.3e} (prev {last:.3e})");
            values.push(i);
            last = i;
        }
        // Paper shape: ~11 µA at n=1 dropping to ~0.5 µA at n=21 — a
        // 10–30× decay, far from linear in 1/n at the start.
        let decay = values[0] / values[4];
        assert!(decay > 5.0 && decay < 100.0, "decay {decay}");
        // Same order of magnitude as the paper's absolute numbers.
        assert!(
            values[0] > 1.0e-6 && values[0] < 1.0e-4,
            "I(1) = {:.3e}",
            values[0]
        );
    }

    #[test]
    fn chain_voltage_grows_sublinearly_fig12b() {
        let m = model();
        // The paper's constant-current target: the two-switch current at
        // 1.2 V.
        let target = series_chain_current(&m, 2, 1.2).unwrap();
        let v2 = series_chain_voltage_for_current(&m, 2, target, 8.0).unwrap();
        assert!((v2 - 1.2).abs() < 0.05, "self-consistency: {v2}");
        let v8 = series_chain_voltage_for_current(&m, 8, target, 8.0).unwrap();
        let v21 = series_chain_voltage_for_current(&m, 21, target, 8.0).unwrap();
        assert!(v8 > v2 && v21 > v8, "monotone: {v2} {v8} {v21}");
        // Far sub-linear: 10.5× more switches needs ≪ 10.5× the voltage
        // (paper: 2.1×; our stiffer fitted switch gives ~3.2×).
        assert!(v21 < 3.5 * v2, "sublinear: v21 = {v21}, v2 = {v2}");
    }

    #[test]
    fn chain_rejects_zero_length() {
        assert!(matches!(
            series_chain_current(&model(), 0, 1.2),
            Err(CircuitError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn unreachable_current_is_reported() {
        let err = series_chain_voltage_for_current(&model(), 2, 1.0, 2.0);
        assert!(matches!(err, Err(CircuitError::TargetNotBracketed { .. })));
    }
}
