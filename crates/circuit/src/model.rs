//! The six-MOSFET switch model parameters (Fig. 9 of the paper).

use fts_device::{Device, DeviceKind, Dielectric};
use fts_extract::{extract_switch_model, SwitchModel};
use fts_spice::MosParams;

use crate::CircuitError;

/// Circuit-level parameters of one four-terminal switch: level-1 models
/// for the four edge ("Type A") and two diagonal ("Type B") transistors
/// plus the grounded terminal capacitance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchCircuitModel {
    /// Edge transistor (paper: L = 0.35 µm in the square device).
    pub type_a: MosParams,
    /// Diagonal transistor (paper: L = 0.5 µm).
    pub type_b: MosParams,
    /// Grounded capacitance per terminal \[F\] (1 fF in the paper).
    pub terminal_cap: f64,
}

impl SwitchCircuitModel {
    /// Builds the model the paper uses for its circuit experiments: the
    /// square-gate HfO2 device characterized by the virtual TCAD and
    /// fitted by the extraction flow.
    ///
    /// # Errors
    ///
    /// Propagates extraction failures.
    pub fn square_hfo2() -> Result<SwitchCircuitModel, CircuitError> {
        Self::from_device(DeviceKind::Square, Dielectric::HfO2)
    }

    /// Runs the full §III–§IV flow for any device/dielectric combination:
    /// virtual-TCAD characterization followed by level-1 extraction.
    ///
    /// # Errors
    ///
    /// Propagates extraction failures.
    pub fn from_device(
        kind: DeviceKind,
        dielectric: Dielectric,
    ) -> Result<SwitchCircuitModel, CircuitError> {
        let device = Device::new(kind, dielectric);
        Ok(extract_switch_model(&device)?.into())
    }
}

impl From<SwitchModel> for SwitchCircuitModel {
    fn from(m: SwitchModel) -> Self {
        SwitchCircuitModel {
            type_a: MosParams {
                kp: m.type_a.kp,
                vth: m.type_a.vth,
                lambda: m.type_a.lambda,
                w_over_l: m.type_a.w_over_l,
            },
            type_b: MosParams {
                kp: m.type_b.kp,
                vth: m.type_b.vth,
                lambda: m.type_b.lambda,
                w_over_l: m.type_b.w_over_l,
            },
            terminal_cap: m.terminal_capacitance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_hfo2_model_is_switch_grade() {
        let m = SwitchCircuitModel::square_hfo2().unwrap();
        // A usable switch at VDD = 1.2 V: on above ~0.1 V, off at 0 V.
        assert!(
            m.type_a.vth > 0.05 && m.type_a.vth < 0.9,
            "vth {}",
            m.type_a.vth
        );
        assert!(m.type_a.kp > 0.0);
        assert!((m.terminal_cap - 1e-15).abs() < 1e-20);
        // Type A stronger than Type B.
        assert!(m.type_a.kp * m.type_a.w_over_l > m.type_b.kp * m.type_b.w_over_l);
    }

    #[test]
    fn all_devices_extract() {
        for kind in DeviceKind::all() {
            let m = SwitchCircuitModel::from_device(kind, Dielectric::HfO2).unwrap();
            assert!(m.type_a.kp > 0.0, "{kind}");
        }
    }
}
