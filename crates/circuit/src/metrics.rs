//! Power / delay / energy metrics for lattice circuits — the analysis
//! §VI-A of the paper plans ("power consumption, delay (maximum
//! frequency), phase margin, and area").

use fts_spice::analysis::TranConfig;
use fts_spice::{measure, Netlist, NodeId, Simulator, Waveform};

use crate::lattice_netlist::{pwl_from_bits, LatticeCircuit};
use crate::CircuitError;

/// Static and dynamic figures of merit for one lattice circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitMetrics {
    /// Worst-case static supply power over all input assignments \[W\].
    pub static_power_worst: f64,
    /// Mean static supply power over all input assignments \[W\].
    pub static_power_mean: f64,
    /// Energy drawn from the supply across the stimulus transient \[J\].
    pub transient_energy: f64,
    /// Worst-case 50%→50% propagation delay over the exercised output
    /// edges \[s\] (`None` when the stimulus produced no output edge).
    pub worst_delay: Option<f64>,
    /// Switch count (area proxy, as in the paper's size tables).
    pub area_switches: usize,
}

impl CircuitMetrics {
    /// Maximum operating frequency estimate `1/(2·worst_delay)` \[Hz\].
    pub fn max_frequency(&self) -> Option<f64> {
        self.worst_delay.map(|d| 1.0 / (2.0 * d))
    }
}

/// Measures a resistive-bench lattice circuit: static power on every
/// input assignment plus a full input-walk transient for energy and
/// worst-case delay.
///
/// `phase` is the per-assignment dwell time; `dt` the integration step.
///
/// # Errors
///
/// Propagates simulator failures; rejects non-positive times.
pub fn measure_lattice_circuit(
    circuit: &LatticeCircuit,
    vars: usize,
    phase: f64,
    dt: f64,
) -> Result<CircuitMetrics, CircuitError> {
    if !(phase > 0.0) || !(dt > 0.0) {
        return Err(CircuitError::InvalidConfig {
            reason: "phase and dt must be positive",
        });
    }
    let vdd = circuit.config().vdd;

    // Static power per assignment.
    let combos = 1u32 << vars;
    let mut worst = 0.0f64;
    let mut total = 0.0f64;
    for x in 0..combos {
        let nl = netlist_with_inputs(circuit, vars, x)?;
        let op = Simulator::new(&nl).op()?;
        let p = op.vsource_current(&nl, "VDD")?.abs() * vdd;
        worst = worst.max(p);
        total += p;
    }

    // Transient over the full input walk.
    let mut nl = circuit.netlist().clone();
    let seq: Vec<u32> = (0..combos).collect();
    for v in 0..vars {
        let bits: Vec<bool> = seq.iter().map(|x| (x >> v) & 1 == 1).collect();
        let (p, n) = pwl_from_bits(&bits, phase, 1e-9, vdd);
        nl.set_vsource(&format!("VIN{v}"), p)?;
        nl.set_vsource(&format!("VIN{v}N"), n)?;
    }
    let tstop = phase * combos as f64;
    let tr = Simulator::new(&nl).transient(&TranConfig::fixed(dt, tstop))?;
    let supply = tr.vsource_current(&nl, "VDD")?;
    let mut energy = 0.0;
    for k in 1..tr.time.len() {
        let i = 0.5 * (supply[k].abs() + supply[k - 1].abs());
        energy += i * vdd * (tr.time[k] - tr.time[k - 1]);
    }

    let out_wave = tr.voltage(circuit.out());
    let delay = worst_propagation_delay(&tr.time, &out_wave, phase, combos as usize, vdd);

    Ok(CircuitMetrics {
        static_power_worst: worst,
        static_power_mean: total / combos as f64,
        transient_energy: energy,
        worst_delay: delay,
        area_switches: circuit.netlist().device_count() / 10, // 6 FETs + 4 caps per switch
    })
}

/// Worst 50%-crossing delay of the output after each phase boundary.
fn worst_propagation_delay(
    time: &[f64],
    out: &[f64],
    phase: f64,
    phases: usize,
    vdd: f64,
) -> Option<f64> {
    let mid = vdd / 2.0;
    let mut worst: Option<f64> = None;
    for k in 1..phases {
        let t_edge = k as f64 * phase;
        let idx = time.iter().position(|&t| t >= t_edge)?;
        if idx == 0 || idx >= out.len() {
            continue;
        }
        let before = out[idx - 1] > mid;
        // Find the first mid crossing after the input edge, if the output
        // switches in this phase.
        let settled_idx = time
            .iter()
            .position(|&t| t >= t_edge + 0.8 * phase)
            .unwrap_or(out.len() - 1);
        let after = out[settled_idx] > mid;
        if before == after {
            continue;
        }
        if let Some(tc) = measure::crossing_time(time, out, mid, after, idx) {
            let d = tc - t_edge;
            if d > 0.0 && d < phase {
                worst = Some(worst.map_or(d, |w: f64| w.max(d)));
            }
        }
    }
    worst
}

fn netlist_with_inputs(
    circuit: &LatticeCircuit,
    vars: usize,
    assignment: u32,
) -> Result<Netlist, CircuitError> {
    let mut nl = circuit.netlist().clone();
    let vdd = circuit.config().vdd;
    for v in 0..vars {
        let bit = (assignment >> v) & 1 == 1;
        nl.set_vsource(
            &format!("VIN{v}"),
            Waveform::Dc(if bit { vdd } else { 0.0 }),
        )?;
        nl.set_vsource(
            &format!("VIN{v}N"),
            Waveform::Dc(if bit { 0.0 } else { vdd }),
        )?;
    }
    Ok(nl)
}

/// Small-signal output bandwidth of the resistive bench at a given input
/// assignment: the −3 dB frequency of `V(out)/V(in_v)` (§VI-A's
/// frequency-domain figure).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn output_bandwidth(
    circuit: &LatticeCircuit,
    vars: usize,
    assignment: u32,
    swept_var: usize,
    freqs: &[f64],
) -> Result<Option<f64>, CircuitError> {
    let nl = netlist_with_inputs(circuit, vars, assignment)?;
    let res = Simulator::new(&nl).ac(&format!("VIN{swept_var}"), freqs)?;
    Ok(res.bandwidth_3db(circuit.out()))
}

/// A voltage-transfer characteristic: output vs one swept input, with the
/// other inputs held at fixed logic levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Vtc {
    /// Swept input voltages \[V\].
    pub vin: Vec<f64>,
    /// Output voltages \[V\].
    pub vout: Vec<f64>,
}

impl Vtc {
    /// Noise margins from the unity-gain points: `(NM_L, NM_H)` =
    /// `(V_IL − V_OL, V_OH − V_IH)`. Returns `None` when the VTC never
    /// reaches |gain| ≥ 1 (no switching in the swept range).
    pub fn noise_margins(&self) -> Option<(f64, f64)> {
        let n = self.vin.len();
        if n < 3 {
            return None;
        }
        let mut vil = None;
        let mut vih = None;
        for k in 1..n {
            let gain = (self.vout[k] - self.vout[k - 1]) / (self.vin[k] - self.vin[k - 1]);
            if gain.abs() >= 1.0 {
                if vil.is_none() {
                    vil = Some(self.vin[k - 1]);
                }
                vih = Some(self.vin[k]);
            }
        }
        let (vil, vih) = (vil?, vih?);
        let v_oh = self.vout.first().copied()?.max(self.vout.last().copied()?);
        let v_ol = self.vout.first().copied()?.min(self.vout.last().copied()?);
        Some((vil - v_ol, v_oh - vih))
    }
}

/// Sweeps one input of the bench from 0 to VDD (complement rail mirrored)
/// and records the output: the DC voltage-transfer characteristic used
/// for noise-margin analysis.
///
/// `fixed_assignment` sets the non-swept inputs.
///
/// # Errors
///
/// Propagates simulator failures; rejects `points < 3`.
pub fn vtc(
    circuit: &LatticeCircuit,
    vars: usize,
    swept_var: usize,
    fixed_assignment: u32,
    points: usize,
) -> Result<Vtc, CircuitError> {
    if points < 3 {
        return Err(CircuitError::InvalidConfig {
            reason: "VTC needs at least 3 points",
        });
    }
    let vdd = circuit.config().vdd;
    let mut vin = Vec::with_capacity(points);
    let mut vout = Vec::with_capacity(points);
    for k in 0..points {
        let v = vdd * k as f64 / (points - 1) as f64;
        let mut nl = netlist_with_inputs(circuit, vars, fixed_assignment)?;
        nl.set_vsource(&format!("VIN{swept_var}"), Waveform::Dc(v))?;
        nl.set_vsource(&format!("VIN{swept_var}N"), Waveform::Dc(vdd - v))?;
        let op = Simulator::new(&nl).op()?;
        vin.push(v);
        vout.push(op.voltage(circuit.out()));
    }
    Ok(Vtc { vin, vout })
}

/// Handle for AC access to a node by name (convenience for examples).
pub fn node_by_name(netlist: &Netlist, name: &str) -> Result<NodeId, CircuitError> {
    Ok(netlist.find_node(name)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_netlist::{BenchConfig, LatticeCircuit};
    use crate::model::SwitchCircuitModel;
    use fts_lattice::Lattice;
    use fts_logic::Literal;

    fn and2_circuit() -> LatticeCircuit {
        let lat = Lattice::from_literals(2, 1, vec![Literal::pos(0), Literal::pos(1)]).unwrap();
        LatticeCircuit::build(
            &lat,
            2,
            &SwitchCircuitModel::square_hfo2().unwrap(),
            BenchConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn metrics_of_and2_bench() {
        let ckt = and2_circuit();
        let m = measure_lattice_circuit(&ckt, 2, 100e-9, 0.5e-9).unwrap();
        // Static power: worst case is the pulled-down output:
        // ~VDD²/(Rpu + Rlattice) — of order µW at 1.2 V / 500 kΩ.
        assert!(
            m.static_power_worst > 1e-7 && m.static_power_worst < 1e-5,
            "worst static power {:.3e}",
            m.static_power_worst
        );
        assert!(m.static_power_mean < m.static_power_worst);
        assert!(m.transient_energy > 0.0);
        let d = m.worst_delay.expect("output toggles during the walk");
        assert!(d > 1e-10 && d < 100e-9, "delay {d:.3e}");
        assert!(m.max_frequency().unwrap() > 1e6);
        assert_eq!(m.area_switches, 2);
    }

    #[test]
    fn bandwidth_of_low_output_state() {
        // With the lattice ON the output node is driven through the switch
        // resistance: bandwidth set by ~R_on·C_load, in the MHz+ range.
        let ckt = and2_circuit();
        let freqs = fts_spice::analysis::log_sweep(1e3, 1e12, 61);
        let bw = output_bandwidth(&ckt, 2, 0b11, 0, &freqs).unwrap();
        if let Some(bw) = bw {
            assert!(bw > 1e5, "bandwidth {bw:.3e}");
        }
    }

    #[test]
    fn rejects_bad_times() {
        let ckt = and2_circuit();
        assert!(measure_lattice_circuit(&ckt, 2, 0.0, 1e-9).is_err());
        assert!(measure_lattice_circuit(&ckt, 2, 1e-9, 0.0).is_err());
    }

    #[test]
    fn vtc_of_inverter_like_bench() {
        // 1×1 lattice on `a`: the bench is an inverter in a. VTC falls
        // from VDD to V_OL as a rises; noise margins are positive.
        let lat = Lattice::from_literals(1, 1, vec![Literal::pos(0)]).unwrap();
        let ckt = LatticeCircuit::build(
            &lat,
            1,
            &SwitchCircuitModel::square_hfo2().unwrap(),
            BenchConfig::default(),
        )
        .unwrap();
        let curve = vtc(&ckt, 1, 0, 0, 41).unwrap();
        assert!(curve.vout.first().unwrap() > &1.1, "starts high");
        assert!(curve.vout.last().unwrap() < &0.45, "ends low");
        // Monotone non-increasing.
        for w in curve.vout.windows(2) {
            assert!(w[1] <= w[0] + 1e-6);
        }
        let (nml, nmh) = curve.noise_margins().expect("switching VTC");
        assert!(nml > 0.0 && nmh > 0.0, "NM_L {nml:.3}, NM_H {nmh:.3}");
    }

    #[test]
    fn vtc_rejects_too_few_points() {
        let ckt = and2_circuit();
        assert!(vtc(&ckt, 2, 0, 0b10, 2).is_err());
    }
}
