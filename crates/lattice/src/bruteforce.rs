//! Brute-force oracle for lattice-function products.
//!
//! Used by tests and ablation benches: enumerate *all* simple top-to-bottom
//! paths (no irredundancy pruning), then discard products absorbed by a
//! smaller path — the definition given in §II of the paper. The pruned
//! search in [`crate::paths`] must agree with this oracle everywhere; the
//! oracle is exponentially slower, which is exactly the design point the
//! ablation bench demonstrates.

use std::collections::HashSet;

use crate::Site;

/// Returns the minimal top-to-bottom connecting site sets of an `rows×cols`
/// lattice, computed by exhaustive simple-path enumeration followed by
/// absorption.
///
/// Each set is a bitmask over sites in row-major order.
///
/// # Panics
///
/// Panics if `rows * cols > 36` (the enumeration is exponential and the
/// masks are stored in `u64`s — the oracle is for validating small cases)
/// or if a dimension is zero.
pub fn minimal_connecting_sets(rows: usize, cols: usize) -> Vec<u64> {
    assert!(
        rows > 0 && cols > 0,
        "lattice dimensions must be at least 1×1"
    );
    assert!(rows * cols <= 36, "brute-force oracle limited to 36 sites");

    // Enumerate every simple path from any top-row site to any bottom-row
    // site, with no pruning beyond simplicity.
    let mut sets: HashSet<u64> = HashSet::new();
    let mut path_mask = 0u64;
    for c in 0..cols {
        dfs(rows, cols, (0, c), &mut path_mask, &mut sets);
    }

    // Absorption: keep sets with no proper subset among the collected sets.
    let all: Vec<u64> = sets.into_iter().collect();
    let mut minimal: Vec<u64> = Vec::new();
    'outer: for &s in &all {
        for &t in &all {
            if t != s && t & s == t {
                continue 'outer; // t ⊂ s: s is redundant
            }
        }
        minimal.push(s);
    }
    minimal.sort_unstable();
    minimal
}

/// Number of products of the lattice function per the brute-force oracle.
///
/// # Panics
///
/// Same limits as [`minimal_connecting_sets`].
pub fn product_count(rows: usize, cols: usize) -> u64 {
    minimal_connecting_sets(rows, cols).len() as u64
}

fn dfs(rows: usize, cols: usize, site: Site, path_mask: &mut u64, sets: &mut HashSet<u64>) {
    let (r, c) = site;
    let bit = 1u64 << (r * cols + c);
    *path_mask |= bit;
    if r == rows - 1 {
        sets.insert(*path_mask);
        // A simple path may continue past a bottom-row site, but any such
        // continuation is a superset of the prefix recorded here, so it can
        // never survive absorption; stopping keeps the oracle honest AND
        // matches the definition (a path that reached the bottom plate has
        // connected the plates).
    } else {
        let candidates = [
            (r + 1, c),
            (r, c.wrapping_sub(1)),
            (r, c + 1),
            (r.wrapping_sub(1), c),
        ];
        for (nr, nc) in candidates {
            if nr >= rows || nc >= cols {
                continue;
            }
            if *path_mask & (1u64 << (nr * cols + nc)) != 0 {
                continue;
            }
            dfs(rows, cols, (nr, nc), path_mask, sets);
        }
    }
    *path_mask &= !bit;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_matches_pruned_search() {
        for m in 1..=4 {
            for n in 1..=4 {
                assert_eq!(
                    product_count(m, n),
                    crate::count::product_count(m, n),
                    "m={m} n={n}"
                );
            }
        }
        assert_eq!(product_count(5, 4), crate::count::product_count(5, 4));
        assert_eq!(product_count(4, 5), crate::count::product_count(4, 5));
        assert_eq!(product_count(6, 3), crate::count::product_count(6, 3));
        assert_eq!(product_count(3, 6), crate::count::product_count(3, 6));
    }

    #[test]
    fn oracle_sets_match_pruned_path_sets() {
        let (m, n) = (4, 4);
        let mut pruned: Vec<u64> = Vec::new();
        crate::paths::visit(m, n, |p| {
            let mut mask = 0u64;
            for &(r, c) in p {
                mask |= 1 << (r * n + c);
            }
            pruned.push(mask);
        });
        pruned.sort_unstable();
        assert_eq!(pruned, minimal_connecting_sets(m, n));
    }

    #[test]
    #[should_panic(expected = "36 sites")]
    fn oracle_rejects_large_grids() {
        let _ = product_count(7, 7);
    }
}
