//! Compact text format for lattices.
//!
//! One row per line, sites separated by whitespace. A site is a variable
//! letter (`a`–`z`, or `xN` for larger indices), optionally followed by
//! `'` for the complemented literal; `0` and `1` are the constants. The
//! format round-trips with [`Lattice`]'s `Display` implementation.
//!
//! ```text
//! a' c' a
//! b'  1 b
//! a  c  a'
//! ```

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use fts_logic::Literal;

use crate::{Lattice, LatticeError};

/// Errors from parsing the lattice text format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseLatticeError {
    /// The input contained no rows.
    Empty,
    /// A row had a different number of sites than the first row.
    RaggedRow {
        /// Zero-based row index.
        row: usize,
        /// Sites found in that row.
        got: usize,
        /// Sites expected (from the first row).
        expected: usize,
    },
    /// A token was not a valid literal.
    BadToken {
        /// The offending token.
        token: String,
    },
    /// Grid construction failed after parsing.
    Lattice(LatticeError),
}

impl fmt::Display for ParseLatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLatticeError::Empty => write!(f, "no lattice rows in input"),
            ParseLatticeError::RaggedRow { row, got, expected } => {
                write!(f, "row {row} has {got} sites, expected {expected}")
            }
            ParseLatticeError::BadToken { token } => write!(f, "invalid literal {token:?}"),
            ParseLatticeError::Lattice(e) => write!(f, "lattice error: {e}"),
        }
    }
}

impl Error for ParseLatticeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseLatticeError::Lattice(e) => Some(e),
            _ => None,
        }
    }
}

/// Parses one literal token.
fn parse_literal(token: &str) -> Result<Literal, ParseLatticeError> {
    let bad = || ParseLatticeError::BadToken {
        token: token.to_owned(),
    };
    let (body, negated) = match token.strip_suffix('\'') {
        Some(b) => (b, true),
        None => (token, false),
    };
    let lit = match body {
        "0" => {
            if negated {
                Literal::True
            } else {
                Literal::False
            }
        }
        "1" => {
            if negated {
                Literal::False
            } else {
                Literal::True
            }
        }
        _ => {
            let index = if let Some(rest) = body.strip_prefix('x') {
                rest.parse::<u8>().map_err(|_| bad())?
            } else if body.len() == 1 && body.as_bytes()[0].is_ascii_lowercase() {
                body.as_bytes()[0] - b'a'
            } else {
                return Err(bad());
            };
            Literal::Var { index, negated }
        }
    };
    Ok(lit)
}

/// Parses the text format into a [`Lattice`].
///
/// # Errors
///
/// See [`ParseLatticeError`].
///
/// # Example
///
/// ```
/// use fts_lattice::text::parse;
/// use fts_logic::generators;
///
/// let lat = parse("a' c' a\nb' 1 b\na c a'")?;
/// assert_eq!(lat.truth_table(3)?, generators::xor(3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse(input: &str) -> Result<Lattice, ParseLatticeError> {
    let rows: Vec<Vec<Literal>> = input
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| line.split_whitespace().map(parse_literal).collect())
        .collect::<Result<_, _>>()?;
    if rows.is_empty() {
        return Err(ParseLatticeError::Empty);
    }
    let cols = rows[0].len();
    for (i, r) in rows.iter().enumerate() {
        if r.len() != cols {
            return Err(ParseLatticeError::RaggedRow {
                row: i,
                got: r.len(),
                expected: cols,
            });
        }
    }
    let sites: Vec<Literal> = rows.iter().flatten().copied().collect();
    Lattice::from_literals(rows.len(), cols, sites).map_err(ParseLatticeError::Lattice)
}

impl FromStr for Lattice {
    type Err = ParseLatticeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_xor3_lattice() {
        let lat = parse("a' c' a\nb' 1 b\na c a'").unwrap();
        assert_eq!((lat.rows(), lat.cols()), (3, 3));
        assert_eq!(lat.literal((1, 1)), Literal::True);
        assert_eq!(lat.literal((0, 0)), Literal::neg(0));
    }

    #[test]
    fn display_parse_roundtrip() {
        let lat = parse("a b'\nx10 0\n1 c").unwrap();
        let text = lat.to_string();
        let back: Lattice = text.parse().unwrap();
        assert_eq!(back, lat);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(parse(""), Err(ParseLatticeError::Empty)));
        assert!(matches!(
            parse("a b\nc"),
            Err(ParseLatticeError::RaggedRow { .. })
        ));
        assert!(matches!(
            parse("a B"),
            Err(ParseLatticeError::BadToken { .. })
        ));
        assert!(matches!(
            parse("x999"),
            Err(ParseLatticeError::BadToken { .. })
        ));
    }

    #[test]
    fn negated_constants_normalize() {
        let lat = parse("0' 1'").unwrap();
        assert_eq!(lat.literal((0, 0)), Literal::True);
        assert_eq!(lat.literal((0, 1)), Literal::False);
    }

    #[test]
    fn extended_variable_indices() {
        let lat = parse("x30 x31'").unwrap();
        assert_eq!(lat.literal((0, 0)), Literal::pos(30));
        assert_eq!(lat.literal((0, 1)), Literal::neg(31));
    }
}
