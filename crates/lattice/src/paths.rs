//! Enumeration of the irredundant top-to-bottom paths of an `m×n` lattice.
//!
//! The products of the lattice function (§II, Fig. 2c of the paper)
//! correspond one-to-one to the *minimal* site sets that connect the top
//! plate to the bottom plate. A site set is minimal exactly when it is an
//! induced (chordless) path in the grid graph whose only top-row site is its
//! first site and whose only bottom-row site is its last site:
//!
//! * if a path touched the top or bottom row twice, the segment after (or
//!   before) the second touch could be dropped — e.g. the paper's example
//!   where `x3·x2·x1·x4·x7` is eliminated by `x1·x4·x7`;
//! * if a path had a chord (two non-consecutive sites that are grid
//!   neighbours), the cells between the chord endpoints could be dropped.
//!
//! The visitor below enumerates exactly these paths by depth-first search,
//! pruning any extension that would create a chord or revisit the plates.

use crate::Site;

/// Calls `f` once per irredundant top-to-bottom path of an `rows×cols`
/// lattice. The slice passed to `f` lists sites from top to bottom.
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
///
/// # Example
///
/// ```
/// use fts_lattice::paths;
///
/// let mut count = 0u64;
/// paths::visit(3, 3, |_| count += 1);
/// assert_eq!(count, 9); // Table I entry (3,3)
/// ```
pub fn visit<F: FnMut(&[Site])>(rows: usize, cols: usize, mut f: F) {
    assert!(
        rows > 0 && cols > 0,
        "lattice dimensions must be at least 1×1"
    );
    let _span = fts_telemetry::span("lattice.paths.visit");
    if rows == 1 {
        // Every site touches both plates: each single site is a path.
        for c in 0..cols {
            f(&[(0, c)]);
        }
        fts_telemetry::counter("lattice.paths.nodes_visited", cols as u64);
        fts_telemetry::counter("lattice.paths.found", cols as u64);
        return;
    }
    let mut walker = Walker {
        rows,
        cols,
        occupied: vec![false; rows * cols],
        path: Vec::with_capacity(rows * cols),
        nodes: 0,
        found: 0,
    };
    for c in 0..cols {
        walker.start(c, &mut f);
    }
    fts_telemetry::counter("lattice.paths.nodes_visited", walker.nodes);
    fts_telemetry::counter("lattice.paths.found", walker.found);
}

/// Collects all irredundant paths of an `rows×cols` lattice.
///
/// Prefer [`visit`] for large lattices — the 9×9 lattice already has
/// 38 930 447 paths.
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
pub fn enumerate(rows: usize, cols: usize) -> Vec<Vec<Site>> {
    let mut out = Vec::new();
    visit(rows, cols, |p| out.push(p.to_vec()));
    out
}

struct Walker {
    rows: usize,
    cols: usize,
    occupied: Vec<bool>,
    path: Vec<Site>,
    /// Search-tree nodes expanded (pushes), for telemetry.
    nodes: u64,
    /// Complete paths reported, for telemetry.
    found: u64,
}

impl Walker {
    fn start<F: FnMut(&[Site])>(&mut self, col: usize, f: &mut F) {
        self.push((0, col));
        self.extend(f);
        self.pop();
    }

    fn extend<F: FnMut(&[Site])>(&mut self, f: &mut F) {
        let &(r, c) = self.path.last().expect("path never empty while extending");
        if r == self.rows - 1 {
            self.found += 1;
            f(&self.path);
            return;
        }
        // Candidate moves: down, left, right, up (up only from interior
        // rows; row 0 may never be re-entered).
        let candidates = [
            (r + 1, c),
            (r, c.wrapping_sub(1)),
            (r, c + 1),
            (r.wrapping_sub(1), c),
        ];
        for (nr, nc) in candidates {
            if nr >= self.rows || nc >= self.cols || nr == 0 {
                continue;
            }
            if self.occupied[nr * self.cols + nc] {
                continue;
            }
            if self.adjacent_occupied(nr, nc) != 1 {
                continue; // would create a chord (or is disconnected)
            }
            self.push((nr, nc));
            self.extend(f);
            self.pop();
        }
    }

    /// Number of path sites orthogonally adjacent to `(r, c)`.
    fn adjacent_occupied(&self, r: usize, c: usize) -> usize {
        let mut n = 0;
        if r > 0 && self.occupied[(r - 1) * self.cols + c] {
            n += 1;
        }
        if r + 1 < self.rows && self.occupied[(r + 1) * self.cols + c] {
            n += 1;
        }
        if c > 0 && self.occupied[r * self.cols + c - 1] {
            n += 1;
        }
        if c + 1 < self.cols && self.occupied[r * self.cols + c + 1] {
            n += 1;
        }
        n
    }

    fn push(&mut self, site: Site) {
        self.nodes += 1;
        self.occupied[site.0 * self.cols + site.1] = true;
        self.path.push(site);
    }

    fn pop(&mut self) {
        let site = self.path.pop().expect("push/pop balanced");
        self.occupied[site.0 * self.cols + site.1] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn counts_match_table1_small_corner() {
        // Table I of the paper, rows m=2..4, cols n=2..4.
        let expected = [[2, 3, 4], [4, 9, 16], [6, 17, 36]];
        for (i, row) in expected.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                assert_eq!(
                    enumerate(i + 2, j + 2).len(),
                    want,
                    "m={} n={}",
                    i + 2,
                    j + 2
                );
            }
        }
    }

    #[test]
    fn single_row_and_column() {
        assert_eq!(enumerate(1, 5).len(), 5);
        assert_eq!(enumerate(4, 1).len(), 1);
    }

    #[test]
    fn paths_start_top_end_bottom() {
        for p in enumerate(4, 3) {
            assert_eq!(p.first().unwrap().0, 0);
            assert_eq!(p.last().unwrap().0, 3);
            // Interior sites never in the top row; only the last in bottom.
            for &(r, _) in &p[1..] {
                assert_ne!(r, 0);
            }
            for &(r, _) in &p[..p.len() - 1] {
                assert_ne!(r, 3);
            }
        }
    }

    #[test]
    fn paths_are_connected_and_chordless() {
        for p in enumerate(4, 4) {
            let set: HashSet<(usize, usize)> = p.iter().copied().collect();
            assert_eq!(set.len(), p.len(), "path must be simple");
            for w in p.windows(2) {
                let d = w[0].0.abs_diff(w[1].0) + w[0].1.abs_diff(w[1].1);
                assert_eq!(d, 1, "consecutive sites must be neighbours");
            }
            // Chordless: non-consecutive sites are never adjacent.
            for i in 0..p.len() {
                for j in i + 2..p.len() {
                    let d = p[i].0.abs_diff(p[j].0) + p[i].1.abs_diff(p[j].1);
                    assert!(d > 1, "chord between {:?} and {:?} in {p:?}", p[i], p[j]);
                }
            }
        }
    }

    #[test]
    fn path_sets_are_distinct() {
        let paths = enumerate(5, 4);
        let sets: HashSet<Vec<(usize, usize)>> = paths
            .iter()
            .map(|p| {
                let mut s = p.clone();
                s.sort_unstable();
                s
            })
            .collect();
        assert_eq!(sets.len(), paths.len());
    }

    #[test]
    #[should_panic(expected = "at least 1×1")]
    fn zero_dimension_panics() {
        let _ = enumerate(0, 3);
    }
}
