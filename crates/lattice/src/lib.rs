//! Four-terminal switching-lattice model (§II of the DATE 2019 paper).
//!
//! A *four-terminal switch* connects its top/bottom/left/right terminals to
//! each other whenever its control input is 1. An `m×n` [`Lattice`] of such
//! switches, each wired to its horizontal and vertical neighbours, computes
//! a Boolean function: 1 exactly when the ON switches form a connected path
//! from the top plate to the bottom plate.
//!
//! The *lattice function* `f_{m×n}` — every site controlled by a distinct
//! variable — is the disjunction of one product per **irredundant**
//! top-to-bottom path. Irredundant paths are exactly the induced (chordless)
//! paths that touch the top row only at their first site and the bottom row
//! only at their last site; [`count::product_count`] counts them (Table I of
//! the paper) and [`paths::enumerate`] materializes them (Fig. 2c).
//!
//! # Example
//!
//! ```
//! use fts_lattice::{count, Lattice};
//! use fts_logic::Literal;
//!
//! // Table I, entry (3,3): the 3×3 lattice function has 9 products.
//! assert_eq!(count::product_count(3, 3), 9);
//!
//! // A 2×1 lattice computing a AND b.
//! let lat = Lattice::from_literals(2, 1, vec![Literal::pos(0), Literal::pos(1)])?;
//! let tt = lat.truth_table(2)?;
//! assert_eq!(tt, fts_logic::generators::and(2));
//! # Ok::<(), fts_lattice::LatticeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bruteforce;
pub mod count;
pub mod defects;
mod grid;
pub mod paths;
pub mod text;

pub use grid::{Lattice, LatticeError};

/// A site position in a lattice: `(row, col)`, row 0 at the top plate.
pub type Site = (usize, usize);
