use std::error::Error;
use std::fmt;

use fts_logic::{Cover, Cube, Literal, TruthTable};

use crate::{paths, Site};

/// Errors produced by lattice construction and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LatticeError {
    /// Rows or columns were zero.
    EmptyDimensions,
    /// The literal vector length does not match `rows * cols`.
    SiteCountMismatch {
        /// Expected `rows * cols`.
        expected: usize,
        /// Literals provided.
        got: usize,
    },
    /// A site coordinate was outside the grid.
    SiteOutOfRange {
        /// The offending site.
        site: Site,
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// A site literal references a variable `>= vars`.
    VarOutOfRange {
        /// The referenced variable index.
        index: u8,
        /// The declared input count.
        vars: usize,
    },
    /// The lattice has more sites than the product extraction supports
    /// (cubes are 32-bit masks).
    TooManySites {
        /// Number of sites in the lattice.
        sites: usize,
    },
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::EmptyDimensions => write!(f, "lattice dimensions must be at least 1×1"),
            LatticeError::SiteCountMismatch { expected, got } => {
                write!(f, "expected {expected} site literals, got {got}")
            }
            LatticeError::SiteOutOfRange { site, rows, cols } => {
                write!(f, "site {site:?} outside {rows}×{cols} lattice")
            }
            LatticeError::VarOutOfRange { index, vars } => {
                write!(
                    f,
                    "site literal references variable {index} but lattice has {vars} inputs"
                )
            }
            LatticeError::TooManySites { sites } => {
                write!(
                    f,
                    "product extraction supports at most 32 sites, lattice has {sites}"
                )
            }
        }
    }
}

impl Error for LatticeError {}

/// An `rows × cols` four-terminal switching lattice with a [`Literal`]
/// assigned to every site (the control input of that switch).
///
/// Row 0 touches the top plate, row `rows-1` the bottom plate. The lattice
/// output is 1 when the ON switches connect the plates (§II of the paper).
///
/// # Example
///
/// ```
/// use fts_lattice::Lattice;
/// use fts_logic::{generators, Literal};
///
/// // One column of three switches computes a three-input AND.
/// let lat = Lattice::from_literals(
///     3,
///     1,
///     vec![Literal::pos(0), Literal::pos(1), Literal::pos(2)],
/// )?;
/// assert_eq!(lat.truth_table(3)?, generators::and(3));
/// # Ok::<(), fts_lattice::LatticeError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Lattice {
    rows: usize,
    cols: usize,
    sites: Vec<Literal>,
}

impl Lattice {
    /// Creates a lattice with every site set to the same literal.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::EmptyDimensions`] when `rows` or `cols` is 0.
    pub fn filled(rows: usize, cols: usize, literal: Literal) -> Result<Self, LatticeError> {
        if rows == 0 || cols == 0 {
            return Err(LatticeError::EmptyDimensions);
        }
        Ok(Lattice {
            rows,
            cols,
            sites: vec![literal; rows * cols],
        })
    }

    /// Creates a lattice from site literals in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::EmptyDimensions`] for a degenerate grid and
    /// [`LatticeError::SiteCountMismatch`] when `literals.len() != rows*cols`.
    pub fn from_literals(
        rows: usize,
        cols: usize,
        literals: Vec<Literal>,
    ) -> Result<Self, LatticeError> {
        if rows == 0 || cols == 0 {
            return Err(LatticeError::EmptyDimensions);
        }
        if literals.len() != rows * cols {
            return Err(LatticeError::SiteCountMismatch {
                expected: rows * cols,
                got: literals.len(),
            });
        }
        Ok(Lattice {
            rows,
            cols,
            sites: literals,
        })
    }

    /// The canonical lattice whose sites are the distinct variables
    /// `x_0 .. x_{rows*cols-1}` in row-major order — the lattice whose
    /// function Table I of the paper tabulates.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::TooManySites`] when `rows*cols > 32` (site
    /// variables are packed into 32-bit cubes) and
    /// [`LatticeError::EmptyDimensions`] for a degenerate grid.
    pub fn canonical(rows: usize, cols: usize) -> Result<Self, LatticeError> {
        if rows == 0 || cols == 0 {
            return Err(LatticeError::EmptyDimensions);
        }
        let sites = rows * cols;
        if sites > 32 {
            return Err(LatticeError::TooManySites { sites });
        }
        Ok(Lattice {
            rows,
            cols,
            sites: (0..sites as u8).map(Literal::pos).collect(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of switches.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The literal at `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn literal(&self, site: Site) -> Literal {
        self.sites[self.index(site)]
    }

    /// Replaces the literal at `site`.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::SiteOutOfRange`] for a bad coordinate.
    pub fn set_literal(&mut self, site: Site, literal: Literal) -> Result<(), LatticeError> {
        if site.0 >= self.rows || site.1 >= self.cols {
            return Err(LatticeError::SiteOutOfRange {
                site,
                rows: self.rows,
                cols: self.cols,
            });
        }
        let idx = self.index(site);
        self.sites[idx] = literal;
        Ok(())
    }

    /// Site literals in row-major order.
    pub fn literals(&self) -> &[Literal] {
        &self.sites
    }

    fn index(&self, site: Site) -> usize {
        assert!(
            site.0 < self.rows && site.1 < self.cols,
            "site {site:?} out of range"
        );
        site.0 * self.cols + site.1
    }

    /// Evaluates the lattice on a packed input assignment: true when the ON
    /// switches connect the top plate to the bottom plate.
    ///
    /// This is *percolation semantics* — a flood fill over ON switches —
    /// and is the physical definition of lattice computation. It agrees
    /// with path semantics (see [`Lattice::products`]) on every input.
    pub fn eval(&self, assignment: u32) -> bool {
        let on: Vec<bool> = self.sites.iter().map(|l| l.eval(assignment)).collect();
        // Flood fill from ON cells in row 0.
        let mut seen = vec![false; on.len()];
        let mut stack: Vec<usize> = (0..self.cols).filter(|&c| on[c]).collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(i) = stack.pop() {
            let (r, c) = (i / self.cols, i % self.cols);
            if r == self.rows - 1 {
                return true;
            }
            let push = |j: usize, seen: &mut Vec<bool>, stack: &mut Vec<usize>| {
                if on[j] && !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            };
            if r > 0 {
                push(i - self.cols, &mut seen, &mut stack);
            }
            if r + 1 < self.rows {
                push(i + self.cols, &mut seen, &mut stack);
            }
            if c > 0 {
                push(i - 1, &mut seen, &mut stack);
            }
            if c + 1 < self.cols {
                push(i + 1, &mut seen, &mut stack);
            }
        }
        false
    }

    /// The truth table of the lattice over `vars` input variables.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::VarOutOfRange`] if a site references a
    /// variable `>= vars`, and propagates truth-table construction errors
    /// as a panic-free [`LatticeError::VarOutOfRange`] when `vars` itself
    /// is invalid (0 or > [`fts_logic::MAX_VARS`]).
    pub fn truth_table(&self, vars: usize) -> Result<TruthTable, LatticeError> {
        if vars == 0 || vars > fts_logic::MAX_VARS {
            return Err(LatticeError::VarOutOfRange { index: 0, vars });
        }
        for lit in &self.sites {
            if let Literal::Var { index, .. } = *lit {
                if index as usize >= vars {
                    return Err(LatticeError::VarOutOfRange { index, vars });
                }
            }
        }
        Ok(TruthTable::from_fn(vars, |x| self.eval(x)).expect("vars validated above"))
    }

    /// The sum-of-products computed by path semantics: one product per
    /// irredundant top-to-bottom path, with constant-1 sites dropped from
    /// products and paths through constant-0 sites discarded; the result is
    /// then absorbed.
    ///
    /// For the [canonical](Lattice::canonical) lattice this is exactly the
    /// lattice function of the paper (e.g. the nine products of Fig. 2c).
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::TooManySites`] when a product could involve a
    /// variable index `>= 32`.
    pub fn products(&self) -> Result<Cover, LatticeError> {
        for lit in &self.sites {
            if let Literal::Var { index, .. } = *lit {
                if index >= 32 {
                    return Err(LatticeError::TooManySites {
                        sites: self.site_count(),
                    });
                }
            }
        }
        let mut cover = Cover::new();
        paths::visit(self.rows, self.cols, |path| {
            let mut cube = Cube::top();
            for &site in path {
                match cube.with_literal(self.literal(site)) {
                    Ok(c) => cube = c,
                    Err(_) => return, // contradictory or constant-0 path
                }
            }
            cover.push(cube);
        });
        cover.absorb();
        Ok(cover)
    }

    /// Transposes the lattice (reflection along the main diagonal). The
    /// transposed lattice computes the function whose paths run left-right
    /// in the original; useful for dual-rail constructions.
    pub fn transposed(&self) -> Lattice {
        let mut sites = Vec::with_capacity(self.sites.len());
        for c in 0..self.cols {
            for r in 0..self.rows {
                sites.push(self.literal((r, c)));
            }
        }
        Lattice {
            rows: self.cols,
            cols: self.rows,
            sites,
        }
    }
}

impl fmt::Debug for Lattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Lattice {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>4}", self.literal((r, c)).to_string())?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Lattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            if r > 0 {
                writeln!(f)?;
            }
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>3}", self.literal((r, c)).to_string())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_logic::generators;

    #[test]
    fn dimension_validation() {
        assert!(matches!(
            Lattice::filled(0, 3, Literal::True),
            Err(LatticeError::EmptyDimensions)
        ));
        assert!(matches!(
            Lattice::from_literals(2, 2, vec![Literal::True; 3]),
            Err(LatticeError::SiteCountMismatch {
                expected: 4,
                got: 3
            })
        ));
        assert!(matches!(
            Lattice::canonical(6, 6),
            Err(LatticeError::TooManySites { sites: 36 })
        ));
    }

    #[test]
    fn single_column_is_and() {
        for n in 1..=4 {
            let lat =
                Lattice::from_literals(n, 1, (0..n as u8).map(Literal::pos).collect()).unwrap();
            assert_eq!(lat.truth_table(n).unwrap(), generators::and(n));
        }
    }

    #[test]
    fn single_row_is_or() {
        // One row: every switch touches both plates, so the lattice ORs them.
        for n in 1..=4 {
            let lat =
                Lattice::from_literals(1, n, (0..n as u8).map(Literal::pos).collect()).unwrap();
            assert_eq!(lat.truth_table(n).unwrap(), generators::or(n));
        }
    }

    #[test]
    fn constant_sites() {
        let all_on = Lattice::filled(3, 2, Literal::True).unwrap();
        assert!(all_on.truth_table(1).unwrap().is_one());
        let all_off = Lattice::filled(3, 2, Literal::False).unwrap();
        assert!(all_off.truth_table(1).unwrap().is_zero());
    }

    #[test]
    fn lateral_connection_matters() {
        // 2x2 lattice: a b / b a. Input a=1,b=0 gives two diagonal ON cells
        // that do NOT connect (four-terminal switches connect only
        // orthogonal neighbours).
        let lat = Lattice::from_literals(
            2,
            2,
            vec![
                Literal::pos(0),
                Literal::pos(1),
                Literal::pos(1),
                Literal::pos(0),
            ],
        )
        .unwrap();
        assert!(!lat.eval(0b01));
        assert!(!lat.eval(0b10));
        assert!(lat.eval(0b11));
        assert!(!lat.eval(0b00));
    }

    #[test]
    fn percolation_equals_path_semantics() {
        // Random literal assignments on a 3x3 grid over 3 variables.
        let lits = [
            Literal::pos(0),
            Literal::neg(0),
            Literal::pos(1),
            Literal::neg(1),
            Literal::pos(2),
            Literal::neg(2),
            Literal::True,
            Literal::False,
        ];
        let mut state = 12345u64;
        for _ in 0..50 {
            let sites: Vec<Literal> = (0..9)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    lits[(state >> 33) as usize % lits.len()]
                })
                .collect();
            let lat = Lattice::from_literals(3, 3, sites).unwrap();
            let tt = lat.truth_table(3).unwrap();
            let cover = lat.products().unwrap();
            assert_eq!(cover.to_truth_table(3), tt, "lattice:\n{lat:?}");
        }
    }

    #[test]
    fn canonical_products_match_fig2c_count() {
        let lat = Lattice::canonical(3, 3).unwrap();
        let cover = lat.products().unwrap();
        assert_eq!(cover.len(), 9);
    }

    #[test]
    fn set_literal_updates_function() {
        let mut lat = Lattice::filled(2, 1, Literal::True).unwrap();
        lat.set_literal((0, 0), Literal::pos(0)).unwrap();
        lat.set_literal((1, 0), Literal::pos(1)).unwrap();
        assert_eq!(lat.truth_table(2).unwrap(), generators::and(2));
        assert!(lat.set_literal((2, 0), Literal::True).is_err());
    }

    #[test]
    fn truth_table_rejects_missing_vars() {
        let lat = Lattice::filled(2, 2, Literal::pos(5)).unwrap();
        assert!(matches!(
            lat.truth_table(3),
            Err(LatticeError::VarOutOfRange { index: 5, vars: 3 })
        ));
    }

    #[test]
    fn transpose_involution_and_semantics() {
        let lat = Lattice::from_literals(
            2,
            3,
            vec![
                Literal::pos(0),
                Literal::pos(1),
                Literal::pos(2),
                Literal::neg(0),
                Literal::neg(1),
                Literal::neg(2),
            ],
        )
        .unwrap();
        let t = lat.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transposed(), lat);
        assert_eq!(t.literal((2, 0)), Literal::pos(2));
    }

    #[test]
    fn display_and_debug_nonempty() {
        let lat = Lattice::canonical(2, 2).unwrap();
        assert!(!format!("{lat}").is_empty());
        assert!(format!("{lat:?}").contains("Lattice 2x2"));
    }
}
