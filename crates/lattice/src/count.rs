//! Counting the products of the `m×n` lattice function (Table I).
//!
//! [`product_count`] runs the same chordless-path search as
//! [`crate::paths::visit`] but without materializing paths, which keeps the
//! 9×9 entry (38 930 447 products) tractable.

/// Number of products in the `rows×cols` lattice function — the quantity
/// tabulated in Table I of the paper.
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
///
/// # Example
///
/// ```
/// use fts_lattice::count::product_count;
///
/// assert_eq!(product_count(4, 5), 67);
/// assert_eq!(product_count(5, 4), 94);
/// ```
pub fn product_count(rows: usize, cols: usize) -> u64 {
    assert!(
        rows > 0 && cols > 0,
        "lattice dimensions must be at least 1×1"
    );
    if rows == 1 {
        return cols as u64;
    }
    let mut counter = Counter {
        rows,
        cols,
        occupied: vec![false; rows * cols],
        total: 0,
    };
    for c in 0..cols {
        counter.occupied[c] = true;
        counter.extend(0, c);
        counter.occupied[c] = false;
    }
    counter.total
}

/// Computes the full Table I block: counts for `rows_range × cols_range`.
///
/// Returns the table in row-major order, one inner `Vec` per `m` value.
///
/// # Panics
///
/// Panics if either range contains zero.
///
/// # Example
///
/// ```
/// use fts_lattice::count::product_table;
///
/// let t = product_table(2..=3, 2..=4);
/// assert_eq!(t, vec![vec![2, 3, 4], vec![4, 9, 16]]);
/// ```
pub fn product_table(
    rows_range: std::ops::RangeInclusive<usize>,
    cols_range: std::ops::RangeInclusive<usize>,
) -> Vec<Vec<u64>> {
    rows_range
        .map(|m| cols_range.clone().map(|n| product_count(m, n)).collect())
        .collect()
}

struct Counter {
    rows: usize,
    cols: usize,
    occupied: Vec<bool>,
    total: u64,
}

impl Counter {
    fn extend(&mut self, r: usize, c: usize) {
        if r == self.rows - 1 {
            self.total += 1;
            return;
        }
        let candidates = [
            (r + 1, c),
            (r, c.wrapping_sub(1)),
            (r, c + 1),
            (r.wrapping_sub(1), c),
        ];
        for (nr, nc) in candidates {
            if nr >= self.rows || nc >= self.cols || nr == 0 {
                continue;
            }
            let idx = nr * self.cols + nc;
            if self.occupied[idx] || self.adjacent_occupied(nr, nc) != 1 {
                continue;
            }
            self.occupied[idx] = true;
            self.extend(nr, nc);
            self.occupied[idx] = false;
        }
    }

    fn adjacent_occupied(&self, r: usize, c: usize) -> usize {
        let mut n = 0;
        if r > 0 && self.occupied[(r - 1) * self.cols + c] {
            n += 1;
        }
        if r + 1 < self.rows && self.occupied[(r + 1) * self.cols + c] {
            n += 1;
        }
        if c > 0 && self.occupied[r * self.cols + c - 1] {
            n += 1;
        }
        if c + 1 < self.cols && self.occupied[r * self.cols + c + 1] {
            n += 1;
        }
        n
    }
}

/// Table I exactly as printed in the paper, for cross-checking:
/// `PAPER_TABLE1[m-2][n-2]` is the entry for an `m×n` lattice,
/// `2 ≤ m,n ≤ 9`.
pub const PAPER_TABLE1: [[u64; 8]; 8] = [
    [2, 3, 4, 5, 6, 7, 8, 9],
    [4, 9, 16, 25, 36, 49, 64, 81],
    [6, 17, 36, 67, 118, 203, 344, 575],
    [10, 37, 94, 205, 436, 957, 2146, 4773],
    [16, 77, 236, 621, 1668, 4883, 14880, 44331],
    [26, 163, 602, 1905, 6562, 26317, 110838, 446595],
    [42, 343, 1528, 5835, 25686, 139231, 797048, 4288707],
    [68, 723, 3882, 17873, 100294, 723153, 5509834, 38930447],
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table1_fast_region() {
        // Entries cheap enough for debug-mode tests (m,n ≤ 6 plus edges).
        for m in 2..=6 {
            for n in 2..=6 {
                assert_eq!(
                    product_count(m, n),
                    PAPER_TABLE1[m - 2][n - 2],
                    "m={m} n={n}"
                );
            }
        }
        assert_eq!(product_count(2, 9), PAPER_TABLE1[0][7]);
        assert_eq!(product_count(9, 2), PAPER_TABLE1[7][0]);
        assert_eq!(product_count(3, 9), PAPER_TABLE1[1][7]);
        assert_eq!(product_count(9, 3), PAPER_TABLE1[7][1]);
    }

    #[test]
    fn count_agrees_with_enumeration() {
        for m in 1..=5 {
            for n in 1..=5 {
                assert_eq!(
                    product_count(m, n),
                    crate::paths::enumerate(m, n).len() as u64,
                    "m={m} n={n}"
                );
            }
        }
    }

    #[test]
    fn table_block_shape() {
        let t = product_table(2..=4, 2..=9);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], PAPER_TABLE1[0].to_vec());
        assert_eq!(t[2], PAPER_TABLE1[2].to_vec());
    }

    #[test]
    fn two_row_lattice_is_linear_in_cols() {
        // f_{2×n} has exactly n products: the n straight columns... plus
        // nothing else (any lateral move in row 0 or 1 revisits a plate).
        // Table I row m=2 confirms: 2,3,4,...,9.
        for n in 2..=9 {
            assert_eq!(product_count(2, n), n as u64);
        }
    }

    #[test]
    fn transpose_asymmetry_examples_from_paper() {
        // §II: f_{6×6} has 1668 products while f_{9×4} has 3882; and
        // f_{6×8} = 14880 vs f_{7×7} = 26317.
        assert_eq!(product_count(6, 6), 1668);
        assert_eq!(product_count(9, 4), 3882);
        assert_eq!(product_count(6, 8), 14880);
        assert_eq!(product_count(7, 7), 26317);
    }
}
