//! Switch-defect analysis for lattices.
//!
//! The paper belongs to the NANOxCOMP project, whose synthesis-and-testing
//! programme (reference \[1\] of the paper) treats crosspoint defects as a
//! first-class concern. This module models the two classic four-terminal
//! switch faults — stuck-ON (terminals permanently connected) and
//! stuck-OFF (permanently disconnected) — and quantifies their logical
//! impact on a realized lattice.

use fts_logic::Literal;

use crate::{Lattice, LatticeError, Site};

/// A single-switch fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The faulty switch.
    pub site: Site,
    /// The fault polarity.
    pub kind: FaultKind,
}

/// Fault polarities for a four-terminal switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// All terminals permanently connected (shorted crosspoint).
    StuckOn,
    /// All terminals permanently disconnected (open crosspoint).
    StuckOff,
}

impl FaultKind {
    /// The literal a faulty switch effectively carries.
    pub fn literal(self) -> Literal {
        match self {
            FaultKind::StuckOn => Literal::True,
            FaultKind::StuckOff => Literal::False,
        }
    }
}

/// The lattice with one fault injected.
///
/// # Errors
///
/// Returns [`LatticeError::SiteOutOfRange`] for a site outside the grid.
pub fn inject(lattice: &Lattice, fault: Fault) -> Result<Lattice, LatticeError> {
    let mut faulty = lattice.clone();
    faulty.set_literal(fault.site, fault.kind.literal())?;
    Ok(faulty)
}

/// The lattice with a whole set of faults injected at once — the
/// multi-fault scenario Monte Carlo defect analysis samples. Later faults
/// in `faults` win when two target the same site.
///
/// # Errors
///
/// Returns [`LatticeError::SiteOutOfRange`] for any site outside the grid
/// (the lattice is validated before any fault is applied, so the error is
/// all-or-nothing).
///
/// # Example
///
/// ```
/// use fts_lattice::defects::{inject_all, Fault, FaultKind};
/// use fts_lattice::Lattice;
/// use fts_logic::Literal;
///
/// let lat = Lattice::from_literals(1, 2, vec![Literal::pos(0), Literal::pos(1)])?;
/// let faulty = inject_all(&lat, &[
///     Fault { site: (0, 0), kind: FaultKind::StuckOff },
///     Fault { site: (0, 1), kind: FaultKind::StuckOff },
/// ])?;
/// assert!(faulty.truth_table(2)?.is_zero(), "both parallel paths open");
/// # Ok::<(), fts_lattice::LatticeError>(())
/// ```
pub fn inject_all(lattice: &Lattice, faults: &[Fault]) -> Result<Lattice, LatticeError> {
    for fault in faults {
        let (r, c) = fault.site;
        if r >= lattice.rows() || c >= lattice.cols() {
            return Err(LatticeError::SiteOutOfRange {
                site: fault.site,
                rows: lattice.rows(),
                cols: lattice.cols(),
            });
        }
    }
    let mut faulty = lattice.clone();
    for fault in faults {
        faulty.set_literal(fault.site, fault.kind.literal())?;
    }
    Ok(faulty)
}

/// Number of input assignments (out of `2^vars`) where the lattice with
/// the whole fault set injected disagrees with the fault-free one —
/// the multi-fault generalization of [`impact`].
///
/// # Errors
///
/// Propagates lattice evaluation errors.
pub fn impact_of_set(
    lattice: &Lattice,
    vars: usize,
    faults: &[Fault],
) -> Result<u64, LatticeError> {
    let good = lattice.truth_table(vars)?;
    let bad = inject_all(lattice, faults)?.truth_table(vars)?;
    Ok((&good ^ &bad).count_ones())
}

/// Exhaustive double-fault analysis: every unordered pair of distinct-site
/// faults, with its functional impact. The quadratic cost limits this to
/// small lattices; Monte Carlo sampling covers larger ones.
///
/// # Errors
///
/// Propagates lattice evaluation errors.
pub fn analyze_pairs(lattice: &Lattice, vars: usize) -> Result<FaultReport, LatticeError> {
    let mut singles = Vec::with_capacity(2 * lattice.site_count());
    for r in 0..lattice.rows() {
        for c in 0..lattice.cols() {
            for kind in [FaultKind::StuckOn, FaultKind::StuckOff] {
                singles.push(Fault { site: (r, c), kind });
            }
        }
    }
    let mut impacts = Vec::new();
    let mut undetectable = 0;
    let mut worst = 0u64;
    for (i, &a) in singles.iter().enumerate() {
        for &b in &singles[i + 1..] {
            if a.site == b.site {
                continue;
            }
            let n = impact_of_set(lattice, vars, &[a, b])?;
            if n == 0 {
                undetectable += 1;
            }
            worst = worst.max(n);
            // Report the pair under its first fault; full pair identity is
            // recoverable from the enumeration order.
            impacts.push((a, n));
        }
    }
    Ok(FaultReport {
        total: impacts.len(),
        undetectable,
        worst_impact: worst,
        impacts,
    })
}

/// Number of input assignments (out of `2^vars`) where the faulty lattice
/// disagrees with the fault-free one — 0 means the fault is logically
/// masked (undetectable by exhaustive functional test).
///
/// # Errors
///
/// Propagates lattice evaluation errors.
pub fn impact(lattice: &Lattice, vars: usize, fault: Fault) -> Result<u64, LatticeError> {
    let good = lattice.truth_table(vars)?;
    let bad = inject(lattice, fault)?.truth_table(vars)?;
    Ok((&good ^ &bad).count_ones())
}

/// Fault-analysis summary over every single fault of a lattice.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Total faults considered (`2 × sites`).
    pub total: usize,
    /// Faults with zero functional impact (masked by redundancy).
    pub undetectable: usize,
    /// The largest impact, in affected input rows.
    pub worst_impact: u64,
    /// Per-fault impacts, in `(fault, affected_rows)` pairs.
    pub impacts: Vec<(Fault, u64)>,
}

impl FaultReport {
    /// Fraction of faults that a functional test can detect.
    pub fn detectability(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        (self.total - self.undetectable) as f64 / self.total as f64
    }
}

/// Exhaustive single-fault analysis of a lattice realization.
///
/// # Errors
///
/// Propagates lattice evaluation errors.
///
/// # Example
///
/// ```
/// use fts_lattice::defects::analyze;
/// use fts_lattice::Lattice;
/// use fts_logic::Literal;
///
/// // A 1×2 OR lattice: each stuck-ON fault forces the output to 1.
/// let lat = Lattice::from_literals(1, 2, vec![Literal::pos(0), Literal::pos(1)])?;
/// let report = analyze(&lat, 2)?;
/// assert_eq!(report.total, 4);
/// assert!(report.worst_impact > 0);
/// # Ok::<(), fts_lattice::LatticeError>(())
/// ```
pub fn analyze(lattice: &Lattice, vars: usize) -> Result<FaultReport, LatticeError> {
    let mut impacts = Vec::with_capacity(2 * lattice.site_count());
    let mut undetectable = 0;
    let mut worst = 0u64;
    for r in 0..lattice.rows() {
        for c in 0..lattice.cols() {
            for kind in [FaultKind::StuckOn, FaultKind::StuckOff] {
                let fault = Fault { site: (r, c), kind };
                let n = impact(lattice, vars, fault)?;
                if n == 0 {
                    undetectable += 1;
                }
                worst = worst.max(n);
                impacts.push((fault, n));
            }
        }
    }
    Ok(FaultReport {
        total: impacts.len(),
        undetectable,
        worst_impact: worst,
        impacts,
    })
}

/// The sites whose faults have the largest functional impact — the
/// switches that matter most for test-pattern generation and layout
/// hardening.
///
/// # Errors
///
/// Propagates lattice evaluation errors.
pub fn critical_sites(
    lattice: &Lattice,
    vars: usize,
    top: usize,
) -> Result<Vec<(Site, u64)>, LatticeError> {
    let report = analyze(lattice, vars)?;
    let mut per_site: std::collections::HashMap<Site, u64> = std::collections::HashMap::new();
    for (fault, n) in report.impacts {
        let e = per_site.entry(fault.site).or_insert(0);
        *e = (*e).max(n);
    }
    let mut out: Vec<(Site, u64)> = per_site.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out.truncate(top);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and2() -> Lattice {
        Lattice::from_literals(2, 1, vec![Literal::pos(0), Literal::pos(1)]).unwrap()
    }

    #[test]
    fn stuck_on_only_adds_minterms() {
        let lat = and2();
        let good = lat.truth_table(2).unwrap();
        let bad = inject(
            &lat,
            Fault {
                site: (0, 0),
                kind: FaultKind::StuckOn,
            },
        )
        .unwrap()
        .truth_table(2)
        .unwrap();
        assert!(good.implies(&bad), "stuck-ON can only add connectivity");
        assert!(bad != good);
    }

    #[test]
    fn stuck_off_only_removes_minterms() {
        let lat = and2();
        let good = lat.truth_table(2).unwrap();
        let bad = inject(
            &lat,
            Fault {
                site: (1, 0),
                kind: FaultKind::StuckOff,
            },
        )
        .unwrap()
        .truth_table(2)
        .unwrap();
        assert!(bad.implies(&good), "stuck-OFF can only remove connectivity");
        assert!(bad.is_zero(), "single-column AND dies with any open switch");
    }

    #[test]
    fn impact_counts_changed_rows() {
        let lat = and2();
        // Stuck-ON at (0,0): function becomes just `b` → rows 01 and… a=…
        // f = ab; faulty = b. Differs where b=1,a=0 → one row.
        let n = impact(
            &lat,
            2,
            Fault {
                site: (0, 0),
                kind: FaultKind::StuckOn,
            },
        )
        .unwrap();
        assert_eq!(n, 1);
        let n = impact(
            &lat,
            2,
            Fault {
                site: (0, 0),
                kind: FaultKind::StuckOff,
            },
        )
        .unwrap();
        assert_eq!(n, 1, "stuck-OFF kills the only path: differs on row 11");
    }

    #[test]
    fn redundant_switch_faults_are_masked() {
        // 1×2 lattice with the same literal twice: one stuck-OFF is
        // masked by the parallel path.
        let lat = Lattice::from_literals(1, 2, vec![Literal::pos(0), Literal::pos(0)]).unwrap();
        let n = impact(
            &lat,
            1,
            Fault {
                site: (0, 1),
                kind: FaultKind::StuckOff,
            },
        )
        .unwrap();
        assert_eq!(n, 0, "parallel duplicate masks the open fault");
        let report = analyze(&lat, 1).unwrap();
        assert!(report.undetectable >= 2);
        assert!(report.detectability() < 1.0);
    }

    #[test]
    fn analyze_covers_all_faults() {
        let lat = and2();
        let report = analyze(&lat, 2).unwrap();
        assert_eq!(report.total, 4);
        assert_eq!(report.impacts.len(), 4);
        assert_eq!(report.undetectable, 0);
        assert!((report.detectability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn critical_sites_are_ranked() {
        let lat = crate::Lattice::from_literals(
            2,
            2,
            vec![
                Literal::pos(0),
                Literal::pos(1),
                Literal::pos(1),
                Literal::pos(0),
            ],
        )
        .unwrap();
        let crit = critical_sites(&lat, 2, 4).unwrap();
        assert_eq!(crit.len(), 4);
        for w in crit.windows(2) {
            assert!(w[0].1 >= w[1].1, "descending impact order");
        }
    }

    #[test]
    fn inject_all_applies_every_fault() {
        let lat = and2();
        let faulty = inject_all(
            &lat,
            &[
                Fault {
                    site: (0, 0),
                    kind: FaultKind::StuckOn,
                },
                Fault {
                    site: (1, 0),
                    kind: FaultKind::StuckOn,
                },
            ],
        )
        .unwrap();
        assert!(
            faulty.truth_table(2).unwrap().is_one(),
            "both switches shorted → constant 1"
        );
    }

    #[test]
    fn inject_all_is_atomic_on_bad_sites() {
        let lat = and2();
        let err = inject_all(
            &lat,
            &[
                Fault {
                    site: (0, 0),
                    kind: FaultKind::StuckOn,
                },
                Fault {
                    site: (7, 7),
                    kind: FaultKind::StuckOff,
                },
            ],
        );
        assert!(matches!(err, Err(LatticeError::SiteOutOfRange { .. })));
    }

    #[test]
    fn later_fault_wins_on_same_site() {
        let lat = and2();
        let faulty = inject_all(
            &lat,
            &[
                Fault {
                    site: (0, 0),
                    kind: FaultKind::StuckOn,
                },
                Fault {
                    site: (0, 0),
                    kind: FaultKind::StuckOff,
                },
            ],
        )
        .unwrap();
        assert_eq!(faulty.literal((0, 0)), Literal::False);
    }

    #[test]
    fn empty_fault_set_is_identity() {
        let lat = and2();
        let same = inject_all(&lat, &[]).unwrap();
        assert_eq!(same.truth_table(2).unwrap(), lat.truth_table(2).unwrap());
        assert_eq!(impact_of_set(&lat, 2, &[]).unwrap(), 0);
    }

    #[test]
    fn multi_fault_impact_can_exceed_singles() {
        // Two parallel duplicate switches: each single stuck-OFF is masked,
        // but the pair kills the function — the classic reason single-fault
        // analysis underestimates defect sensitivity.
        let lat = Lattice::from_literals(1, 2, vec![Literal::pos(0), Literal::pos(0)]).unwrap();
        let f1 = Fault {
            site: (0, 0),
            kind: FaultKind::StuckOff,
        };
        let f2 = Fault {
            site: (0, 1),
            kind: FaultKind::StuckOff,
        };
        assert_eq!(impact(&lat, 1, f1).unwrap(), 0);
        assert_eq!(impact(&lat, 1, f2).unwrap(), 0);
        assert_eq!(impact_of_set(&lat, 1, &[f1, f2]).unwrap(), 1);
    }

    #[test]
    fn pair_analysis_covers_all_distinct_site_pairs() {
        let lat = and2();
        let report = analyze_pairs(&lat, 2).unwrap();
        // 2 sites × 2 kinds = 4 faults; pairs across distinct sites:
        // choose one of 2 kinds per site → 2×2 = 4 pairs.
        assert_eq!(report.total, 4);
        assert!(report.worst_impact >= 1);
    }

    #[test]
    fn xor3_lattice_is_fully_testable() {
        // The 3×3 XOR3 realization: every single fault flips at least one
        // truth-table row (parity functions are maximally sensitive).
        let lat = Lattice::from_literals(
            3,
            3,
            vec![
                Literal::neg(0),
                Literal::neg(2),
                Literal::pos(0),
                Literal::neg(1),
                Literal::True,
                Literal::pos(1),
                Literal::pos(0),
                Literal::pos(2),
                Literal::neg(0),
            ],
        )
        .unwrap();
        let report = analyze(&lat, 3).unwrap();
        // Exactly one masked fault: stuck-ON of the centre switch, which
        // already carries the constant 1 — a no-op by definition.
        assert_eq!(report.undetectable, 1);
        let masked: Vec<&(Fault, u64)> = report.impacts.iter().filter(|(_, n)| *n == 0).collect();
        assert_eq!(
            masked[0].0,
            Fault {
                site: (1, 1),
                kind: FaultKind::StuckOn
            }
        );
        assert!(report.worst_impact >= 2);
    }
}
