fn main() {
    for m in 2..=9usize {
        for n in 2..=9usize {
            let got = fts_lattice::count::product_count(m, n);
            let want = fts_lattice::count::PAPER_TABLE1[m - 2][n - 2];
            if got != want {
                println!("MISMATCH m={m} n={n} got={got} want={want}");
            }
        }
        println!("row m={m} ok");
    }
    println!("done");
}
