//! Listener construction with `SO_REUSEADDR`.
//!
//! A restarting worker must rebind the *same* address its peers route to,
//! but the dying process's connections leave sockets in `TIME_WAIT`, and
//! a plain [`TcpListener::bind`] then fails with `EADDRINUSE` for up to a
//! minute — which would turn every rolling restart into a routing outage.
//! `SO_REUSEADDR` is the standard fix, and std does not expose it; as
//! with [`signal`](crate::signal), the workspace takes no third-party
//! dependencies, so on Linux this module declares the four libc calls
//! needed to build the socket by hand (the C runtime is already linked).
//! Everywhere else [`bind_reusable`] falls back to a plain bind, which
//! only costs restart latency, not correctness.

use std::io;
use std::net::{SocketAddr, TcpListener};

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    use std::io;
    use std::net::{SocketAddr, TcpListener};
    use std::os::fd::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    /// `struct sockaddr_in` as the Linux kernel lays it out: family,
    /// big-endian port, big-endian address, zero padding.
    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub fn bind_reusable(addr: SocketAddr) -> io::Result<TcpListener> {
        // Only IPv4 goes through the raw path; the server defaults to
        // 127.0.0.1 and workers are addressed by explicit ip:port.
        let SocketAddr::V4(v4) = addr else {
            return TcpListener::bind(addr);
        };
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let fail = |fd: i32| -> io::Error {
                let e = io::Error::last_os_error();
                close(fd);
                e
            };
            let one: i32 = 1;
            #[allow(clippy::cast_possible_truncation)]
            let optlen = std::mem::size_of::<i32>() as u32;
            if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, optlen) != 0 {
                return Err(fail(fd));
            }
            let sa = SockaddrIn {
                sin_family: AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from_be_bytes(v4.ip().octets()).to_be(),
                sin_zero: [0; 8],
            };
            #[allow(clippy::cast_possible_truncation)]
            let salen = std::mem::size_of::<SockaddrIn>() as u32;
            if bind(fd, &sa, salen) != 0 {
                return Err(fail(fd));
            }
            if listen(fd, 128) != 0 {
                return Err(fail(fd));
            }
            Ok(TcpListener::from_raw_fd(fd))
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::io;
    use std::net::{SocketAddr, TcpListener};

    pub fn bind_reusable(addr: SocketAddr) -> io::Result<TcpListener> {
        TcpListener::bind(addr)
    }
}

/// Binds a listener with `SO_REUSEADDR` set (Linux IPv4; plain bind
/// elsewhere), so a restarted server can reclaim its address while old
/// connections sit in `TIME_WAIT`.
///
/// # Errors
///
/// Propagates socket creation/bind/listen failures as [`io::Error`] with
/// the OS errno attached.
pub fn bind_reusable(addr: SocketAddr) -> io::Result<TcpListener> {
    imp::bind_reusable(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binds_and_reports_local_addr() {
        let l = bind_reusable("127.0.0.1:0".parse().unwrap()).unwrap();
        let got = l.local_addr().unwrap();
        assert_eq!(got.ip().to_string(), "127.0.0.1");
        assert_ne!(got.port(), 0);
    }

    #[test]
    fn same_port_rebind_succeeds_after_drop() {
        let first = bind_reusable("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        // Hold a connection so the listener side has live state, then
        // drop everything and immediately rebind the identical port.
        let c = std::net::TcpStream::connect(addr).unwrap();
        drop(c);
        drop(first);
        let second = bind_reusable(addr).unwrap();
        assert_eq!(second.local_addr().unwrap(), addr);
    }

    #[test]
    fn accepts_a_connection() {
        let l = bind_reusable("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = l.local_addr().unwrap();
        let t = std::thread::spawn(move || std::net::TcpStream::connect(addr).is_ok());
        let (_s, peer) = l.accept().unwrap();
        assert_eq!(peer.ip().to_string(), "127.0.0.1");
        assert!(t.join().unwrap());
    }
}
