//! Consistent-hash ring for coordinator → worker routing.
//!
//! The ring is a pure function of the worker address list: each worker
//! contributes [`VNODES_PER_WORKER`] virtual nodes at positions
//! `fnv1a64("{addr}#{v}")`, and a key routes to the first vnode at or
//! after `fnv1a64(key)` (wrapping). Two coordinators configured with the
//! same `--workers-addrs` therefore route identically — restart-stable
//! with no persisted state — and adding or removing one worker only
//! remaps the keys that landed on that worker's vnode arcs, ~K/N of them
//! (the property test in `tests/ring_props.rs` bounds this).
//!
//! Liveness is deliberately not the ring's concern: the ring answers
//! "where does this key *want* to go" via [`HashRing::route`] and "in
//! what order do we try the others" via [`HashRing::candidates`]; the
//! coordinator overlays its health view on that fixed order.

/// Virtual nodes per worker. Enough that per-worker load imbalance stays
/// within a few percent for small fleets, small enough that building the
/// ring is trivially cheap.
pub const VNODES_PER_WORKER: usize = 160;

/// 64-bit FNV-1a. Stable, dependency-free, and good enough dispersion
/// for vnode placement (this is routing, not cryptography).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A consistent-hash ring over a fixed list of workers, addressed by
/// index into the list the ring was built from.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(vnode position, worker index)`, sorted by position.
    points: Vec<(u64, usize)>,
    workers: usize,
}

impl HashRing {
    /// Builds the ring for `workers` (their wire addresses). The ring is
    /// deterministic in the list contents: order matters only for which
    /// *index* a worker gets, not where its vnodes land.
    #[must_use]
    pub fn new<S: AsRef<str>>(workers: &[S]) -> HashRing {
        let mut points = Vec::with_capacity(workers.len() * VNODES_PER_WORKER);
        for (w, addr) in workers.iter().enumerate() {
            for v in 0..VNODES_PER_WORKER {
                let label = format!("{}#{v}", addr.as_ref());
                points.push((fnv1a64(label.as_bytes()), w));
            }
        }
        // Position ties across distinct workers are broken by index so the
        // sort (and thus routing) never depends on sort stability.
        points.sort_unstable();
        HashRing {
            points,
            workers: workers.len(),
        }
    }

    /// Number of workers the ring was built over.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Hashes a job id onto the ring keyspace. Ids are small sequential
    /// integers, so they are hashed (little-endian bytes) rather than
    /// used directly — otherwise every id would land in one arc.
    #[must_use]
    pub fn key_for_id(id: u64) -> u64 {
        fnv1a64(&id.to_le_bytes())
    }

    /// The worker index owning `key`: the first vnode clockwise from
    /// `key`, wrapping at the top of the keyspace. `None` iff the ring
    /// is empty.
    #[must_use]
    pub fn route(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let at = self.points.partition_point(|&(pos, _)| pos < key);
        let (_, worker) = self.points[at % self.points.len()];
        Some(worker)
    }

    /// Every worker index in ring order starting from `key`'s owner —
    /// the deterministic failover sequence. The first entry equals
    /// [`route`](HashRing::route); each later entry is the next distinct
    /// worker clockwise.
    #[must_use]
    pub fn candidates(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.workers);
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|&(pos, _)| pos < key);
        let mut seen = vec![false; self.workers];
        for i in 0..self.points.len() {
            let (_, worker) = self.points[(start + i) % self.points.len()];
            if !seen[worker] {
                seen[worker] = true;
                order.push(worker);
                if order.len() == self.workers {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new::<&str>(&[]);
        assert_eq!(ring.route(42), None);
        assert!(ring.candidates(42).is_empty());
    }

    #[test]
    fn single_worker_owns_everything() {
        let ring = HashRing::new(&addrs(1));
        for id in 0..64 {
            assert_eq!(ring.route(HashRing::key_for_id(id)), Some(0));
        }
    }

    #[test]
    fn candidates_start_at_route_and_cover_all_workers() {
        let ring = HashRing::new(&addrs(4));
        for id in 0..256 {
            let key = HashRing::key_for_id(id);
            let c = ring.candidates(key);
            assert_eq!(c.len(), 4);
            assert_eq!(c[0], ring.route(key).unwrap());
            let mut sorted = c.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn load_spreads_across_workers() {
        let ring = HashRing::new(&addrs(4));
        let mut counts = [0usize; 4];
        for id in 0..4000 {
            counts[ring.route(HashRing::key_for_id(id)).unwrap()] += 1;
        }
        // With 160 vnodes/worker the split is within ~2x of fair; what we
        // actually require is that nobody is starved or dominant.
        for &c in &counts {
            assert!(c > 400, "worker starved: {counts:?}");
            assert!(c < 2200, "worker dominant: {counts:?}");
        }
    }

    #[test]
    fn rebuilding_the_same_ring_routes_identically() {
        let a = HashRing::new(&addrs(3));
        let b = HashRing::new(&addrs(3));
        for id in 0..512 {
            let key = HashRing::key_for_id(id);
            assert_eq!(a.route(key), b.route(key));
            assert_eq!(a.candidates(key), b.candidates(key));
        }
    }
}
