//! Thin test-facing shims over [`crate::client`].
//!
//! The real client lives in [`crate::client`] ([`WireClient`]); this
//! module keeps the historical `http_call(addr, method, path, body)`
//! signature that the integration tests and benches grew up on, now
//! implemented on the shared client so there is exactly one HTTP
//! client implementation in the crate.

use std::net::SocketAddr;

pub use crate::client::{parse_response, ClientResponse};
use crate::client::{ClientError, WireClient};

/// Performs one request against `addr` and reads the full response
/// (whatever its status — no error-envelope decoding, tests assert on
/// raw statuses).
///
/// # Errors
///
/// Any socket error, or a malformed/oversized response.
pub fn http_call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    WireClient::new(addr.to_string())
        .call(method, path, body)
        .map_err(|e| match e {
            ClientError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        })
}
