//! A minimal blocking HTTP client for tests, benches, and smoke checks.
//!
//! Speaks exactly the dialect the server does — one request per
//! connection, explicit `Content-Length`, read-to-EOF responses — so the
//! integration tests and the `server_load` bench exercise the real wire
//! path without pulling in an HTTP library.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response as seen by the client: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (headers stripped).
    pub body: String,
}

/// Performs one request against `addr` and reads the full response.
///
/// # Errors
///
/// Any socket error, or a malformed status line.
pub fn http_call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: fts\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// Splits a raw `Connection: close` response into status and body.
pub fn parse_response(raw: &str) -> Option<ClientResponse> {
    let status: u16 = raw.split(' ').nth(1)?.parse().ok()?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Some(ClientResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let r = parse_response("HTTP/1.1 429 Too Many Requests\r\nA: b\r\n\r\n{\"x\":1}").unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.body, "{\"x\":1}");
        assert!(parse_response("garbage").is_none());
    }
}
