//! The HTTP server: accept loop, connection workers, routing, shutdown.
//!
//! Two bounded queues give the service its backpressure story:
//!
//! 1. **Connections** — the nonblocking accept loop pushes accepted
//!    sockets onto a bounded queue drained by a small pool of connection
//!    workers. When the queue is full, the new connection is answered
//!    with a canned `429` immediately — the server never holds more
//!    client state than it has budget for.
//! 2. **Jobs** — admitted manifests land in the [`JobService`]'s bounded
//!    work queue; a manifest that does not fit entirely is rejected with
//!    `429` (all-or-nothing, see [`SubmitError::Overloaded`]).
//!
//! Shutdown (SIGINT, a [`ServerHandle`], or `POST /v1/shutdown`) runs the
//! same drain everywhere: stop accepting, serve the connections already
//! queued, let every admitted job finish, then flush a final telemetry
//! report. No in-flight work is dropped.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{self, HttpError, HttpLimits, Request};
use crate::service::{JobBuilder, JobService, SubmitError};
use crate::signal;
use crate::wire::{BatchManifest, WireError, SCHEMA_VERSION};

/// Server tunables; every field has a production-safe default.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8707` (`:0` picks a free port).
    pub addr: String,
    /// Simulation worker threads (0 = one per available core).
    pub workers: usize,
    /// Job queue capacity (admission bound for `POST /v1/jobs`).
    pub queue_depth: usize,
    /// Finished job results retained for `GET /v1/jobs/{id}`; beyond this
    /// the oldest-completed entries are evicted (their ids read as `404`),
    /// bounding registry memory on a long-running server.
    pub retain_done: usize,
    /// Connection worker threads.
    pub conn_workers: usize,
    /// Accepted-connection queue capacity (overflow → canned `429`).
    pub conn_backlog: usize,
    /// HTTP size/time limits.
    pub limits: HttpLimits,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8707".to_owned(),
            workers: 0,
            queue_depth: 256,
            retain_done: crate::service::DEFAULT_RETAIN_DONE,
            conn_workers: 4,
            conn_backlog: 128,
            limits: HttpLimits::default(),
        }
    }
}

/// A clonable remote control for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Requests graceful shutdown (stop accepting, drain, report).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// What the server drained down to when it exited.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Jobs completed over the server's lifetime (every admitted job —
    /// the drain waits for all of them, so this equals admissions).
    pub jobs_completed: u64,
    /// Submissions rejected with `429`.
    pub submissions_rejected: u64,
    /// Connections answered with the canned backlog `429`.
    pub connections_rejected: u64,
    /// Server uptime \[s\].
    pub uptime_s: f64,
    /// Final telemetry snapshot, human-rendered
    /// ([`TelemetryReport::render_tree`](fts_telemetry::TelemetryReport::render_tree)).
    pub telemetry: String,
}

/// The bound-but-not-yet-running HTTP service.
pub struct Server {
    listener: TcpListener,
    service: Arc<JobService>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and prepares the job service. Telemetry is
    /// enabled here — `/metrics` and the shutdown report depend on it.
    ///
    /// # Errors
    ///
    /// Socket errors from binding `config.addr`.
    pub fn bind(config: ServerConfig, builder: Arc<dyn JobBuilder>) -> std::io::Result<Server> {
        fts_telemetry::set_enabled(true);
        let listener = TcpListener::bind(&config.addr)?;
        let service = Arc::new(JobService::new(
            builder,
            config.queue_depth,
            config.retain_done,
        ));
        Ok(Server {
            listener,
            service,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Socket errors querying the listener.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can request shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Runs the server until shutdown is requested, then drains and
    /// returns the final [`ShutdownReport`].
    ///
    /// # Errors
    ///
    /// Socket errors configuring the listener; accept-time errors on
    /// individual connections are absorbed.
    pub fn run(self) -> std::io::Result<ShutdownReport> {
        let start = Instant::now();
        signal::install_sigint();
        self.listener.set_nonblocking(true)?;

        let sim_workers = if self.config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.workers
        };
        let rejected_conns = std::sync::atomic::AtomicU64::new(0);

        let conn_queue: Arc<(Mutex<ConnQueue>, Condvar)> = Arc::new((
            Mutex::new(ConnQueue {
                conns: VecDeque::new(),
                closed: false,
            }),
            Condvar::new(),
        ));

        let report = std::thread::scope(|scope| {
            for _ in 0..sim_workers {
                let service = Arc::clone(&self.service);
                scope.spawn(move || service.worker_loop());
            }
            for _ in 0..self.config.conn_workers.max(1) {
                let service = Arc::clone(&self.service);
                let queue = Arc::clone(&conn_queue);
                let stop = Arc::clone(&self.stop);
                let limits = self.config.limits;
                scope.spawn(move || {
                    connection_worker(&queue, &service, &stop, &limits);
                });
            }

            // Accept loop: poll the nonblocking listener, checking the
            // shutdown flag (handle, /v1/shutdown, or SIGINT) each pass.
            loop {
                if self.stop.load(Ordering::SeqCst) || signal::sigint_received() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        fts_telemetry::counter("server.http.accepted", 1);
                        let (lock, cv) = &*conn_queue;
                        let mut q = lock.lock().expect("conn queue poisoned");
                        if q.conns.len() >= self.config.conn_backlog {
                            drop(q);
                            rejected_conns.fetch_add(1, Ordering::Relaxed);
                            fts_telemetry::counter("server.http.backlog_rejected", 1);
                            reject_overloaded(stream, &self.config.limits);
                        } else {
                            q.conns.push_back(stream);
                            cv.notify_one();
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }

            // Drain: serve already-accepted connections, then let every
            // admitted job finish, then let workers observe the flags.
            {
                let (lock, cv) = &*conn_queue;
                let mut q = lock.lock().expect("conn queue poisoned");
                q.closed = true;
                cv.notify_all();
            }
            self.stop.store(true, Ordering::SeqCst);
            self.service.drain();
            // Scope join waits for conn workers (they exit once the queue
            // is closed and empty) and sim workers (exit after drain).

            let gauges = self.service.gauges();
            ShutdownReport {
                jobs_completed: gauges.completed,
                submissions_rejected: gauges.rejected,
                connections_rejected: rejected_conns.load(Ordering::Relaxed),
                uptime_s: start.elapsed().as_secs_f64(),
                telemetry: fts_telemetry::snapshot().render_tree(),
            }
        });
        Ok(report)
    }
}

struct ConnQueue {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

/// One connection worker: pull sockets and serve them until the queue is
/// closed *and* empty — queued connections are served even during
/// shutdown, so a client that got its socket accepted always gets an
/// answer.
fn connection_worker(
    queue: &(Mutex<ConnQueue>, Condvar),
    service: &JobService,
    stop: &AtomicBool,
    limits: &HttpLimits,
) {
    let (lock, cv) = queue;
    loop {
        let stream = {
            let mut q = lock.lock().expect("conn queue poisoned");
            loop {
                if let Some(s) = q.conns.pop_front() {
                    break s;
                }
                if q.closed {
                    return;
                }
                q = cv.wait(q).expect("conn queue poisoned");
            }
        };
        handle_connection(stream, service, stop, limits);
    }
}

/// Answers an over-backlog connection with a canned `429` and closes it.
fn reject_overloaded(mut stream: TcpStream, limits: &HttpLimits) {
    let _ = stream.set_write_timeout(Some(limits.write_timeout));
    let body = format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"error\":{{\"code\":\"overloaded\",\"message\":\"connection backlog full\"}}}}"
    );
    let bytes = http::response_bytes(429, "Too Many Requests", "application/json", &body);
    let _ = stream.write_all(&bytes);
}

/// Reads one request, routes it, writes one response.
fn handle_connection(
    mut stream: TcpStream,
    service: &JobService,
    stop: &AtomicBool,
    limits: &HttpLimits,
) {
    fts_telemetry::counter("server.http.requests", 1);
    let t0 = Instant::now();
    let request = match http::read_request(&mut stream, limits) {
        Ok(r) => r,
        Err(e) => {
            fts_telemetry::counter("server.http.errors", 1);
            http::write_error(&mut stream, &e);
            return;
        }
    };
    match route(&request, service, stop) {
        Ok(Response::Json {
            status,
            reason,
            body,
        }) => {
            http::write_json(&mut stream, status, reason, &body);
        }
        Ok(Response::Text { body }) => {
            http::write_text(&mut stream, 200, "OK", &body);
        }
        Err(e) => {
            fts_telemetry::counter("server.http.errors", 1);
            http::write_error(&mut stream, &e);
        }
    }
    if fts_telemetry::enabled() {
        fts_telemetry::record("server.http.latency_s", t0.elapsed().as_secs_f64());
    }
}

enum Response {
    Json {
        status: u16,
        reason: &'static str,
        body: String,
    },
    Text {
        body: String,
    },
}

fn json_ok(body: String) -> Result<Response, HttpError> {
    Ok(Response::Json {
        status: 200,
        reason: "OK",
        body,
    })
}

/// Routes a parsed request to its endpoint.
fn route(
    request: &Request,
    service: &JobService,
    stop: &AtomicBool,
) -> Result<Response, HttpError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => json_ok(format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"status\":\"ok\"}}"
        )),
        ("GET", "/metrics") => Ok(Response::Text {
            body: render_metrics(service),
        }),
        ("POST", "/v1/jobs") => submit(request, service),
        ("POST", "/v1/decks") => submit_deck(request, service),
        ("POST", "/v1/shutdown") => {
            stop.store(true, Ordering::SeqCst);
            json_ok(format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"shutting_down\":true}}"
            ))
        }
        (method, path) if path.starts_with("/v1/jobs/") => {
            let id: u64 = path["/v1/jobs/".len()..]
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad job id in {path:?}")))?;
            match method {
                "GET" => service.status_json(id).map_or(Err(HttpError::NotFound), json_ok),
                "DELETE" => match service.cancel(id) {
                    Some(status) => json_ok(format!(
                        "{{\"schema_version\":{SCHEMA_VERSION},\"id\":{id},\"cancelled\":true,\"was\":\"{status}\"}}"
                    )),
                    None => Err(HttpError::NotFound),
                },
                _ => Err(HttpError::MethodNotAllowed),
            }
        }
        (_, "/healthz" | "/metrics" | "/v1/jobs" | "/v1/decks" | "/v1/shutdown") => {
            Err(HttpError::MethodNotAllowed)
        }
        _ => Err(HttpError::NotFound),
    }
}

/// `POST /v1/jobs`: parse the JSON manifest, validate, admit.
fn submit(request: &Request, service: &JobService) -> Result<Response, HttpError> {
    let manifest = match BatchManifest::parse(&request.body) {
        Ok(m) => m,
        Err(e) => return Ok(wire_error_response(&e)),
    };
    Ok(admission_response(service.submit(&manifest)))
}

/// `POST /v1/decks`: the body is a raw SPICE deck (`text/plain`), lowered
/// to one job per analysis card through the same admission path as
/// `/v1/jobs`. Malformed decks answer `400` with the deck's structured
/// error code and 1-based line/column.
fn submit_deck(request: &Request, service: &JobService) -> Result<Response, HttpError> {
    let subs = match crate::service::deck_submissions(&request.body) {
        Ok(s) => s,
        Err(e) => return Ok(wire_error_response(&e)),
    };
    Ok(admission_response(service.submit_jobs(subs)))
}

/// Renders the shared admission outcome: `202` with ids, or the
/// structured `400`/`429`/`503` bodies.
fn admission_response(result: Result<Vec<u64>, SubmitError>) -> Response {
    match result {
        Ok(ids) => {
            let ids: Vec<String> = ids.iter().map(u64::to_string).collect();
            Response::Json {
                status: 202,
                reason: "Accepted",
                body: format!(
                    "{{\"schema_version\":{SCHEMA_VERSION},\"ids\":[{}]}}",
                    ids.join(",")
                ),
            }
        }
        Err(SubmitError::Invalid(e)) => wire_error_response(&e),
        Err(SubmitError::Overloaded { queued, depth }) => Response::Json {
            status: 429,
            reason: "Too Many Requests",
            body: format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"error\":{{\"code\":\"overloaded\",\"message\":\"queue full ({queued}/{depth})\"}}}}"
            ),
        },
        Err(SubmitError::ShuttingDown) => Response::Json {
            status: 503,
            reason: "Service Unavailable",
            body: format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"error\":{{\"code\":\"shutting_down\",\"message\":\"server is draining\"}}}}"
            ),
        },
    }
}

fn wire_error_response(e: &WireError) -> Response {
    Response::Json {
        status: 400,
        reason: "Bad Request",
        body: e.to_json(),
    }
}

/// Renders `/metrics` in Prometheus text exposition style: server gauges
/// first, then every fts-telemetry counter and histogram (p50/p90/p99).
fn render_metrics(service: &JobService) -> String {
    use std::fmt::Write as _;
    let gauges = service.gauges();
    let mut out = String::with_capacity(2048);
    out.push_str("# fts-server metrics (schema_version 1)\n");
    let _ = writeln!(out, "fts_jobs_queued {}", gauges.queued);
    let _ = writeln!(out, "fts_jobs_running {}", gauges.running);
    let _ = writeln!(out, "fts_jobs_completed {}", gauges.completed);
    let _ = writeln!(out, "fts_submissions_rejected {}", gauges.rejected);
    let _ = writeln!(out, "fts_queue_depth {}", gauges.queue_depth);
    let report = fts_telemetry::snapshot();
    for c in &report.counters {
        let _ = writeln!(out, "fts_counter{{name=\"{}\"}} {}", c.name, c.value);
    }
    for h in &report.histograms {
        let s = &h.summary;
        let _ = writeln!(out, "fts_histogram_count{{name=\"{}\"}} {}", h.name, s.n);
        let _ = writeln!(out, "fts_histogram_mean{{name=\"{}\"}} {}", h.name, s.mean);
        let _ = writeln!(out, "fts_histogram_p50{{name=\"{}\"}} {}", h.name, s.p50);
        let _ = writeln!(out, "fts_histogram_p90{{name=\"{}\"}} {}", h.name, s.p90);
        let _ = writeln!(out, "fts_histogram_p99{{name=\"{}\"}} {}", h.name, s.p99);
    }
    out
}
