//! The HTTP server: accept loop, connection workers, routing, shutdown.
//!
//! Two bounded queues give the service its backpressure story:
//!
//! 1. **Connections** — the nonblocking accept loop pushes accepted
//!    sockets onto a bounded queue drained by a small pool of connection
//!    workers. When the queue is full, the new connection is answered
//!    with a canned `429` immediately — the server never holds more
//!    client state than it has budget for.
//! 2. **Jobs** — admitted manifests land in the [`JobService`]'s bounded
//!    work queue; a manifest that does not fit entirely is rejected with
//!    `429` (all-or-nothing, see [`SubmitError::Overloaded`]).
//!
//! Shutdown (SIGINT, a [`ServerHandle`], or `POST /v1/shutdown`) runs the
//! same drain everywhere: stop accepting, serve the connections already
//! queued, let every admitted job finish, then flush a final telemetry
//! report. No in-flight work is dropped.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{self, HttpError, HttpLimits, Request};
use crate::service::{
    JobBuilder, JobService, SubmitError, TraceLookup, LIST_LIMIT_DEFAULT, LIST_LIMIT_MAX,
};
use crate::signal;
use crate::wire::{BatchManifest, WireError, SCHEMA_VERSION};

/// Resolves a config address string and binds it with `SO_REUSEADDR`
/// (see [`crate::net`]) — shared by the single-process server and the
/// coordinator so both survive same-port restarts.
pub(crate) fn bind_addr(addr: &str) -> std::io::Result<TcpListener> {
    let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("{addr:?} resolves to no address"),
        )
    })?;
    crate::net::bind_reusable(sockaddr)
}

/// Server tunables; every field has a production-safe default.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8707` (`:0` picks a free port).
    pub addr: String,
    /// Simulation worker threads (0 = one per available core).
    pub workers: usize,
    /// Job queue capacity (admission bound for `POST /v1/jobs`).
    pub queue_depth: usize,
    /// Entry bound for the content-addressed result cache *and* for
    /// finished job rows retained for `GET /v1/jobs/{id}`; beyond it the
    /// oldest-completed entries are evicted (their ids read as `404`) and
    /// the cache ages out by LRU, bounding memory on a long-running
    /// server. Replaces the former `retain_done` knob (PR 10), which the
    /// CLI keeps as a deprecated alias.
    pub cache_entries: usize,
    /// Byte budget for cached result payloads (the cache's second bound).
    pub cache_bytes: usize,
    /// Connection worker threads.
    pub conn_workers: usize,
    /// Accepted-connection queue capacity (overflow → canned `429`).
    pub conn_backlog: usize,
    /// Per-job flight-recorder ring capacity in events; `0` disables
    /// tracing entirely (`GET /v1/jobs/{id}/trace` answers `404` with
    /// code `trace_disabled`). See [`fts_telemetry::trace`].
    pub trace_events: usize,
    /// HTTP size/time limits.
    pub limits: HttpLimits,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8707".to_owned(),
            workers: 0,
            queue_depth: 256,
            cache_entries: crate::service::DEFAULT_CACHE_ENTRIES,
            cache_bytes: fts_engine::DEFAULT_CACHE_BYTES,
            conn_workers: 4,
            conn_backlog: 128,
            trace_events: fts_telemetry::trace::DEFAULT_EVENT_CAP,
            limits: HttpLimits::default(),
        }
    }
}

/// A clonable remote control for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    pub(crate) fn new(stop: Arc<AtomicBool>) -> ServerHandle {
        ServerHandle { stop }
    }

    /// Requests graceful shutdown (stop accepting, drain, report).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// What the server drained down to when it exited.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Jobs completed over the server's lifetime (every admitted job —
    /// the drain waits for all of them, so this equals admissions).
    pub jobs_completed: u64,
    /// Submissions rejected with `429`.
    pub submissions_rejected: u64,
    /// Connections answered with the canned backlog `429`.
    pub connections_rejected: u64,
    /// Server uptime \[s\].
    pub uptime_s: f64,
    /// Final telemetry snapshot, human-rendered
    /// ([`TelemetryReport::render_tree`](fts_telemetry::TelemetryReport::render_tree)).
    pub telemetry: String,
}

/// The bound-but-not-yet-running HTTP service.
pub struct Server {
    listener: TcpListener,
    service: Arc<JobService>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and prepares the job service. Telemetry is
    /// enabled here — `/metrics` and the shutdown report depend on it.
    ///
    /// # Errors
    ///
    /// Socket errors from binding `config.addr`.
    pub fn bind(config: ServerConfig, builder: Arc<dyn JobBuilder>) -> std::io::Result<Server> {
        fts_telemetry::set_enabled(true);
        let listener = bind_addr(&config.addr)?;
        let service = Arc::new(
            JobService::new(builder, config.queue_depth, config.cache_entries)
                .cache_bytes(config.cache_bytes)
                .trace_capacity(config.trace_events),
        );
        Ok(Server {
            listener,
            service,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Socket errors querying the listener.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can request shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Runs the server until shutdown is requested, then drains and
    /// returns the final [`ShutdownReport`].
    ///
    /// # Errors
    ///
    /// Socket errors configuring the listener; accept-time errors on
    /// individual connections are absorbed.
    pub fn run(self) -> std::io::Result<ShutdownReport> {
        let start = Instant::now();
        signal::install_sigint();
        self.listener.set_nonblocking(true)?;

        let sim_workers = if self.config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.workers
        };
        let rejected_conns = AtomicU64::new(0);
        let http_metrics = HttpMetrics::default();
        let conn_queue = new_conn_queue();

        let report = std::thread::scope(|scope| {
            for _ in 0..sim_workers {
                let service = Arc::clone(&self.service);
                scope.spawn(move || service.worker_loop());
            }
            spawn_conn_workers(
                scope,
                self.config.conn_workers,
                &conn_queue,
                self.service.as_ref(),
                &self.stop,
                &self.config.limits,
                &http_metrics,
                start,
            );

            accept_loop(
                &self.listener,
                &self.stop,
                &conn_queue,
                self.config.conn_backlog,
                &self.config.limits,
                &rejected_conns,
            );

            // Drain: serve already-accepted connections, then let every
            // admitted job finish, then let workers observe the flags.
            close_conn_queue(&conn_queue);
            self.stop.store(true, Ordering::SeqCst);
            self.service.drain();
            // Scope join waits for conn workers (they exit once the queue
            // is closed and empty) and sim workers (exit after drain).

            let gauges = self.service.gauges();
            ShutdownReport {
                jobs_completed: gauges.completed,
                submissions_rejected: gauges.rejected,
                connections_rejected: rejected_conns.load(Ordering::Relaxed),
                uptime_s: start.elapsed().as_secs_f64(),
                telemetry: fts_telemetry::snapshot().render_tree(),
            }
        });
        Ok(report)
    }
}

/// The routing half of an HTTP service: everything above the shared
/// accept loop / connection worker / metrics machinery. The
/// single-process server implements it on [`JobService`]; the
/// coordinator implements it on its own registry — both run behind the
/// identical transport discipline.
pub(crate) trait HttpApp: Sync {
    /// Routes one parsed request to a response.
    fn route(
        &self,
        request: &Request,
        stop: &AtomicBool,
        metrics: &HttpMetrics,
        started: Instant,
    ) -> Result<Response, HttpError>;
}

impl HttpApp for JobService {
    fn route(
        &self,
        request: &Request,
        stop: &AtomicBool,
        metrics: &HttpMetrics,
        started: Instant,
    ) -> Result<Response, HttpError> {
        route(request, self, stop, metrics, started)
    }
}

pub(crate) struct ConnQueue {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

pub(crate) type SharedConnQueue = Arc<(Mutex<ConnQueue>, Condvar)>;

pub(crate) fn new_conn_queue() -> SharedConnQueue {
    Arc::new((
        Mutex::new(ConnQueue {
            conns: VecDeque::new(),
            closed: false,
        }),
        Condvar::new(),
    ))
}

/// Closes the queue; connection workers exit once it is also empty.
pub(crate) fn close_conn_queue(queue: &SharedConnQueue) {
    let (lock, cv) = &**queue;
    let mut q = lock.lock().expect("conn queue poisoned");
    q.closed = true;
    cv.notify_all();
}

/// Spawns the connection worker pool onto `scope`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_conn_workers<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    count: usize,
    queue: &'env SharedConnQueue,
    app: &'env (impl HttpApp + ?Sized),
    stop: &'env Arc<AtomicBool>,
    limits: &'env HttpLimits,
    metrics: &'env HttpMetrics,
    started: Instant,
) {
    for _ in 0..count.max(1) {
        let queue = Arc::clone(queue);
        let stop = Arc::clone(stop);
        scope.spawn(move || {
            connection_worker(&queue, app, &stop, limits, metrics, started);
        });
    }
}

/// The shared nonblocking accept loop: poll the listener, push accepted
/// sockets onto the bounded queue, answer backlog overflow with a canned
/// `429`. Returns when the stop flag flips or SIGINT lands.
pub(crate) fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    queue: &SharedConnQueue,
    conn_backlog: usize,
    limits: &HttpLimits,
    rejected_conns: &AtomicU64,
) {
    loop {
        if stop.load(Ordering::SeqCst) || signal::sigint_received() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                fts_telemetry::counter("server.http.accepted", 1);
                let (lock, cv) = &**queue;
                let mut q = lock.lock().expect("conn queue poisoned");
                if q.conns.len() >= conn_backlog {
                    drop(q);
                    rejected_conns.fetch_add(1, Ordering::Relaxed);
                    fts_telemetry::counter("server.http.backlog_rejected", 1);
                    reject_overloaded(stream, limits);
                } else {
                    q.conns.push_back(stream);
                    cv.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// One connection worker: pull sockets and serve them until the queue is
/// closed *and* empty — queued connections are served even during
/// shutdown, so a client that got its socket accepted always gets an
/// answer.
fn connection_worker(
    queue: &(Mutex<ConnQueue>, Condvar),
    app: &(impl HttpApp + ?Sized),
    stop: &AtomicBool,
    limits: &HttpLimits,
    metrics: &HttpMetrics,
    started: Instant,
) {
    let (lock, cv) = queue;
    loop {
        let stream = {
            let mut q = lock.lock().expect("conn queue poisoned");
            loop {
                if let Some(s) = q.conns.pop_front() {
                    break s;
                }
                if q.closed {
                    return;
                }
                q = cv.wait(q).expect("conn queue poisoned");
            }
        };
        handle_connection(stream, app, stop, limits, metrics, started);
    }
}

/// Answers an over-backlog connection with a canned `429` and closes it.
fn reject_overloaded(mut stream: TcpStream, limits: &HttpLimits) {
    let _ = stream.set_write_timeout(Some(limits.write_timeout));
    let body = WireError::manifest("overloaded", "connection backlog full").to_json();
    let bytes = http::response_bytes(429, "Too Many Requests", "application/json", &body);
    let _ = stream.write_all(&bytes);
}

/// Reads one request, routes it, writes one response, books the
/// per-endpoint counters and the sliding latency window.
fn handle_connection(
    mut stream: TcpStream,
    app: &(impl HttpApp + ?Sized),
    stop: &AtomicBool,
    limits: &HttpLimits,
    metrics: &HttpMetrics,
    started: Instant,
) {
    fts_telemetry::counter("server.http.requests", 1);
    let t0 = Instant::now();
    let request = match http::read_request(&mut stream, limits) {
        Ok(r) => r,
        Err(e) => {
            fts_telemetry::counter("server.http.errors", 1);
            http::write_error(&mut stream, &e);
            // No parsed request to attribute, so method/path are "-".
            metrics.record("-", "-", e.status().0, t0.elapsed().as_secs_f64());
            return;
        }
    };
    let method = method_label(&request.method);
    let path = route_template(&request.path);
    let status = match app.route(&request, stop, metrics, started) {
        Ok(Response::Json {
            status,
            reason,
            body,
        }) => {
            http::write_json(&mut stream, status, reason, &body);
            status
        }
        Ok(Response::Text { body }) => {
            http::write_text(&mut stream, 200, "OK", &body);
            200
        }
        Err(e) => {
            fts_telemetry::counter("server.http.errors", 1);
            http::write_error(&mut stream, &e);
            e.status().0
        }
    };
    let latency_s = t0.elapsed().as_secs_f64();
    metrics.record(method, path, status, latency_s);
    if fts_telemetry::enabled() {
        fts_telemetry::record("server.http.latency_s", latency_s);
    }
}

#[derive(Debug)]
pub(crate) enum Response {
    Json {
        status: u16,
        reason: &'static str,
        body: String,
    },
    Text {
        body: String,
    },
}

pub(crate) fn json_ok(body: String) -> Result<Response, HttpError> {
    Ok(Response::Json {
        status: 200,
        reason: "OK",
        body,
    })
}

/// Routes a parsed request to its endpoint.
fn route(
    request: &Request,
    service: &JobService,
    stop: &AtomicBool,
    metrics: &HttpMetrics,
    started: Instant,
) -> Result<Response, HttpError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let g = service.gauges();
            json_ok(format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"status\":\"ok\",\"uptime_s\":{:.3},\
                 \"jobs\":{{\"queued\":{},\"running\":{},\"completed\":{},\"rejected\":{},\
                 \"done_retained\":{}}}}}",
                started.elapsed().as_secs_f64(),
                g.queued,
                g.running,
                g.completed,
                g.rejected,
                g.done_retained,
            ))
        }
        ("GET", "/metrics") => Ok(Response::Text {
            body: render_metrics(service, metrics),
        }),
        ("POST", "/v1/jobs") => submit(request, service),
        ("GET", "/v1/jobs") => match list_params(request) {
            Ok((state, cursor, limit)) => json_ok(service.list_json(state, cursor, limit)),
            Err(e) => Ok(wire_error_response(&e)),
        },
        ("POST", "/v1/decks") => submit_deck(request, service),
        ("GET", "/v1/cache") => json_ok(service.cache_stats_json()),
        ("DELETE", "/v1/cache") => {
            service.cache_flush();
            json_ok(format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"flushed\":true}}"
            ))
        }
        ("POST", "/v1/shutdown") => {
            stop.store(true, Ordering::SeqCst);
            json_ok(format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"shutting_down\":true}}"
            ))
        }
        (method, path) if path.starts_with("/v1/jobs/") => {
            let rest = &path["/v1/jobs/".len()..];
            if let Some(id) = rest.strip_suffix("/trace") {
                if method != "GET" {
                    return Err(HttpError::MethodNotAllowed);
                }
                let id: u64 = id
                    .parse()
                    .map_err(|_| HttpError::BadRequest(format!("bad job id in {path:?}")))?;
                let chrome = request.query_param("format") == Some("chrome");
                return trace_response(service.trace_json(id, chrome));
            }
            let id: u64 = rest
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad job id in {path:?}")))?;
            match method {
                "GET" => service.status_json(id).map_or(Err(HttpError::NotFound), json_ok),
                "DELETE" => match service.cancel(id) {
                    Some(status) => json_ok(format!(
                        "{{\"schema_version\":{SCHEMA_VERSION},\"id\":{id},\"cancelled\":true,\"was\":\"{status}\"}}"
                    )),
                    None => Err(HttpError::NotFound),
                },
                _ => Err(HttpError::MethodNotAllowed),
            }
        }
        (_, "/healthz" | "/metrics" | "/v1/jobs" | "/v1/decks" | "/v1/cache" | "/v1/shutdown") => {
            Err(HttpError::MethodNotAllowed)
        }
        _ => Err(HttpError::NotFound),
    }
}

/// Maps a [`TraceLookup`] onto the wire: the journal (or Chrome trace),
/// a plain `404` for unknown ids, or a distinguishable `404` with code
/// `trace_disabled` when the server runs with `trace_events = 0` — so a
/// client can tell "no such job" from "tracing is off" without guessing.
fn trace_response(lookup: TraceLookup) -> Result<Response, HttpError> {
    match lookup {
        TraceLookup::Journal(body) => json_ok(body),
        TraceLookup::Unknown => Err(HttpError::NotFound),
        TraceLookup::Disabled => Ok(Response::Json {
            status: 404,
            reason: "Not Found",
            body: WireError::manifest(
                "trace_disabled",
                "flight recorder disabled (server runs with trace_events = 0)",
            )
            .to_json(),
        }),
    }
}

/// Validates `GET /v1/jobs` query parameters. Violations are structured
/// `400`s with stable codes (`unknown_state`, `bad_cursor`,
/// `invalid_limit`) rather than silent clamping, so clients learn the
/// caps ([`LIST_LIMIT_MAX`]).
pub(crate) fn list_params(
    request: &Request,
) -> Result<(Option<&str>, Option<u64>, usize), WireError> {
    // `routed` only ever matches on a coordinator, whose jobs live on
    // remote workers; a single-process server simply has none.
    let state = match request.query_param("state") {
        None => None,
        Some(s @ ("queued" | "running" | "done" | "routed")) => Some(s),
        Some(other) => {
            return Err(WireError::manifest(
                "unknown_state",
                format!("state must be queued, running, routed, or done, not {other:?}"),
            ))
        }
    };
    let cursor = match request.query_param("cursor") {
        None => None,
        Some(c) => Some(c.parse::<u64>().map_err(|_| {
            WireError::manifest(
                "bad_cursor",
                format!("cursor must be a job id (unsigned integer), not {c:?}"),
            )
        })?),
    };
    let limit = match request.query_param("limit") {
        None => LIST_LIMIT_DEFAULT,
        Some(l) => match l.parse::<usize>() {
            Ok(n) if (1..=LIST_LIMIT_MAX).contains(&n) => n,
            _ => {
                return Err(WireError::manifest(
                    "invalid_limit",
                    format!("limit must be in 1..={LIST_LIMIT_MAX}, not {l:?}"),
                ))
            }
        },
    };
    Ok((state, cursor, limit))
}

/// `POST /v1/jobs`: parse the JSON manifest, validate, admit.
fn submit(request: &Request, service: &JobService) -> Result<Response, HttpError> {
    let manifest = match BatchManifest::parse(&request.body) {
        Ok(m) => m,
        Err(e) => return Ok(wire_error_response(&e)),
    };
    Ok(admission_response(service.submit(&manifest)))
}

/// `POST /v1/decks`: the body is a raw SPICE deck (`text/plain`), lowered
/// to one job per analysis card through the same admission path as
/// `/v1/jobs`. Malformed decks answer `400` with the deck's structured
/// error code and 1-based line/column.
fn submit_deck(request: &Request, service: &JobService) -> Result<Response, HttpError> {
    let subs = match crate::service::deck_submissions(&request.body) {
        Ok(s) => s,
        Err(e) => return Ok(wire_error_response(&e)),
    };
    Ok(admission_response(service.submit_jobs(subs)))
}

/// Renders the shared admission outcome: `202` with ids, or the
/// structured `400`/`429`/`503` bodies — every error through the one
/// [`WireError`] envelope.
pub(crate) fn admission_response(result: Result<Vec<u64>, SubmitError>) -> Response {
    match result {
        Ok(ids) => {
            let ids: Vec<String> = ids.iter().map(u64::to_string).collect();
            Response::Json {
                status: 202,
                reason: "Accepted",
                body: format!(
                    "{{\"schema_version\":{SCHEMA_VERSION},\"ids\":[{}]}}",
                    ids.join(",")
                ),
            }
        }
        Err(SubmitError::Invalid(e)) => wire_error_response(&e),
        Err(SubmitError::Overloaded { queued, depth }) => Response::Json {
            status: 429,
            reason: "Too Many Requests",
            body: WireError::manifest("overloaded", format!("queue full ({queued}/{depth})"))
                .to_json(),
        },
        Err(SubmitError::ShuttingDown) => Response::Json {
            status: 503,
            reason: "Service Unavailable",
            body: WireError::manifest("shutting_down", "server is draining").to_json(),
        },
        Err(SubmitError::Unavailable(message)) => Response::Json {
            status: 503,
            reason: "Service Unavailable",
            body: WireError::manifest("no_workers", message).to_json(),
        },
    }
}

pub(crate) fn wire_error_response(e: &WireError) -> Response {
    Response::Json {
        status: 400,
        reason: "Bad Request",
        body: e.to_json(),
    }
}

/// Sliding-window size for live HTTP latency percentiles: the last this
/// many requests, whatever their age. Small enough to sort on every
/// scrape, large enough to make p99 meaningful.
const LATENCY_WINDOW: usize = 512;

/// Live per-endpoint HTTP metrics, independent of `fts-telemetry`'s
/// global switch: request counters keyed by `(method, route template,
/// status)` plus a last-[`LATENCY_WINDOW`] latency ring. Label
/// cardinality is bounded by construction — methods and paths are
/// normalized to small fixed vocabularies ([`method_label`],
/// [`route_template`]) before they become keys, so a hostile client
/// spraying random paths cannot grow this map.
#[derive(Default)]
pub(crate) struct HttpMetrics {
    counters: Mutex<std::collections::BTreeMap<(&'static str, &'static str, u16), u64>>,
    latency: Mutex<LatencyRing>,
}

#[derive(Default)]
struct LatencyRing {
    samples: Vec<f64>,
    head: usize,
    total: u64,
}

impl HttpMetrics {
    /// Books one finished request into the counters and latency window.
    pub(crate) fn record(
        &self,
        method: &'static str,
        path: &'static str,
        status: u16,
        latency_s: f64,
    ) {
        {
            let mut counters = self.counters.lock().expect("http counters poisoned");
            *counters.entry((method, path, status)).or_insert(0) += 1;
        }
        let mut ring = self.latency.lock().expect("http latency poisoned");
        ring.total += 1;
        if ring.samples.len() < LATENCY_WINDOW {
            ring.samples.push(latency_s);
        } else {
            let head = ring.head;
            ring.samples[head] = latency_s;
            ring.head = (head + 1) % LATENCY_WINDOW;
        }
    }

    /// Sorted copy of the current latency window plus the lifetime total.
    fn latency_window(&self) -> (Vec<f64>, u64) {
        let ring = self.latency.lock().expect("http latency poisoned");
        let mut sorted = ring.samples.clone();
        sorted.sort_by(f64::total_cmp);
        (sorted, ring.total)
    }
}

/// Normalizes a request method into a bounded label vocabulary.
pub(crate) fn method_label(method: &str) -> &'static str {
    match method {
        "GET" => "GET",
        "POST" => "POST",
        "DELETE" => "DELETE",
        "PUT" => "PUT",
        "HEAD" => "HEAD",
        "OPTIONS" => "OPTIONS",
        _ => "OTHER",
    }
}

/// Normalizes a request path into its route template, collapsing job ids
/// so `/v1/jobs/17` and `/v1/jobs/99` share one `{id}` time series.
pub(crate) fn route_template(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/v1/jobs" => "/v1/jobs",
        "/v1/decks" => "/v1/decks",
        "/v1/cache" => "/v1/cache",
        "/v1/shutdown" => "/v1/shutdown",
        p if p.starts_with("/v1/jobs/") => {
            if p.ends_with("/trace") {
                "/v1/jobs/{id}/trace"
            } else {
                "/v1/jobs/{id}"
            }
        }
        _ => "(other)",
    }
}

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double quote, and newline must be backslash-escaped or the
/// sample line is unparseable (a newline would even split it in two).
pub(crate) fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Clamps a metric value to something every scraper can parse: `NaN` and
/// infinities render as `0`.
pub(crate) fn prom_num(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Renders `/metrics` in Prometheus text exposition style: server gauges
/// first, then the live per-endpoint HTTP series, then every
/// fts-telemetry counter and histogram (p50/p90/p99).
///
/// Invariants the scrape test pins down: label values are escaped
/// ([`prom_escape`]), every rendered value parses as a finite `f64`
/// ([`prom_num`]), and count-0 histograms render their count line only —
/// an empty histogram has no meaningful mean or percentile, so those
/// lines are skipped rather than invented.
fn render_metrics(service: &JobService, metrics: &HttpMetrics) -> String {
    let gauges = service.gauges();
    let mut out = String::with_capacity(2048);
    out.push_str("# fts-server metrics (schema_version 1)\n");
    {
        use std::fmt::Write as _;
        let _ = writeln!(out, "fts_jobs_queued {}", gauges.queued);
        let _ = writeln!(out, "fts_jobs_running {}", gauges.running);
        let _ = writeln!(out, "fts_jobs_completed {}", gauges.completed);
        let _ = writeln!(out, "fts_submissions_rejected {}", gauges.rejected);
        let _ = writeln!(out, "fts_queue_depth {}", gauges.queue_depth);
        let _ = writeln!(out, "fts_jobs_done_retained {}", gauges.done_retained);
        let cache = service.cache_stats();
        let _ = writeln!(out, "fts_cache_entries {}", cache.entries);
        let _ = writeln!(out, "fts_cache_bytes {}", cache.bytes);
        let _ = writeln!(out, "fts_cache_hits_total {}", cache.hits);
        let _ = writeln!(out, "fts_cache_misses_total {}", cache.misses);
        let _ = writeln!(out, "fts_cache_evictions_total {}", cache.evictions);
        let _ = writeln!(out, "fts_cache_hit_ratio {}", prom_num(cache.hit_ratio()));
    }
    render_http_series(&mut out, metrics);
    render_telemetry_series(&mut out);
    out
}

/// Appends the live per-endpoint HTTP series (request counters + latency
/// window percentiles) — shared between server and coordinator scrapes.
pub(crate) fn render_http_series(out: &mut String, metrics: &HttpMetrics) {
    use std::fmt::Write as _;
    {
        let counters = metrics.counters.lock().expect("http counters poisoned");
        for (&(method, path, status), &n) in counters.iter() {
            let _ = writeln!(
                out,
                "fts_http_requests_total{{method=\"{}\",path=\"{}\",status=\"{status}\"}} {n}",
                prom_escape(method),
                prom_escape(path),
            );
        }
    }
    let (window, total) = metrics.latency_window();
    let _ = writeln!(out, "fts_http_latency_window_count {}", window.len());
    let _ = writeln!(out, "fts_http_requests_observed_total {total}");
    if !window.is_empty() {
        let at = |q: f64| {
            let idx = ((window.len() - 1) as f64 * q).round() as usize;
            prom_num(window[idx])
        };
        let _ = writeln!(out, "fts_http_latency_window_p50_s {}", at(0.50));
        let _ = writeln!(out, "fts_http_latency_window_p90_s {}", at(0.90));
        let _ = writeln!(out, "fts_http_latency_window_p99_s {}", at(0.99));
    }
}

/// Appends every fts-telemetry counter and histogram — shared between
/// server and coordinator scrapes.
pub(crate) fn render_telemetry_series(out: &mut String) {
    use std::fmt::Write as _;
    let report = fts_telemetry::snapshot();
    for c in &report.counters {
        let _ = writeln!(
            out,
            "fts_counter{{name=\"{}\"}} {}",
            prom_escape(&c.name),
            c.value
        );
    }
    for h in &report.histograms {
        let s = &h.summary;
        let name = prom_escape(&h.name);
        let _ = writeln!(out, "fts_histogram_count{{name=\"{name}\"}} {}", s.n);
        if s.n == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "fts_histogram_mean{{name=\"{name}\"}} {}",
            prom_num(s.mean)
        );
        let _ = writeln!(
            out,
            "fts_histogram_p50{{name=\"{name}\"}} {}",
            prom_num(s.p50)
        );
        let _ = writeln!(
            out,
            "fts_histogram_p90{{name=\"{name}\"}} {}",
            prom_num(s.p90)
        );
        let _ = writeln!(
            out,
            "fts_histogram_p99{{name=\"{name}\"}} {}",
            prom_num(s.p99)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{BuiltJob, JobBuilder};
    use crate::wire::{JobSpec, WireError};

    /// The routing tests never admit a job, so the builder is never
    /// called.
    struct NeverBuilder;

    impl JobBuilder for NeverBuilder {
        fn build(&self, _spec: &JobSpec, index: usize) -> Result<BuiltJob, WireError> {
            Err(WireError::job("unknown_function", index, "test builder"))
        }
    }

    fn service() -> JobService {
        JobService::new(Arc::new(NeverBuilder), 4, 8)
    }

    fn get(path: &str, query: &str) -> Request {
        Request {
            method: "GET".to_owned(),
            path: path.to_owned(),
            query: query.to_owned(),
            body: String::new(),
        }
    }

    #[test]
    fn every_metrics_sample_line_parses_as_a_finite_number() {
        fts_telemetry::set_enabled(true);
        // Hostile label value: quote, newline, and backslash must all be
        // escaped or the scrape below falls apart at this counter.
        fts_telemetry::counter("evil\"name\nwith\\slash", 3);
        // A histogram whose only sample is rejected (non-finite) stays at
        // count 0 and must render its count line only.
        fts_telemetry::record("server.test.empty_hist", f64::NAN);

        let svc = service();
        let metrics = HttpMetrics::default();
        metrics.record("GET", "/healthz", 200, 0.001);
        metrics.record("GET", "/v1/jobs/{id}/trace", 404, 0.002);
        metrics.record("-", "-", 400, 0.0005);
        let body = render_metrics(&svc, &metrics);

        let mut samples = 0;
        for line in body.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("name/value split");
            let v: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("unparseable sample {line:?}"));
            assert!(v.is_finite(), "non-finite sample {line:?}");
            samples += 1;
        }
        assert!(samples > 10, "suspiciously small scrape:\n{body}");
        assert!(
            body.contains("fts_counter{name=\"evil\\\"name\\nwith\\\\slash\"} 3"),
            "escaped counter missing:\n{body}"
        );
        assert!(body.contains("fts_histogram_count{name=\"server.test.empty_hist\"} 0"));
        assert!(
            !body.contains("fts_histogram_mean{name=\"server.test.empty_hist\"}"),
            "count-0 histogram must not invent a mean:\n{body}"
        );
        assert!(body.contains(
            "fts_http_requests_total{method=\"GET\",path=\"/v1/jobs/{id}/trace\",status=\"404\"} 1"
        ));
        assert!(body.contains("fts_http_latency_window_count 3"));
    }

    #[test]
    fn http_label_vocabulary_is_bounded() {
        assert_eq!(route_template("/v1/jobs/17"), "/v1/jobs/{id}");
        assert_eq!(route_template("/v1/jobs/17/trace"), "/v1/jobs/{id}/trace");
        assert_eq!(route_template("/v1/jobs/not-a-number"), "/v1/jobs/{id}");
        assert_eq!(route_template("/../../etc/passwd"), "(other)");
        assert_eq!(method_label("BREW"), "OTHER");
        assert_eq!(method_label("GET"), "GET");
    }

    #[test]
    fn latency_ring_is_a_sliding_window() {
        let metrics = HttpMetrics::default();
        for i in 0..(LATENCY_WINDOW + 10) {
            metrics.record("GET", "/healthz", 200, i as f64);
        }
        let (window, total) = metrics.latency_window();
        assert_eq!(window.len(), LATENCY_WINDOW);
        assert_eq!(total, (LATENCY_WINDOW + 10) as u64);
        // The ten oldest samples (0..10) have been overwritten.
        assert_eq!(window[0], 10.0);
    }

    #[test]
    fn healthz_reports_uptime_and_job_states() {
        let svc = service();
        let metrics = HttpMetrics::default();
        let stop = AtomicBool::new(false);
        let req = get("/healthz", "");
        let Ok(Response::Json { status, body, .. }) =
            route(&req, &svc, &stop, &metrics, Instant::now())
        else {
            panic!("healthz must answer JSON");
        };
        assert_eq!(status, 200);
        let doc = crate::wire::Json::parse(&body).expect("healthz body parses");
        assert!(doc
            .get("uptime_s")
            .and_then(crate::wire::Json::as_f64)
            .is_some());
        let jobs = doc.get("jobs").expect("jobs object");
        for key in [
            "queued",
            "running",
            "completed",
            "rejected",
            "done_retained",
        ] {
            assert!(jobs.get(key).is_some(), "healthz missing jobs.{key}");
        }
    }

    #[test]
    fn trace_route_parses_id_and_format() {
        let svc = service();
        let metrics = HttpMetrics::default();
        let stop = AtomicBool::new(false);
        // Unknown id → plain 404 (the service holds no job 7).
        let req = get("/v1/jobs/7/trace", "format=chrome");
        match route(&req, &svc, &stop, &metrics, Instant::now()) {
            Err(HttpError::NotFound) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }
        // Garbage id → 400, not 404.
        let req = get("/v1/jobs/xyz/trace", "");
        match route(&req, &svc, &stop, &metrics, Instant::now()) {
            Err(HttpError::BadRequest(_)) => {}
            other => panic!("expected BadRequest, got {other:?}"),
        }
        // Wrong method → 405.
        let mut req = get("/v1/jobs/7/trace", "");
        req.method = "DELETE".to_owned();
        match route(&req, &svc, &stop, &metrics, Instant::now()) {
            Err(HttpError::MethodNotAllowed) => {}
            other => panic!("expected MethodNotAllowed, got {other:?}"),
        }
    }

    #[test]
    fn list_route_validates_its_query_parameters() {
        let svc = service();
        let metrics = HttpMetrics::default();
        let stop = AtomicBool::new(false);

        // Empty registry: a well-formed empty page.
        let req = get("/v1/jobs", "");
        let Ok(Response::Json { status, body, .. }) =
            route(&req, &svc, &stop, &metrics, Instant::now())
        else {
            panic!("listing must answer JSON");
        };
        assert_eq!(status, 200);
        assert!(body.contains("\"jobs\":[]"), "{body}");

        // Each violation is a structured 400 with its own stable code.
        for (query, code) in [
            ("state=zombie", "unknown_state"),
            ("cursor=-1", "bad_cursor"),
            ("cursor=abc", "bad_cursor"),
            ("limit=0", "invalid_limit"),
            ("limit=501", "invalid_limit"),
        ] {
            let req = get("/v1/jobs", query);
            let Ok(Response::Json { status, body, .. }) =
                route(&req, &svc, &stop, &metrics, Instant::now())
            else {
                panic!("{query}: must answer JSON");
            };
            assert_eq!(status, 400, "{query}: {body}");
            assert!(
                body.contains(&format!("\"code\":\"{code}\"")),
                "{query}: {body}"
            );
        }

        // In-range parameters pass through.
        let req = get("/v1/jobs", "state=done&cursor=3&limit=500");
        let Ok(Response::Json { status, .. }) = route(&req, &svc, &stop, &metrics, Instant::now())
        else {
            panic!("listing must answer JSON");
        };
        assert_eq!(status, 200);
    }

    #[test]
    fn every_error_body_carries_the_wire_envelope() {
        // The unified envelope: transport-layer errors, admission
        // rejections, and trace-disabled all render the same
        // {"schema_version":1,"error":{"code","message"}} shape.
        let bodies = [
            HttpError::NotFound.body(),
            HttpError::MethodNotAllowed.body(),
            HttpError::BadRequest("x".into()).body(),
            match admission_response(Err(SubmitError::Overloaded {
                queued: 1,
                depth: 2,
            })) {
                Response::Json { body, .. } => body,
                Response::Text { .. } => unreachable!(),
            },
            match admission_response(Err(SubmitError::ShuttingDown)) {
                Response::Json { body, .. } => body,
                Response::Text { .. } => unreachable!(),
            },
            match admission_response(Err(SubmitError::Unavailable("all down".into()))) {
                Response::Json { body, .. } => body,
                Response::Text { .. } => unreachable!(),
            },
            match trace_response(TraceLookup::Disabled).unwrap() {
                Response::Json { body, .. } => body,
                Response::Text { .. } => unreachable!(),
            },
        ];
        for body in bodies {
            let doc = crate::wire::Json::parse(&body).expect("envelope parses");
            assert_eq!(
                doc.get("schema_version")
                    .and_then(crate::wire::Json::as_f64),
                Some(f64::from(SCHEMA_VERSION)),
                "{body}"
            );
            let err = doc.get("error").expect("error object");
            assert!(err
                .get("code")
                .and_then(crate::wire::Json::as_str)
                .is_some());
            assert!(err
                .get("message")
                .and_then(crate::wire::Json::as_str)
                .is_some());
        }
    }

    #[test]
    fn disabled_tracing_answers_a_distinguishable_404() {
        let lookup = TraceLookup::Disabled;
        let Ok(Response::Json { status, body, .. }) = trace_response(lookup) else {
            panic!("disabled tracing must answer JSON");
        };
        assert_eq!(status, 404);
        assert!(body.contains("\"code\":\"trace_disabled\""), "{body}");
    }
}
