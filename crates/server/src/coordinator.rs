//! The coordinator: one front door fanning `POST /v1/jobs` out to a
//! fleet of worker processes over the versioned wire protocol.
//!
//! The coordinator is a router, not a simulator — it runs no engine. A
//! submitted manifest is validated locally (through the *same*
//! [`JobBuilder`] the workers use, so a bad manifest never half-lands on
//! the fleet), each job gets a coordinator-global id, and the job is
//! forwarded to the worker its id hashes to on the consistent-hash
//! [`HashRing`]. Clients poll the coordinator exactly as they would a
//! single server; status documents are proxied from the owning worker
//! with the worker-local id rewritten to the global one, so the embedded
//! `result` object stays byte-identical to what `fts batch` produces.
//!
//! **Failure model.** A periodic `/healthz` prober maintains an up/down
//! flag per worker; down workers are skipped when routing new work.
//! Recovery of already-routed jobs is *lazy*: when a status poll (or the
//! drain loop) finds the owning worker dead — connection refused, or a
//! fresh restart answering `404` for the old job — the coordinator
//! re-submits the job's stored single-job manifest to the next live
//! worker on the ring, up to `route_attempts` times. Re-placement does
//! network I/O, so the job is *claimed* (`Rerouting`) under the
//! registry lock and placed with the lock released; if no worker can
//! take it the job is parked `Stranded` — explicitly holding **no**
//! remote id, so a later poll re-places it instead of ever polling a
//! restarted worker for an id that now belongs to someone else's job.
//! Re-running is safe because results are deterministic: a job that ran
//! to completion on a worker whose answer we never read produces the
//! byte-identical row on its second run. A job whose attempts are
//! exhausted is closed out with a synthetic `failed` row rather than
//! left dangling — drain always terminates. A cancel acknowledged while
//! the owning worker is unreachable is recorded as a terminal cancelled
//! row, so an acknowledged cancellation is never resurrected by the
//! re-route path.
//!
//! **Admission.** All-or-nothing admission is kept, with one documented
//! relaxation: validation is atomic (whole manifest or nothing), but
//! forwarding is per-job, so a mid-manifest fleet failure triggers a
//! best-effort cancel of the already-forwarded prefix before the whole
//! submission is rejected with `503 no_workers`. A client that got ids
//! back holds jobs the fleet accepted; a client that got an error holds
//! nothing.
//!
//! **Result cache.** The coordinator keeps its own [`ResultCache`] keyed
//! by the same canonical `cache_key/1` the workers use. Admission
//! consults it before routing: a `default`-mode job whose key is cached
//! is minted Done locally and never touches the fleet. Proxied
//! completions populate the cache by lifting the `result` bytes out of
//! the worker's document verbatim (never parse → re-render — byte
//! identity is the cache contract). `GET /v1/cache` reports the
//! fleet-wide aggregate plus a per-worker breakdown, and
//! `DELETE /v1/cache` flushes the coordinator and fans the flush out to
//! every worker over the [`WireClient`].
//!
//! **Drain ordering** (`POST /v1/shutdown`, SIGINT, or
//! [`ServerHandle`]): stop accepting, serve queued connections, poll
//! every routed job to completion (rerouting around dead workers), and
//! only then — with zero jobs in flight — cascade the shutdown to each
//! worker. Workers drain their own queues before exiting, so the fleet
//! order is: coordinator empties first, then the fleet.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::client::{ClientError, ClientLimits, WireClient};
use crate::http::{HttpError, HttpLimits, Request};
use crate::ring::HashRing;
use crate::server::{
    accept_loop, admission_response, bind_addr, close_conn_queue, json_ok, list_params,
    new_conn_queue, prom_escape, prom_num, render_http_series, render_telemetry_series,
    spawn_conn_workers, wire_error_response, HttpApp, HttpMetrics, Response, ServerHandle,
    ShutdownReport,
};
use crate::service::{build_job, JobBuilder, SubmitError, DEFAULT_CACHE_ENTRIES};
use crate::signal;
use crate::wire::{
    cache_member_json, json_escape, json_f64, single_job_manifest, BatchManifest, Json, WireError,
    SCHEMA_VERSION,
};
use fts_engine::{
    cache_key, CacheKey, CacheMode, CacheStats, CachedResult, ResultCache, DEFAULT_CACHE_BYTES,
};

/// Coordinator tunables; every field has a production-safe default
/// except the worker list, which must be non-empty.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Bind address for the coordinator's own HTTP front door.
    pub addr: String,
    /// Worker wire addresses (`ip:port`), the ring's identity — two
    /// coordinators given the same list route identically.
    pub workers: Vec<String>,
    /// `/healthz` probe period per worker.
    pub probe_interval: Duration,
    /// Entry bound shared by the coordinator's own result cache and the
    /// finished (proxied-done or synthetic-failed) rows retained before
    /// oldest-first eviction, as on the single-process server. Replaces
    /// the former `retain_done` knob (PR 10).
    pub cache_entries: usize,
    /// Byte bound on the coordinator's result-cache payloads.
    pub cache_bytes: usize,
    /// Times one job may be re-routed to another worker before the
    /// coordinator closes it out with a synthetic `failed` row.
    pub route_attempts: usize,
    /// Cascade `POST /v1/shutdown` to every worker after the
    /// coordinator's own drain empties (on by default; disable to leave
    /// the fleet running behind a restarting coordinator).
    pub cascade: bool,
    /// Connection worker threads.
    pub conn_workers: usize,
    /// Accepted-connection queue capacity (overflow → canned `429`).
    pub conn_backlog: usize,
    /// HTTP limits for the coordinator's own listener.
    pub limits: HttpLimits,
    /// Limits for the coordinator's outbound worker connections.
    pub client_limits: ClientLimits,
}

impl Default for CoordinatorConfig {
    fn default() -> CoordinatorConfig {
        CoordinatorConfig {
            addr: "127.0.0.1:8706".to_owned(),
            workers: Vec::new(),
            probe_interval: Duration::from_millis(250),
            cache_entries: DEFAULT_CACHE_ENTRIES,
            cache_bytes: DEFAULT_CACHE_BYTES,
            route_attempts: 8,
            cascade: true,
            conn_workers: 4,
            conn_backlog: 128,
            limits: HttpLimits::default(),
            client_limits: ClientLimits::default(),
        }
    }
}

/// One worker as the coordinator sees it: its client, health flag, and
/// route counter.
struct WorkerSlot {
    addr: String,
    client: WireClient,
    /// Flipped by the prober and by routing-time transport failures;
    /// optimistically `true` at startup so the first submissions do not
    /// wait a probe period.
    up: AtomicBool,
    /// Jobs ever routed (first placement or re-route) to this worker.
    routed: AtomicU64,
}

enum CoordState {
    /// Forwarded to `workers[worker]` as remote job `remote`.
    Routed {
        worker: usize,
        remote: u64,
        attempts: usize,
    },
    /// The last placement died and no candidate could take the job, so
    /// it holds **no** remote id. The next status poll goes straight to
    /// re-placement — never to a status fetch, whose id could collide
    /// with a different job on a restarted worker's fresh registry.
    Stranded { attempts: usize },
    /// A poll thread claimed the job and is re-placing it with the
    /// registry lock released; concurrent polls answer synthetic
    /// `queued` instead of stacking behind the placement I/O.
    Rerouting { attempts: usize },
    /// Terminal: the cached (already id-rewritten) status document.
    /// `at` keeps trace proxying alive for jobs that really ran
    /// somewhere; synthetic close-outs (failed/cancelled) carry `None`.
    Done {
        kind: String,
        body: String,
        at: Option<(usize, u64)>,
    },
}

struct CoordJob {
    label: String,
    /// The single-job manifest to re-submit on worker death. `None` for
    /// multi-analysis deck jobs, which cannot be re-posted one job at a
    /// time — those fail closed instead of re-running siblings.
    resubmit: Option<String>,
    /// Canonical content hash, computed from the locally built job at
    /// admission — identical to the key the owning worker computes.
    key: CacheKey,
    /// The submission's cache policy; gates both the admission lookup
    /// and the completion-time insert.
    mode: CacheMode,
    state: CoordState,
}

struct CoordRegistry {
    jobs: HashMap<u64, CoordJob>,
    done_order: VecDeque<u64>,
    next_id: u64,
    draining: bool,
    completed: u64,
}

/// One admission unit after local validation: everything the submit path
/// needs to either serve the job from the coordinator's cache or forward
/// it to a worker.
struct Prepared {
    label: String,
    /// Single-job manifest for death-time re-submission (`None` for
    /// multi-analysis deck jobs).
    resubmit: Option<String>,
    /// The manifest forwarded on first placement.
    forward: String,
    key: CacheKey,
    mode: CacheMode,
    /// An admission-time cache hit; `Some` short-circuits routing.
    hit: Option<CachedResult>,
}

/// The coordinator's routing service: registry + fleet view. Implements
/// [`HttpApp`], so it runs behind the same accept loop, connection
/// workers, and metrics as [`JobService`](crate::JobService).
struct CoordService {
    workers: Vec<WorkerSlot>,
    ring: HashRing,
    builder: Arc<dyn JobBuilder>,
    registry: Mutex<CoordRegistry>,
    cache_entries: usize,
    /// The coordinator's own content-addressed result cache: admission
    /// hits are served here without touching the fleet.
    cache: ResultCache,
    route_attempts: usize,
    rejected: AtomicU64,
}

/// Coordinator gauges for `/healthz` and `/metrics`.
struct CoordGauges {
    routed: usize,
    done_retained: usize,
    completed: u64,
    rejected: u64,
    workers_up: usize,
}

impl CoordService {
    fn new(config: &CoordinatorConfig, builder: Arc<dyn JobBuilder>) -> CoordService {
        let workers = config
            .workers
            .iter()
            .map(|addr| WorkerSlot {
                addr: addr.clone(),
                client: WireClient::new(addr.clone()).limits(config.client_limits),
                up: AtomicBool::new(true),
                routed: AtomicU64::new(0),
            })
            .collect();
        CoordService {
            workers,
            ring: HashRing::new(&config.workers),
            builder,
            registry: Mutex::new(CoordRegistry {
                jobs: HashMap::new(),
                done_order: VecDeque::new(),
                next_id: 0,
                draining: false,
                completed: 0,
            }),
            cache_entries: config.cache_entries.max(1),
            cache: ResultCache::new(config.cache_entries.max(1), config.cache_bytes),
            route_attempts: config.route_attempts.max(1),
            rejected: AtomicU64::new(0),
        }
    }

    fn gauges(&self) -> CoordGauges {
        let reg = self.registry.lock().expect("coord registry poisoned");
        let routed = reg
            .jobs
            .values()
            .filter(|j| !matches!(j.state, CoordState::Done { .. }))
            .count();
        CoordGauges {
            routed,
            done_retained: reg.done_order.len(),
            completed: reg.completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            workers_up: self
                .workers
                .iter()
                .filter(|w| w.up.load(Ordering::SeqCst))
                .count(),
        }
    }

    /// Ring candidates for `id`, live workers first (ring order within
    /// each group) — down workers stay as a last resort because the
    /// prober's view can lag a recovery.
    fn placement_order(&self, id: u64) -> Vec<usize> {
        let candidates = self.ring.candidates(HashRing::key_for_id(id));
        let (live, down): (Vec<usize>, Vec<usize>) = candidates
            .into_iter()
            .partition(|&w| self.workers[w].up.load(Ordering::SeqCst));
        live.into_iter().chain(down).collect()
    }

    /// Forwards one single-job manifest to the first worker in
    /// `placement_order(id)` that accepts it (skipping `exclude`).
    /// Transport failures mark the worker down; API refusals (a worker's
    /// own `429`/`503`) just move on to the next candidate.
    fn place(&self, id: u64, manifest: &str, exclude: Option<usize>) -> Option<(usize, u64)> {
        for w in self.placement_order(id) {
            if exclude == Some(w) {
                continue;
            }
            match self.workers[w].client.submit_manifest(manifest) {
                Ok(remotes) if remotes.len() == 1 => {
                    self.workers[w].routed.fetch_add(1, Ordering::Relaxed);
                    fts_telemetry::counter("coordinator.jobs.routed", 1);
                    return Some((w, remotes[0]));
                }
                Ok(remotes) => {
                    // Unexpected id count: recall whatever the worker
                    // accepted before moving on, so no orphaned
                    // duplicates keep running on the fleet.
                    for r in remotes {
                        let _ = self.workers[w].client.cancel(r);
                    }
                    continue;
                }
                Err(ClientError::Api(_)) => continue,
                Err(_) => {
                    self.mark_down(w);
                    continue;
                }
            }
        }
        None
    }

    fn mark_down(&self, w: usize) {
        if self.workers[w].up.swap(false, Ordering::SeqCst) {
            fts_telemetry::counter("coordinator.workers.marked_down", 1);
        }
    }

    /// `POST /v1/jobs` and `/v1/decks` both land here once lowered to
    /// one [`Prepared`] unit per job.
    fn submit_prepared(&self, prepared: Vec<Prepared>) -> Result<Vec<u64>, SubmitError> {
        // Reserve global ids first; ids burned by a failed submission
        // stay burned (ids are opaque handles, not dense indices).
        let base = {
            let mut reg = self.registry.lock().expect("coord registry poisoned");
            if reg.draining {
                return Err(SubmitError::ShuttingDown);
            }
            let base = reg.next_id;
            reg.next_id += prepared.len() as u64;
            base
        };

        // Forward the cache misses outside the lock — placement does
        // network I/O; hits never leave this process.
        let mut placements: Vec<Option<(usize, u64)>> = vec![None; prepared.len()];
        for (k, p) in prepared.iter().enumerate() {
            if p.hit.is_some() {
                continue;
            }
            let id = base + k as u64;
            match self.place(id, &p.forward, None) {
                Some((w, remote)) => placements[k] = Some((w, remote)),
                None => {
                    // Roll back the prefix: best-effort cancel remotely,
                    // nothing was registered locally yet.
                    for (w, remote) in placements.iter().flatten() {
                        let _ = self.workers[*w].client.cancel(*remote);
                    }
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::Unavailable(
                        "no worker accepted the job (fleet down or refusing)".into(),
                    ));
                }
            }
        }

        let mut reg = self.registry.lock().expect("coord registry poisoned");
        if reg.draining {
            // Drain began while we were forwarding; its completion scan
            // may already have passed, so refuse rather than strand jobs.
            for (w, remote) in placements.iter().flatten() {
                let _ = self.workers[*w].client.cancel(*remote);
            }
            return Err(SubmitError::ShuttingDown);
        }
        let mut ids = Vec::with_capacity(prepared.len());
        for (k, p) in prepared.into_iter().enumerate() {
            let id = base + k as u64;
            if let Some(cached) = p.hit {
                // Admission hit: mint the terminal document locally with
                // the stored result bytes under this submission's label.
                let body = hit_status(id, &p.label, p.key, &cached);
                reg.jobs.insert(
                    id,
                    CoordJob {
                        label: p.label,
                        resubmit: p.resubmit,
                        key: p.key,
                        mode: p.mode,
                        state: CoordState::Done {
                            kind: cached.kind.to_owned(),
                            body,
                            at: None,
                        },
                    },
                );
                reg.completed += 1;
                reg.done_order.push_back(id);
                while reg.done_order.len() > self.cache_entries {
                    let evicted = reg.done_order.pop_front().expect("non-empty");
                    reg.jobs.remove(&evicted);
                }
                fts_telemetry::counter("coordinator.jobs.completed", 1);
            } else {
                let (worker, remote) = placements[k].expect("miss was placed above");
                reg.jobs.insert(
                    id,
                    CoordJob {
                        label: p.label,
                        resubmit: p.resubmit,
                        key: p.key,
                        mode: p.mode,
                        state: CoordState::Routed {
                            worker,
                            remote,
                            attempts: 1,
                        },
                    },
                );
            }
            ids.push(id);
        }
        Ok(ids)
    }

    /// `POST /v1/jobs`: validate the whole manifest locally, then
    /// forward job-by-job.
    fn submit_manifest(&self, body: &str) -> Result<Vec<u64>, SubmitError> {
        let mut manifest = BatchManifest::parse(body).map_err(SubmitError::Invalid)?;
        let mut built = Vec::with_capacity(manifest.jobs.len());
        for (k, spec) in manifest.jobs.iter().enumerate() {
            built.push(build_job(self.builder.as_ref(), spec, k).map_err(SubmitError::Invalid)?);
        }
        let width = manifest.ensemble_width;
        let prepared = manifest
            .jobs
            .iter_mut()
            .enumerate()
            .map(|(k, spec)| {
                // Pin the label before forwarding: the worker would
                // otherwise re-default it from its own (index 0) view.
                spec.label = Some(spec.label_or_default(k));
                // The validation build doubles as the canonicalizer
                // input: the key is label-independent, so pinning the
                // label after building does not change it.
                let key = cache_key(&built[k].job, built[k].out, spec.waveform);
                let hit = spec.cache.reads().then(|| self.cache.lookup(key)).flatten();
                let single = single_job_manifest(spec, width);
                Prepared {
                    label: spec.label.clone().expect("just set"),
                    resubmit: Some(single.clone()),
                    forward: single,
                    key,
                    mode: spec.cache,
                    hit,
                }
            })
            .collect();
        self.submit_prepared(prepared)
    }

    /// `POST /v1/decks`: validate locally, forward the raw deck to one
    /// worker (a deck's analyses must share their elaborated netlist, so
    /// the deck is never split). Single-analysis decks can be re-routed
    /// as a deck; multi-analysis decks fail closed on worker death
    /// rather than re-running sibling analyses.
    fn submit_deck(&self, deck: &str) -> Result<Vec<u64>, SubmitError> {
        let subs = crate::service::deck_submissions(deck).map_err(SubmitError::Invalid)?;
        if subs.is_empty() {
            return Err(SubmitError::Invalid(WireError::manifest(
                "empty_manifest",
                "no jobs to admit",
            )));
        }
        let labels: Vec<String> = subs.iter().map(|s| s.label.clone()).collect();
        // Decks route whole (shared elaborated netlist), so there is no
        // per-analysis hit short-circuit — but completions still populate
        // the cache through `close_done`, so the keys are recorded.
        let keys: Vec<CacheKey> = subs
            .iter()
            .map(|s| cache_key(&s.job, s.out, s.waveform))
            .collect();

        let base = {
            let mut reg = self.registry.lock().expect("coord registry poisoned");
            if reg.draining {
                return Err(SubmitError::ShuttingDown);
            }
            let base = reg.next_id;
            reg.next_id += labels.len() as u64;
            base
        };

        // One placement decision for the whole deck, keyed by its first id.
        for w in self.placement_order(base) {
            match self.workers[w].client.submit_deck(deck) {
                Ok(remotes) if remotes.len() == labels.len() => {
                    self.deck_registered(base, &labels, &keys, w, &remotes, deck);
                    return Ok((base..base + labels.len() as u64).collect());
                }
                Ok(remotes) => {
                    // Unexpected job count: recall the accepted jobs
                    // before trying the next candidate.
                    for r in remotes {
                        let _ = self.workers[w].client.cancel(r);
                    }
                    continue;
                }
                Err(ClientError::Api(_)) => continue,
                Err(_) => {
                    self.mark_down(w);
                    continue;
                }
            }
        }
        self.rejected.fetch_add(1, Ordering::Relaxed);
        Err(SubmitError::Unavailable(
            "no worker accepted the deck (fleet down or refusing)".into(),
        ))
    }

    /// Registers a successfully forwarded deck's jobs.
    fn deck_registered(
        &self,
        base: u64,
        labels: &[String],
        keys: &[CacheKey],
        worker: usize,
        remotes: &[u64],
        deck: &str,
    ) {
        self.workers[worker]
            .routed
            .fetch_add(labels.len() as u64, Ordering::Relaxed);
        let resubmit = (labels.len() == 1).then(|| deck.to_owned());
        let mut reg = self.registry.lock().expect("coord registry poisoned");
        for (k, (label, &remote)) in labels.iter().zip(remotes).enumerate() {
            reg.jobs.insert(
                base + k as u64,
                CoordJob {
                    label: label.clone(),
                    resubmit: resubmit.clone(),
                    key: keys[k],
                    mode: CacheMode::Default,
                    state: CoordState::Routed {
                        worker,
                        remote,
                        attempts: 1,
                    },
                },
            );
        }
    }

    /// `GET /v1/jobs/{id}`: cached terminal body, or a live proxy to the
    /// owning worker with the remote id rewritten to the global one. A
    /// dead or amnesiac worker triggers a re-route.
    fn status_json(&self, id: u64) -> Option<String> {
        let (worker, remote, label) = {
            let reg = self.registry.lock().expect("coord registry poisoned");
            let job = reg.jobs.get(&id)?;
            match &job.state {
                CoordState::Done { body, .. } => return Some(body.clone()),
                // Another thread is re-placing it right now.
                CoordState::Rerouting { .. } => {
                    return Some(synthetic_status(id, &job.label, "queued"));
                }
                // No valid remote id exists: skip the status fetch and
                // go straight to re-placement.
                CoordState::Stranded { .. } => {
                    let label = job.label.clone();
                    drop(reg);
                    return Some(self.reroute(id, None, &label));
                }
                CoordState::Routed { worker, remote, .. } => (*worker, *remote, job.label.clone()),
            }
        };

        match self.workers[worker].client.status(remote) {
            Ok(body) => {
                let body = rewrite_id(&body, remote, id);
                if body.contains("\"status\":\"done\"") {
                    self.complete(id, worker, remote, &body);
                }
                Some(body)
            }
            Err(ClientError::Api(e)) if e.status == 404 => {
                // The worker restarted (fresh registry) or evicted the
                // row before we read it: re-run elsewhere.
                Some(self.reroute(id, Some(worker), &label))
            }
            Err(ClientError::Api(_)) => Some(synthetic_status(id, &label, "routed")),
            Err(_) => {
                self.mark_down(worker);
                Some(self.reroute(id, Some(worker), &label))
            }
        }
    }

    /// Installs a terminal row for `id` in a registry the caller holds
    /// locked, bumping the completion gauge and applying the
    /// `cache_entries` done-row eviction exactly like the single-process
    /// server. Returns whether this call won the transition (a job
    /// already terminal, or evicted, is left alone).
    ///
    /// Real completions (`at` is `Some`) also populate the coordinator's
    /// result cache: the `result` bytes are lifted out of the proxied
    /// document verbatim — never parse → re-render, byte identity is the
    /// cache contract.
    fn close_done(
        &self,
        reg: &mut CoordRegistry,
        id: u64,
        kind: &str,
        body: String,
        at: Option<(usize, u64)>,
    ) -> bool {
        let Some(job) = reg.jobs.get_mut(&id) else {
            return false;
        };
        if matches!(job.state, CoordState::Done { .. }) {
            return false; // A concurrent poll won the transition.
        }
        if at.is_some() && job.mode.writes() {
            // Only deterministic successes are cacheable; the static tag
            // doubles as the success gate.
            let cacheable: Option<&'static str> = match kind {
                "op" => Some("op"),
                "sweep" => Some("sweep"),
                "transient" => Some("transient"),
                "ac" => Some("ac"),
                _ => None,
            };
            if let Some(tag) = cacheable {
                if let Some(result) = result_bytes(&body) {
                    let attempts = attempts_in(&body).unwrap_or(1);
                    self.cache.insert(job.key, tag, result.to_owned(), attempts);
                }
            }
        }
        job.state = CoordState::Done {
            kind: kind.to_owned(),
            body,
            at,
        };
        reg.completed += 1;
        reg.done_order.push_back(id);
        while reg.done_order.len() > self.cache_entries {
            let evicted = reg.done_order.pop_front().expect("non-empty");
            reg.jobs.remove(&evicted);
        }
        true
    }

    /// Transitions a routed job to Done with its cached body.
    fn complete(&self, id: u64, worker: usize, remote: u64, body: &str) {
        let kind = Json::parse(body)
            .ok()
            .and_then(|d| d.get("kind").and_then(Json::as_str).map(str::to_owned))
            .unwrap_or_else(|| "unknown".to_owned());
        let mut reg = self.registry.lock().expect("coord registry poisoned");
        if self.close_done(&mut reg, id, &kind, body.to_owned(), Some((worker, remote))) {
            fts_telemetry::counter("coordinator.jobs.completed", 1);
        }
    }

    /// Closes `id` as a terminal cancelled row — used when a cancel was
    /// acknowledged but no reachable worker holds the job, so the
    /// cancellation must be recorded here or re-routing would resurrect
    /// the job the client was told is dead.
    fn close_cancelled(&self, reg: &mut CoordRegistry, id: u64, label: &str) {
        let body = synthetic_cancelled(id, label);
        if self.close_done(reg, id, "cancelled", body, None) {
            fts_telemetry::counter("coordinator.jobs.cancelled_closed", 1);
        }
    }

    /// Re-places job `id` after its owning worker died or forgot it
    /// (`failed = Some(w)`), or after an earlier attempt left it
    /// stranded with no placement at all (`failed = None`). Returns the
    /// status body to serve right now.
    ///
    /// Placement does network I/O — each dead candidate can burn a full
    /// connect timeout — so the job is *claimed* under the registry lock
    /// (state → `Rerouting`), placed with the lock released, and the
    /// outcome committed under the lock again. Concurrent polls answer
    /// a synthetic `queued` row instead of stalling every endpoint
    /// behind the lock, and a cancel that lands mid-placement wins: the
    /// commit sees the terminal state and recalls the fresh placement.
    fn reroute(&self, id: u64, failed: Option<usize>, label: &str) -> String {
        // Phase 1: claim the job (or close it out) under the lock.
        let manifest = {
            let mut reg = self.registry.lock().expect("coord registry poisoned");
            let Some(job) = reg.jobs.get_mut(&id) else {
                return synthetic_status(id, label, "routed");
            };
            let attempts = match &job.state {
                CoordState::Done { body, .. } => return body.clone(),
                // Another thread owns the re-placement.
                CoordState::Rerouting { .. } => return synthetic_status(id, label, "queued"),
                CoordState::Routed {
                    worker, attempts, ..
                } => {
                    if failed != Some(*worker) {
                        // Another thread already re-routed it.
                        return synthetic_status(id, label, "routed");
                    }
                    *attempts
                }
                CoordState::Stranded { attempts } => *attempts,
            };
            let closed: Option<String> = if attempts >= self.route_attempts {
                Some(synthetic_failed(
                    id,
                    label,
                    &format!("worker unavailable after {attempts} route attempts"),
                ))
            } else if job.resubmit.is_none() {
                let died = failed.map_or_else(
                    || "a worker".to_owned(),
                    |w| format!("worker {}", self.workers[w].addr),
                );
                Some(synthetic_failed(
                    id,
                    label,
                    &format!(
                        "{died} died holding a multi-analysis deck job, which cannot \
                         be re-routed standalone"
                    ),
                ))
            } else {
                None
            };
            if let Some(body) = closed {
                self.close_done(&mut reg, id, "failed", body.clone(), None);
                fts_telemetry::counter("coordinator.jobs.failed_closed", 1);
                return body;
            }
            let manifest = job.resubmit.clone().expect("checked above");
            job.state = CoordState::Rerouting { attempts };
            manifest
        };

        // Phase 2: place with the lock released.
        let is_deck = !manifest.trim_start().starts_with('{');
        let placed = if is_deck {
            self.placement_order(id)
                .into_iter()
                .filter(|&w| Some(w) != failed)
                .find_map(|w| match self.workers[w].client.submit_deck(&manifest) {
                    Ok(remotes) if remotes.len() == 1 => Some((w, remotes[0])),
                    Ok(remotes) => {
                        for r in remotes {
                            let _ = self.workers[w].client.cancel(r);
                        }
                        None
                    }
                    Err(ClientError::Api(_)) => None,
                    Err(_) => {
                        self.mark_down(w);
                        None
                    }
                })
        } else {
            self.place(id, &manifest, failed)
        };

        // Phase 3: commit. A placement that lost a race to a terminal
        // transition (cancel, eviction) is recalled after unlocking.
        let (body, recall) = {
            let mut reg = self.registry.lock().expect("coord registry poisoned");
            match reg.jobs.get_mut(&id) {
                None => (synthetic_status(id, label, "routed"), placed),
                Some(job) => match &job.state {
                    CoordState::Rerouting { attempts } => {
                        let attempts = *attempts;
                        match placed {
                            Some((w, remote)) => {
                                fts_telemetry::counter("coordinator.jobs.rerouted", 1);
                                job.state = CoordState::Routed {
                                    worker: w,
                                    remote,
                                    attempts: attempts + 1,
                                };
                                // The job restarted from scratch: report queued.
                                (synthetic_status(id, label, "queued"), None)
                            }
                            None => {
                                // Nobody can take it right now; park it
                                // with no remote id and let the next poll
                                // (or the prober flipping a worker back
                                // up) retry. Burn one attempt so this
                                // terminates.
                                job.state = CoordState::Stranded {
                                    attempts: attempts + 1,
                                };
                                (synthetic_status(id, label, "queued"), None)
                            }
                        }
                    }
                    CoordState::Done { body, .. } => (body.clone(), placed),
                    // Unreachable — only the claiming thread commits —
                    // but recall the placement rather than leak it.
                    CoordState::Routed { .. } | CoordState::Stranded { .. } => {
                        (synthetic_status(id, label, "routed"), placed)
                    }
                },
            }
        };
        if let Some((w, remote)) = recall {
            let _ = self.workers[w].client.cancel(remote);
        }
        body
    }

    /// `DELETE /v1/jobs/{id}`: proxy the cancel to the owning worker.
    /// An acknowledged cancel is binding: when the owning worker never
    /// hears it (unreachable, or the job currently has no placement at
    /// all), the job is closed out as a terminal cancelled row here, so
    /// the re-route path can never re-run a job the client was told is
    /// cancelled.
    fn cancel(&self, id: u64) -> Option<String> {
        enum Target {
            AlreadyDone,
            Worker(usize, u64, String),
            ClosedLocally,
        }
        let target = {
            let mut reg = self.registry.lock().expect("coord registry poisoned");
            let job = reg.jobs.get(&id)?;
            match &job.state {
                CoordState::Done { .. } => Target::AlreadyDone,
                CoordState::Routed { worker, remote, .. } => {
                    Target::Worker(*worker, *remote, job.label.clone())
                }
                // No reachable placement to forward the cancel to.
                CoordState::Stranded { .. } | CoordState::Rerouting { .. } => {
                    let label = job.label.clone();
                    self.close_cancelled(&mut reg, id, &label);
                    Target::ClosedLocally
                }
            }
        };
        let (worker, remote, label) = match target {
            Target::AlreadyDone => {
                return Some(format!(
                    "{{\"schema_version\":{SCHEMA_VERSION},\"id\":{id},\"cancelled\":true,\"was\":\"done\"}}"
                ));
            }
            Target::ClosedLocally => {
                return Some(format!(
                    "{{\"schema_version\":{SCHEMA_VERSION},\"id\":{id},\"cancelled\":true,\"was\":\"routed\"}}"
                ));
            }
            Target::Worker(worker, remote, label) => (worker, remote, label),
        };
        match self.workers[worker].client.cancel(remote) {
            Ok(body) => Some(rewrite_id(&body, remote, id)),
            Err(e) => {
                if !matches!(e, ClientError::Api(_)) {
                    self.mark_down(worker);
                }
                // The worker never heard the cancel: record it in the
                // registry so the job is never re-routed. If another
                // thread moved the job to a fresh placement mid-cancel,
                // the acknowledgment binds there instead — forward it.
                enum After {
                    CloseLocal,
                    Forward(usize, u64),
                    Leave,
                }
                let mut reg = self.registry.lock().expect("coord registry poisoned");
                let after = match reg.jobs.get(&id).map(|j| &j.state) {
                    Some(CoordState::Routed {
                        worker: w,
                        remote: r,
                        ..
                    }) => {
                        if (*w, *r) == (worker, remote) {
                            After::CloseLocal
                        } else {
                            After::Forward(*w, *r)
                        }
                    }
                    Some(CoordState::Stranded { .. } | CoordState::Rerouting { .. }) => {
                        After::CloseLocal
                    }
                    Some(CoordState::Done { .. }) | None => After::Leave,
                };
                match after {
                    After::CloseLocal => self.close_cancelled(&mut reg, id, &label),
                    After::Forward(w, r) => {
                        drop(reg);
                        let _ = self.workers[w].client.cancel(r);
                    }
                    After::Leave => {}
                }
                Some(format!(
                    "{{\"schema_version\":{SCHEMA_VERSION},\"id\":{id},\"cancelled\":true,\"was\":\"routed\"}}"
                ))
            }
        }
    }

    /// `GET /v1/jobs/{id}/trace`: proxy to wherever the job lives (or
    /// last lived), passing the worker's status and body through.
    fn trace(&self, id: u64, chrome: bool) -> Option<Response> {
        let (worker, remote) = {
            let reg = self.registry.lock().expect("coord registry poisoned");
            let job = reg.jobs.get(&id)?;
            match &job.state {
                CoordState::Routed { worker, remote, .. } => (*worker, *remote),
                CoordState::Done {
                    at: Some((w, r)), ..
                } => (*w, *r),
                // Never ran anywhere we can still reach — no trace.
                CoordState::Done { at: None, .. }
                | CoordState::Stranded { .. }
                | CoordState::Rerouting { .. } => return None,
            }
        };
        let path = if chrome {
            format!("/v1/jobs/{remote}/trace?format=chrome")
        } else {
            format!("/v1/jobs/{remote}/trace")
        };
        match self.workers[worker].client.call("GET", &path, None) {
            Ok(resp) => Some(Response::Json {
                status: resp.status,
                reason: if resp.status == 200 {
                    "OK"
                } else {
                    "Not Found"
                },
                body: rewrite_id(&resp.body, remote, id),
            }),
            Err(_) => None,
        }
    }

    /// `GET /v1/jobs` over the coordinator's registry: states are
    /// `routed` (live on a worker) and `done`; rows carry the owning
    /// worker's address.
    fn list_json(&self, state: Option<&str>, cursor: Option<u64>, limit: usize) -> String {
        let reg = self.registry.lock().expect("coord registry poisoned");
        let mut ids: Vec<u64> = reg.jobs.keys().copied().collect();
        ids.sort_unstable();
        let mut rows = Vec::new();
        let mut truncated = false;
        let mut last_id = None;
        for id in ids {
            if let Some(c) = cursor {
                if id <= c {
                    continue;
                }
            }
            let job = &reg.jobs[&id];
            let (status, kind, worker) = match &job.state {
                CoordState::Routed { worker, .. } => ("routed", None, Some(*worker)),
                // In flight but between placements: still "routed" to
                // the client, with no worker attribution.
                CoordState::Stranded { .. } | CoordState::Rerouting { .. } => {
                    ("routed", None, None)
                }
                CoordState::Done { kind, at, .. } => {
                    ("done", Some(kind.clone()), at.map(|(w, _)| w))
                }
            };
            if state.is_some_and(|want| want != status) {
                continue;
            }
            if rows.len() == limit {
                truncated = true;
                break;
            }
            let mut row = format!(
                "{{\"id\":{id},\"label\":\"{}\",\"status\":\"{status}\"",
                json_escape(&job.label),
            );
            if let Some(w) = worker {
                row.push_str(&format!(
                    ",\"worker\":\"{}\"",
                    json_escape(&self.workers[w].addr)
                ));
            }
            if let Some(kind) = kind {
                row.push_str(&format!(",\"kind\":\"{}\"", json_escape(&kind)));
            }
            row.push('}');
            rows.push(row);
            last_id = Some(id);
        }
        crate::service::list_page_json(&rows, truncated, last_id)
    }

    /// One prober pass: `/healthz` every worker, flip the flags.
    fn probe(&self) {
        for w in &self.workers {
            let alive = w.client.healthz().is_ok();
            let was = w.up.swap(alive, Ordering::SeqCst);
            if was != alive {
                fts_telemetry::counter(
                    if alive {
                        "coordinator.workers.recovered"
                    } else {
                        "coordinator.workers.marked_down"
                    },
                    1,
                );
            }
        }
    }

    /// Ids of jobs not yet terminal.
    fn open_jobs(&self) -> Vec<u64> {
        let reg = self.registry.lock().expect("coord registry poisoned");
        let mut ids: Vec<u64> = reg
            .jobs
            .iter()
            .filter(|(_, j)| !matches!(j.state, CoordState::Done { .. }))
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Drain: mark draining, poll every routed job to completion
    /// (rerouting around dead workers as usual), then cascade shutdown
    /// to the fleet when configured. Terminates because every poll of an
    /// unreachable job burns one of its bounded route attempts.
    fn drain(&self, cascade: bool) {
        {
            let mut reg = self.registry.lock().expect("coord registry poisoned");
            reg.draining = true;
        }
        loop {
            let open = self.open_jobs();
            if open.is_empty() {
                break;
            }
            for id in open {
                let _ = self.status_json(id);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        if cascade {
            for w in &self.workers {
                let _ = w.client.shutdown();
            }
        }
    }

    fn healthz(&self, started: Instant) -> String {
        let g = self.gauges();
        format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"status\":\"ok\",\"role\":\"coordinator\",\
             \"uptime_s\":{:.3},\"workers\":{{\"total\":{},\"up\":{}}},\
             \"jobs\":{{\"routed\":{},\"completed\":{},\"rejected\":{},\"done_retained\":{}}}}}",
            started.elapsed().as_secs_f64(),
            self.workers.len(),
            g.workers_up,
            g.routed,
            g.completed,
            g.rejected,
            g.done_retained,
        )
    }

    /// `GET /v1/cache`: fleet-wide aggregate stats at the top level
    /// (coordinator + every reachable worker, fanned out over the wire),
    /// with the coordinator's own counters and a per-worker breakdown
    /// nested alongside.
    fn cache_stats_doc(&self) -> String {
        let own = self.cache.stats();
        let mut agg = own;
        let mut rows = Vec::with_capacity(self.workers.len());
        for w in &self.workers {
            let stats = w
                .client
                .cache_stats()
                .ok()
                .and_then(|body| parse_cache_stats(&body));
            match stats {
                Some(s) => {
                    agg.entries += s.entries;
                    agg.bytes += s.bytes;
                    agg.hits += s.hits;
                    agg.misses += s.misses;
                    agg.evictions += s.evictions;
                    rows.push(format!(
                        "{{\"worker\":\"{}\",{}}}",
                        json_escape(&w.addr),
                        cache_stats_fields(&s)
                    ));
                }
                None => rows.push(format!(
                    "{{\"worker\":\"{}\",\"unreachable\":true}}",
                    json_escape(&w.addr)
                )),
            }
        }
        format!(
            "{{\"schema_version\":{SCHEMA_VERSION},{},\"coordinator\":{{{}}},\"workers\":[{}]}}",
            cache_stats_fields(&agg),
            cache_stats_fields(&own),
            rows.join(","),
        )
    }

    /// `DELETE /v1/cache`: flush the coordinator's own cache, then fan
    /// the flush out to every worker (best effort — an unreachable
    /// worker flushes on its next restart anyway).
    fn cache_flush_doc(&self) -> String {
        self.cache.flush();
        let mut flushed = 1usize;
        for w in &self.workers {
            if w.client.cache_flush().is_ok() {
                flushed += 1;
            }
        }
        format!("{{\"schema_version\":{SCHEMA_VERSION},\"flushed\":true,\"nodes\":{flushed}}}")
    }

    fn render_metrics(&self, metrics: &HttpMetrics) -> String {
        use std::fmt::Write as _;
        let g = self.gauges();
        let mut out = String::with_capacity(2048);
        out.push_str("# fts-coordinator metrics (schema_version 1)\n");
        let _ = writeln!(out, "fts_jobs_routed {}", g.routed);
        let _ = writeln!(out, "fts_jobs_completed {}", g.completed);
        let _ = writeln!(out, "fts_submissions_rejected {}", g.rejected);
        let _ = writeln!(out, "fts_jobs_done_retained {}", g.done_retained);
        let cache = self.cache.stats();
        let _ = writeln!(out, "fts_cache_entries {}", cache.entries);
        let _ = writeln!(out, "fts_cache_bytes {}", cache.bytes);
        let _ = writeln!(out, "fts_cache_hits_total {}", cache.hits);
        let _ = writeln!(out, "fts_cache_misses_total {}", cache.misses);
        let _ = writeln!(out, "fts_cache_evictions_total {}", cache.evictions);
        let _ = writeln!(out, "fts_cache_hit_ratio {}", prom_num(cache.hit_ratio()));
        let _ = writeln!(out, "fts_coordinator_workers {}", self.workers.len());
        for w in &self.workers {
            let up = u8::from(w.up.load(Ordering::SeqCst));
            let _ = writeln!(
                out,
                "fts_coordinator_worker_up{{worker=\"{}\"}} {up}",
                prom_escape(&w.addr)
            );
            let _ = writeln!(
                out,
                "fts_coordinator_worker_routed_total{{worker=\"{}\"}} {}",
                prom_escape(&w.addr),
                w.routed.load(Ordering::Relaxed)
            );
        }
        render_http_series(&mut out, metrics);
        render_telemetry_series(&mut out);
        out
    }
}

/// Rewrites the *first* `"id":<from>` member in a worker document to the
/// coordinator-global id. Safe by construction: every proxied document's
/// own id precedes any embedded payload (`job` rows carry labels and
/// results but no bare `"id"` member), so the first match is always the
/// document id — and the embedded `result` bytes are untouched, which is
/// what keeps served results byte-identical to `fts batch`.
fn rewrite_id(body: &str, from: u64, to: u64) -> String {
    let needle = format!("\"id\":{from}");
    match body.find(&needle) {
        Some(at) => {
            let mut out = String::with_capacity(body.len() + 8);
            out.push_str(&body[..at]);
            out.push_str(&format!("\"id\":{to}"));
            out.push_str(&body[at + needle.len()..]);
            out
        }
        None => body.to_owned(),
    }
}

/// The terminal document for an admission-time cache hit: the same outer
/// shape as a proxied worker completion, with the stored `result` bytes
/// embedded verbatim and `cache.hit` true.
fn hit_status(id: u64, label: &str, key: CacheKey, cached: &CachedResult) -> String {
    format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"id\":{id},\"status\":\"done\",\"kind\":\"{}\",\
         \"job\":{{\"label\":\"{}\",\"kind\":\"{}\",\"wall_s\":0,\"attempts\":{},\"result\":{}{}}}}}",
        cached.kind,
        json_escape(label),
        cached.kind,
        cached.attempts,
        cached.result_json,
        cache_member_json(key, true),
    )
}

/// The raw bytes of the first `"result":{...}` object in a status
/// document, exactly as serialized — the substring is lifted without a
/// JSON round-trip so a cached copy stays byte-identical to the
/// original. Labels cannot spoof the needle: they are JSON-escaped, so
/// an embedded quote can never form a bare `"result":` inside a string.
fn result_bytes(body: &str) -> Option<&str> {
    let at = body.find("\"result\":")? + "\"result\":".len();
    json_object_at(body, at)
}

/// Brace-matches one JSON object starting at `start`, skipping braces
/// inside string literals (escape-aware).
fn json_object_at(body: &str, start: usize) -> Option<&str> {
    let bytes = body.as_bytes();
    if *bytes.get(start)? != b'{' {
        return None;
    }
    let (mut depth, mut in_string, mut escaped) = (0usize, false, false);
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[start..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// The `"attempts":N` count quoted in a done document's job row.
fn attempts_in(body: &str) -> Option<usize> {
    let at = body.find("\"attempts\":")? + "\"attempts\":".len();
    let digits = body[at..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap_or("");
    digits.parse().ok()
}

/// Decodes a worker's `GET /v1/cache` body back into [`CacheStats`].
fn parse_cache_stats(body: &str) -> Option<CacheStats> {
    let doc = Json::parse(body).ok()?;
    let num = |k: &str| doc.get(k).and_then(Json::as_f64);
    Some(CacheStats {
        entries: num("entries")? as usize,
        bytes: num("bytes")? as usize,
        hits: num("hits")? as u64,
        misses: num("misses")? as u64,
        evictions: num("evictions")? as u64,
    })
}

/// Renders the shared stats members (no braces) for cache documents.
fn cache_stats_fields(s: &CacheStats) -> String {
    format!(
        "\"entries\":{},\"bytes\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_ratio\":{}",
        s.entries,
        s.bytes,
        s.hits,
        s.misses,
        s.evictions,
        json_f64(s.hit_ratio()),
    )
}

fn synthetic_status(id: u64, label: &str, status: &str) -> String {
    format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"id\":{id},\"label\":\"{}\",\"status\":\"{status}\"}}",
        json_escape(label)
    )
}

/// The terminal row for a job cancelled while it had no reachable
/// placement: same outer shape as a worker's own cancelled document,
/// so pollers terminate and listing reports `kind:"cancelled"`.
fn synthetic_cancelled(id: u64, label: &str) -> String {
    format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"id\":{id},\"status\":\"done\",\"kind\":\"cancelled\",\
         \"job\":{{\"label\":\"{}\",\"result\":{{\"kind\":\"cancelled\"}}}}}}",
        json_escape(label)
    )
}

/// The terminal row for a job the fleet could not finish: same outer
/// shape as a real done document, with a `failed` result carrying the
/// reason — so `wait`-style pollers terminate instead of spinning.
fn synthetic_failed(id: u64, label: &str, reason: &str) -> String {
    format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"id\":{id},\"status\":\"done\",\"kind\":\"failed\",\
         \"job\":{{\"label\":\"{}\",\"result\":{{\"kind\":\"failed\",\"error\":\"{}\"}}}}}}",
        json_escape(label),
        json_escape(reason)
    )
}

impl HttpApp for CoordService {
    fn route(
        &self,
        request: &Request,
        stop: &AtomicBool,
        metrics: &HttpMetrics,
        started: Instant,
    ) -> Result<Response, HttpError> {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => json_ok(self.healthz(started)),
            ("GET", "/metrics") => Ok(Response::Text {
                body: self.render_metrics(metrics),
            }),
            ("POST", "/v1/jobs") => Ok(admission_response(self.submit_manifest(&request.body))),
            ("POST", "/v1/decks") => Ok(admission_response(self.submit_deck(&request.body))),
            ("GET", "/v1/cache") => json_ok(self.cache_stats_doc()),
            ("DELETE", "/v1/cache") => json_ok(self.cache_flush_doc()),
            ("GET", "/v1/jobs") => match list_params(request) {
                Ok((state, cursor, limit)) => json_ok(self.list_json(state, cursor, limit)),
                Err(e) => Ok(wire_error_response(&e)),
            },
            ("POST", "/v1/shutdown") => {
                stop.store(true, Ordering::SeqCst);
                json_ok(format!(
                    "{{\"schema_version\":{SCHEMA_VERSION},\"shutting_down\":true}}"
                ))
            }
            (method, path) if path.starts_with("/v1/jobs/") => {
                let rest = &path["/v1/jobs/".len()..];
                if let Some(id) = rest.strip_suffix("/trace") {
                    if method != "GET" {
                        return Err(HttpError::MethodNotAllowed);
                    }
                    let id: u64 = id
                        .parse()
                        .map_err(|_| HttpError::BadRequest(format!("bad job id in {path:?}")))?;
                    let chrome = request.query_param("format") == Some("chrome");
                    return self.trace(id, chrome).ok_or(HttpError::NotFound);
                }
                let id: u64 = rest
                    .parse()
                    .map_err(|_| HttpError::BadRequest(format!("bad job id in {path:?}")))?;
                match method {
                    "GET" => self
                        .status_json(id)
                        .map_or(Err(HttpError::NotFound), json_ok),
                    "DELETE" => self.cancel(id).map_or(Err(HttpError::NotFound), json_ok),
                    _ => Err(HttpError::MethodNotAllowed),
                }
            }
            (
                _,
                "/healthz" | "/metrics" | "/v1/jobs" | "/v1/decks" | "/v1/cache" | "/v1/shutdown",
            ) => Err(HttpError::MethodNotAllowed),
            _ => Err(HttpError::NotFound),
        }
    }
}

/// The bound-but-not-yet-running coordinator.
pub struct Coordinator {
    listener: std::net::TcpListener,
    service: Arc<CoordService>,
    config: CoordinatorConfig,
    stop: Arc<AtomicBool>,
}

impl Coordinator {
    /// Binds the coordinator's listener and builds the fleet view.
    /// `builder` is used for *validation only* — the coordinator never
    /// runs a job itself.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an empty worker list; socket errors from
    /// binding `config.addr`.
    pub fn bind(
        config: CoordinatorConfig,
        builder: Arc<dyn JobBuilder>,
    ) -> std::io::Result<Coordinator> {
        if config.workers.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a coordinator needs at least one worker address",
            ));
        }
        fts_telemetry::set_enabled(true);
        let listener = bind_addr(&config.addr)?;
        let service = Arc::new(CoordService::new(&config, builder));
        Ok(Coordinator {
            listener,
            service,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Socket errors querying the listener.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can request shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle::new(Arc::clone(&self.stop))
    }

    /// Runs the coordinator until shutdown, then drains (and cascades to
    /// the fleet when configured) and returns the final report.
    ///
    /// # Errors
    ///
    /// Socket errors configuring the listener; per-connection accept
    /// errors are absorbed.
    pub fn run(self) -> std::io::Result<ShutdownReport> {
        let start = Instant::now();
        signal::install_sigint();
        self.listener.set_nonblocking(true)?;

        let rejected_conns = AtomicU64::new(0);
        let http_metrics = HttpMetrics::default();
        let conn_queue = new_conn_queue();

        let report = std::thread::scope(|scope| {
            // Health prober: wakes every probe_interval until shutdown.
            {
                let service = Arc::clone(&self.service);
                let stop = Arc::clone(&self.stop);
                // Floor the interval: zero would turn the prober into a
                // busy loop hammering every worker's /healthz.
                let interval = self.config.probe_interval.max(Duration::from_millis(1));
                scope.spawn(move || {
                    while !stop.load(Ordering::SeqCst) && !signal::sigint_received() {
                        service.probe();
                        let mut slept = Duration::ZERO;
                        while slept < interval && !stop.load(Ordering::SeqCst) {
                            let step = Duration::from_millis(10).min(interval - slept);
                            std::thread::sleep(step);
                            slept += step;
                        }
                    }
                });
            }
            spawn_conn_workers(
                scope,
                self.config.conn_workers,
                &conn_queue,
                self.service.as_ref(),
                &self.stop,
                &self.config.limits,
                &http_metrics,
                start,
            );

            accept_loop(
                &self.listener,
                &self.stop,
                &conn_queue,
                self.config.conn_backlog,
                &self.config.limits,
                &rejected_conns,
            );

            // Drain ordering: close the conn queue (queued connections
            // still get answers), flip stop (prober exits), empty the
            // coordinator, then cascade to the fleet.
            close_conn_queue(&conn_queue);
            self.stop.store(true, Ordering::SeqCst);
            self.service.drain(self.config.cascade);

            let g = self.service.gauges();
            ShutdownReport {
                jobs_completed: g.completed,
                submissions_rejected: g.rejected,
                connections_rejected: rejected_conns.load(Ordering::Relaxed),
                uptime_s: start.elapsed().as_secs_f64(),
                telemetry: fts_telemetry::snapshot().render_tree(),
            }
        });
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrite_id_touches_only_the_first_document_id() {
        let body = "{\"schema_version\":1,\"id\":3,\"status\":\"done\",\"kind\":\"op\",\
                    \"job\":{\"label\":\"x\",\"result\":{\"out_v\":1.0,\"id_like\":\"\\\"id\\\":3\"}}}";
        let out = rewrite_id(body, 3, 41);
        assert!(out.starts_with("{\"schema_version\":1,\"id\":41,"), "{out}");
        // The embedded result bytes are untouched.
        assert!(out.contains("\"result\":{\"out_v\":1.0,"), "{out}");
        // A body without the remote id passes through unchanged.
        assert_eq!(rewrite_id("{\"x\":1}", 3, 41), "{\"x\":1}");
    }

    #[test]
    fn synthetic_failed_is_a_terminal_done_document() {
        let body = synthetic_failed(7, "lat\"tice", "worker gone");
        let doc = Json::parse(&body).expect("synthetic row parses");
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("failed"));
        let result = doc.get("job").and_then(|j| j.get("result")).unwrap();
        assert_eq!(result.get("kind").and_then(Json::as_str), Some("failed"));
        assert!(result
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("worker gone"));
    }

    #[test]
    fn empty_worker_list_refuses_to_bind() {
        struct Never;
        impl JobBuilder for Never {
            fn build(
                &self,
                _spec: &crate::wire::JobSpec,
                index: usize,
            ) -> Result<crate::service::BuiltJob, WireError> {
                Err(WireError::job("unknown_function", index, "never"))
            }
        }
        let cfg = CoordinatorConfig {
            addr: "127.0.0.1:0".into(),
            ..CoordinatorConfig::default()
        };
        let Err(err) = Coordinator::bind(cfg, Arc::new(Never)) else {
            panic!("bind must refuse an empty worker list");
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
