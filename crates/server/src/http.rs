//! Minimal HTTP/1.1 on std [`TcpStream`]: bounded request parsing and a
//! canonical response writer.
//!
//! The server speaks exactly the subset it needs — one request per
//! connection, `Connection: close`, explicit `Content-Length` bodies —
//! which keeps the parser small enough to reason about byte-by-byte.
//! Every input dimension is bounded *before* allocation: the request head
//! (request line + headers) is read into a fixed budget, the header count
//! is capped, and bodies are admitted only up to the configured limit, so
//! a hostile peer cannot make the server buffer unbounded data. Time is
//! bounded too: besides the per-read timeout, an overall per-request
//! wall-clock deadline caps how long a slow-loris client can occupy a
//! connection worker. Parse and I/O failures map onto precise status
//! codes through [`HttpError`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::wire::WireError;

/// Size and time bounds applied to every connection.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes for the request head (request line + all headers).
    pub max_head_bytes: usize,
    /// Maximum bytes for the request line alone.
    pub max_request_line: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum request body bytes.
    pub max_body_bytes: usize,
    /// Per-`read(2)` timeout. This alone is not a liveness bound — it
    /// resets on every byte received — which is why
    /// [`request_deadline`](HttpLimits::request_deadline) also exists.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Wall-clock budget for reading one complete request (head + body).
    /// A slow-loris client dripping one byte per `read_timeout` would
    /// otherwise hold a connection worker for hours; the deadline caps a
    /// request read at roughly `request_deadline + read_timeout`.
    pub request_deadline: Duration,
}

impl Default for HttpLimits {
    fn default() -> HttpLimits {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_request_line: 8 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(15),
        }
    }
}

/// A parsed request: method, path, optional query string, and body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Request target with any query string removed, e.g. `/v1/jobs/7`.
    pub path: String,
    /// The raw query string after `?`, without the `?` itself (empty when
    /// the target has none), e.g. `format=chrome`.
    pub query: String,
    /// Decoded request body (empty without `Content-Length`).
    pub body: String,
}

impl Request {
    /// The value of query parameter `name`, if present. Parameters split
    /// on `&` and `=`; no percent-decoding (the API's parameter values
    /// are plain tokens like `chrome`). A bare `name` (no `=`) reads as
    /// an empty value.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// A request-handling failure, carrying the status line it maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or body (400).
    BadRequest(String),
    /// Unknown route (404).
    NotFound,
    /// Known route, wrong method (405).
    MethodNotAllowed,
    /// Read timed out — per-read or overall request deadline — before a
    /// full request arrived (408).
    Timeout,
    /// Body exceeds the configured limit (413).
    PayloadTooLarge,
    /// Request head exceeds the configured limit (431).
    HeadersTooLarge,
    /// The connection failed mid-request (no response possible).
    ConnectionLost(String),
}

impl HttpError {
    /// The `(status, reason)` pair this error renders as.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::NotFound => (404, "Not Found"),
            HttpError::MethodNotAllowed => (405, "Method Not Allowed"),
            HttpError::Timeout => (408, "Request Timeout"),
            HttpError::PayloadTooLarge => (413, "Payload Too Large"),
            HttpError::HeadersTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::ConnectionLost(_) => (499, "Client Closed Request"),
        }
    }

    /// The structured JSON error body for this failure — the same
    /// [`WireError`] envelope every other endpoint speaks, so transport
    /// failures and validation failures decode identically.
    pub fn body(&self) -> String {
        let (code, msg): (&'static str, String) = match self {
            HttpError::BadRequest(m) => ("bad_request", m.clone()),
            HttpError::NotFound => ("not_found", "no such resource".into()),
            HttpError::MethodNotAllowed => ("method_not_allowed", "method not allowed".into()),
            HttpError::Timeout => ("timeout", "request read timed out".into()),
            HttpError::PayloadTooLarge => ("payload_too_large", "request body too large".into()),
            HttpError::HeadersTooLarge => ("headers_too_large", "request head too large".into()),
            HttpError::ConnectionLost(m) => ("connection_lost", m.clone()),
        };
        WireError::manifest(code, msg).to_json()
    }
}

fn io_error(e: &std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::ConnectionLost(e.to_string()),
    }
}

/// Reads and parses one request from `stream` under `limits`.
///
/// # Errors
///
/// A mapped [`HttpError`] on malformed, oversized, or timed-out input.
pub fn read_request(stream: &mut TcpStream, limits: &HttpLimits) -> Result<Request, HttpError> {
    let start = Instant::now();
    stream
        .set_read_timeout(Some(limits.read_timeout))
        .map_err(|e| io_error(&e))?;
    stream
        .set_write_timeout(Some(limits.write_timeout))
        .map_err(|e| io_error(&e))?;

    // Read the head one unbuffered byte at a time, stopping at CRLFCRLF.
    // Single-byte reads cannot over-run into the body (there is no
    // user-space buffer to hand back), and the head is small and bounded,
    // so the per-byte syscall cost is acceptable here. The wall-clock
    // deadline is checked every iteration: the per-read timeout resets on
    // each byte, so it alone cannot stop a slow-loris drip-feed.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        if start.elapsed() >= limits.request_deadline {
            return Err(HttpError::Timeout);
        }
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(HttpError::ConnectionLost(
                    "connection closed before request head completed".into(),
                ))
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(io_error(&e)),
        }
        if head.len() > limits.max_head_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        // Tolerate bare-LF clients for the head terminator.
        if head.ends_with(b"\n\n") {
            break;
        }
    }

    let head = String::from_utf8(head)
        .map_err(|_| HttpError::BadRequest("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > limits.max_request_line {
        return Err(HttpError::HeadersTooLarge);
    }
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let mut content_length: Option<usize> = None;
    let mut header_count = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        header_count += 1;
        if header_count > limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            // A present-but-unparseable length is a malformed header
            // (RFC 9110 → 400; 411 would mean the header is absent).
            content_length = Some(value.trim().parse::<usize>().map_err(|_| {
                HttpError::BadRequest(format!("unparseable Content-Length {:?}", value.trim()))
            })?);
        }
    }

    let body = match content_length {
        None | Some(0) => String::new(),
        Some(n) if n > limits.max_body_bytes => return Err(HttpError::PayloadTooLarge),
        Some(n) => {
            // Chunked reads with a deadline check between them: like the
            // head loop, a single `read_exact` would let a dripping
            // client reset the per-read timeout indefinitely.
            let mut buf = vec![0u8; n];
            let mut filled = 0usize;
            while filled < n {
                if start.elapsed() >= limits.request_deadline {
                    return Err(HttpError::Timeout);
                }
                match stream.read(&mut buf[filled..]) {
                    Ok(0) => {
                        return Err(HttpError::ConnectionLost(
                            "connection closed before request body completed".into(),
                        ))
                    }
                    Ok(m) => filled += m,
                    Err(e) => return Err(io_error(&e)),
                }
            }
            String::from_utf8(buf)
                .map_err(|_| HttpError::BadRequest("request body is not UTF-8".into()))?
        }
    };

    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        query: query.to_owned(),
        body,
    })
}

/// Serializes a response with `Connection: close` framing.
pub fn response_bytes(status: u16, reason: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Writes a JSON response (best-effort: the peer may already be gone).
pub fn write_json(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    let bytes = response_bytes(status, reason, "application/json", body);
    let _ = stream.write_all(&bytes);
    let _ = stream.flush();
}

/// Writes a plain-text response (used by `/metrics`).
pub fn write_text(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    let bytes = response_bytes(status, reason, "text/plain; charset=utf-8", body);
    let _ = stream.write_all(&bytes);
    let _ = stream.flush();
}

/// Writes the mapped error response for `err` (skipped when the
/// connection is already lost).
pub fn write_error(stream: &mut TcpStream, err: &HttpError) {
    if matches!(err, HttpError::ConnectionLost(_)) {
        return;
    }
    let (status, reason) = err.status();
    write_json(stream, status, reason, &err.body());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::SCHEMA_VERSION;

    #[test]
    fn error_status_mapping() {
        assert_eq!(HttpError::BadRequest(String::new()).status().0, 400);
        assert_eq!(HttpError::NotFound.status().0, 404);
        assert_eq!(HttpError::MethodNotAllowed.status().0, 405);
        assert_eq!(HttpError::Timeout.status().0, 408);
        assert_eq!(HttpError::PayloadTooLarge.status().0, 413);
        assert_eq!(HttpError::HeadersTooLarge.status().0, 431);
    }

    #[test]
    fn error_bodies_are_structured() {
        let b = HttpError::PayloadTooLarge.body();
        assert!(b.contains(&format!("\"schema_version\":{SCHEMA_VERSION}")));
        assert!(b.contains("\"code\":\"payload_too_large\""));
        let b = HttpError::BadRequest("quote \" here".into()).body();
        assert!(b.contains("quote \\\" here"));
    }

    #[test]
    fn query_params_split_without_decoding() {
        let r = Request {
            method: "GET".into(),
            path: "/v1/jobs/7/trace".into(),
            query: "format=chrome&bare".into(),
            body: String::new(),
        };
        assert_eq!(r.query_param("format"), Some("chrome"));
        assert_eq!(r.query_param("bare"), Some(""));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn response_framing_counts_bytes() {
        let bytes = response_bytes(200, "OK", "application/json", "{\"a\":1}");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));
    }
}
