//! SIGINT (ctrl-c) wiring for graceful shutdown.
//!
//! The workspace takes no third-party dependencies, and std exposes no
//! signal API — so on Unix this module declares libc's `signal(2)` (the C
//! runtime is already linked into every Rust binary) and installs a
//! handler that does the only async-signal-safe thing worth doing: set an
//! [`AtomicBool`]. The server's accept loop polls [`sigint_received`]
//! between accepts and begins its drain when the flag flips. On
//! non-Unix targets installation is a no-op and shutdown is reachable via
//! the `POST /v1/shutdown` endpoint or a [`ServerHandle`](crate::ServerHandle).

use std::sync::atomic::{AtomicBool, Ordering};

static SIGINT: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SIGINT;
    use std::sync::atomic::Ordering;

    /// `SIGINT` on every Unix the workspace targets.
    const SIGINT_NUM: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // A relaxed-or-stronger atomic store is async-signal-safe; the
        // accept loop picks the flag up within one poll interval.
        SIGINT.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT_NUM, on_sigint);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT handler (idempotent; no-op off Unix).
pub fn install_sigint() {
    imp::install();
}

/// True once SIGINT has been delivered since [`install_sigint`].
pub fn sigint_received() -> bool {
    SIGINT.load(Ordering::SeqCst)
}
