//! The versioned wire schema shared by `fts batch` and `fts serve`.
//!
//! One module owns everything that crosses a process boundary: the
//! hand-rolled JSON reader/writer, the batch **manifest** (job
//! descriptions), and the **report** rendering (per-job result objects).
//! The CLI parses manifest files and the HTTP server parses request
//! bodies through the *same* functions, so the two surfaces cannot
//! drift; every document carries [`SCHEMA_VERSION`].
//!
//! A manifest names the jobs to run:
//!
//! ```json
//! {
//!   "threads": 2,
//!   "jobs": [
//!     { "function": "xor3", "analysis": "op", "input": 5 },
//!     { "function": "maj3", "analysis": "transient",
//!       "phase_ns": 4.0, "dt_ns": 0.1, "max_samples": 512,
//!       "deadline_ms": 60000, "retry": "ladder", "label": "maj3-walk" },
//!     { "deck": "v1 in 0 dc 1\nr1 in out 1k\nr2 out 0 1k\n.op\n" }
//!   ]
//! }
//! ```
//!
//! A job sources its circuit either from a named `"function"` (synthesized
//! into its §V bench circuit, with the analysis described by the manifest
//! members above) or from an inline SPICE `"deck"` (lowered through
//! `fts-netlist`; the deck's own analysis card decides what runs, and
//! exactly one is required so the job maps onto one report row).
//!
//! `"op"` solves the DC operating point for a packed `input` assignment;
//! `"transient"` drives the full 2ⁿ-combination input walk (one
//! `phase_ns` phase per combination) and records the output waveform
//! through the engine's decimating sink. `max_samples` bounds the
//! retained transient samples (the sink's decimation budget) and
//! `"waveform": true` asks for the decimated waveform arrays in the
//! result object; both are validated at parse time and surface as
//! structured [`WireError`]s (`400` over HTTP, a CLI error for `fts
//! batch`).
//!
//! The parser below is deliberately minimal — the toolkit takes no
//! third-party dependencies, and manifests, reports, and HTTP bodies are
//! the only JSON this workspace reads.

use std::fmt;
use std::fmt::Write as _;

use fts_engine::{CacheKey, CacheMode, JobStats, SimOutcome, DEFAULT_MAX_SAMPLES};
use fts_spice::NodeId;
use fts_telemetry::trace::TraceSnapshot;

/// Version of the manifest/report wire schema. Incremented only for
/// incompatible changes; both the CLI report and every HTTP response
/// carry it as `"schema_version"`.
///
/// v2 adds the cache surface: submissions accept a per-job `"cache"`
/// policy and served rows carry a `"cache": {key, hit}` member. v1
/// request bodies remain accepted — the new member simply defaults —
/// so the bump advertises capability, not a break (DESIGN.md §9a).
pub const SCHEMA_VERSION: u32 = 2;

/// Largest accepted `max_samples` — the decimating sink allocates one row
/// per retained sample, so the cap bounds per-job memory.
pub const MAX_SAMPLES_LIMIT: usize = 1 << 20;

/// Upper bound on the manifest's `ensemble_width`: lane-batched solves
/// buffer `unknowns * width` doubles per working vector, and widths past
/// the hardware vector length only add memory pressure.
pub const MAX_ENSEMBLE_WIDTH: usize = 64;

/// Maximum array/object nesting depth accepted by [`Json::parse`]. The
/// parser is recursive-descent and reads network input, so recursion must
/// be bounded well below the worker thread's stack; manifests are at most
/// three levels deep in practice.
pub const MAX_JSON_DEPTH: usize = 128;

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are `f64` (manifest quantities are small
/// counts and physical values, well inside exact-integer range).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing content is an error).
    ///
    /// # Errors
    ///
    /// A human-readable message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders this value back to JSON text, compactly (no whitespace).
    ///
    /// Non-finite numbers render as `null` — JSON has no NaN/Infinity
    /// literals — so `parse(render(v))` is the identity up to that one
    /// normalization (the round-trip property the wire proptests hold
    /// this module to).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(x) => out.push_str(&json_f64(*x)),
            Json::String(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (k, v) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (k, (key, v)) in members.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(key));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            // Containers recurse, and the input may be hostile network
            // bytes: cap the depth so pathological nesting is a parse
            // error, not a worker-stack overflow.
            Some(b @ (b'{' | b'[')) => {
                self.depth += 1;
                if self.depth > MAX_JSON_DEPTH {
                    return Err(format!(
                        "nesting deeper than {MAX_JSON_DEPTH} levels at byte {}",
                        self.pos
                    ));
                }
                let v = if b == b'{' {
                    self.object()
                } else {
                    self.array()
                }?;
                self.depth -= 1;
                Ok(v)
            }
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Validation runs through the workspace's one fuzz-hardened number
        // path (shared with the SPICE deck parser): strict JSON grammar,
        // finite values only — `1e999` is a parse error here, not an
        // Infinity smuggled into a simulation.
        fts_netlist::number::parse_json_f64(text)
            .map(Json::Number)
            .ok_or_else(|| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for manifests.
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged; find the
                    // char boundary from the source string.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one `f64` as a JSON token. JSON has no NaN/Infinity literals,
/// so non-finite values (including the `-inf` peak of an empty waveform)
/// render as `null` — the document must stay parseable by [`Json::parse`]
/// and by clients.
pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Renders an `f64` array as a JSON array literal (non-finite → `null`).
fn json_f64_array(values: &[f64]) -> String {
    let mut out = String::with_capacity(values.len() * 8 + 2);
    out.push('[');
    for (k, v) in values.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", json_f64(*v));
    }
    out.push(']');
    out
}

// ---------------------------------------------------------------------------
// Structured errors
// ---------------------------------------------------------------------------

/// A structured manifest/validation error: machine-readable `code`, a
/// human message, and (when the error is about one job) the job index.
///
/// The HTTP server renders these as `400` JSON bodies; `fts batch` prints
/// the [`Display`](fmt::Display) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable machine-readable error code (e.g. `bad_json`,
    /// `invalid_max_samples`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Index of the offending job within the manifest, when applicable.
    pub job: Option<usize>,
    /// 1-based source line, for errors that point into a SPICE deck.
    pub line: Option<u32>,
    /// 1-based source column, for errors that point into a SPICE deck.
    pub col: Option<u32>,
}

impl WireError {
    /// A manifest-level error (no job index).
    pub fn manifest(code: &'static str, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
            job: None,
            line: None,
            col: None,
        }
    }

    /// An error attributed to one job of the manifest.
    pub fn job(code: &'static str, job: usize, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
            job: Some(job),
            line: None,
            col: None,
        }
    }

    /// Wraps a deck parse/elaboration error, preserving its stable code
    /// and 1-based line/column (`job` attributes it within a manifest;
    /// `POST /v1/decks` passes `None`).
    pub fn from_deck(e: &fts_netlist::DeckError, job: Option<usize>) -> WireError {
        WireError {
            code: e.code,
            message: e.message.clone(),
            job,
            line: Some(e.line),
            col: Some(e.col),
        }
    }

    /// The structured JSON body: `{"schema_version":1,"error":{...}}`.
    /// `job`, `line`, and `col` members appear only when set, so errors
    /// that never touched a deck render exactly as they always have.
    pub fn to_json(&self) -> String {
        let mut detail = String::new();
        if let Some(k) = self.job {
            let _ = write!(detail, ",\"job\":{k}");
        }
        if let (Some(l), Some(c)) = (self.line, self.col) {
            let _ = write!(detail, ",\"line\":{l},\"col\":{c}");
        }
        format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"error\":{{\"code\":\"{}\",\"message\":\"{}\"{detail}}}}}",
            json_escape(self.code),
            json_escape(&self.message),
        )
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(k) = self.job {
            write!(f, "job {k}: ")?;
        }
        if let (Some(l), Some(c)) = (self.line, self.col) {
            write!(f, "line {l}:{c}: ")?;
        }
        write!(f, "{} ({})", self.message, self.code)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One job description from the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Where the circuit (and its analysis) comes from.
    pub source: JobSource,
    /// Per-job wall-clock budget in milliseconds.
    pub deadline_ms: Option<f64>,
    /// `"full"` (single homotopy-assisted attempt, default) or `"ladder"`
    /// (cheap-to-expensive retry ladder).
    pub ladder: bool,
    /// Report label; defaults to `<function>-<index>` / `deck-<index>`.
    pub label: Option<String>,
    /// Include the decimated output waveform arrays in the result object
    /// (transient jobs only).
    pub waveform: bool,
    /// Result-cache policy: `"default"` (hit/store/warm-start),
    /// `"bypass"` (the exact legacy cold path, cache untouched), or
    /// `"refresh"` (recompute cold, overwrite the entry). Absent in v1
    /// bodies, which parse as `default`.
    pub cache: CacheMode,
}

/// The circuit half of a [`JobSpec`]: what gets simulated.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSource {
    /// A named Boolean function (`xor3`, `maj3`, … — same set as `fts
    /// synth`), synthesized into its §V bench circuit.
    Function {
        /// The function name.
        name: String,
        /// Analysis to run on the bench circuit.
        analysis: AnalysisSpec,
    },
    /// An inline SPICE deck (the `"deck"` manifest member), lowered
    /// through `fts-netlist`. The deck's own analysis card decides what
    /// runs; exactly one is required so the job maps onto one report row.
    Deck {
        /// The deck text.
        text: String,
        /// Retained-sample budget for transient decks.
        max_samples: usize,
    },
}

impl JobSpec {
    /// The report label for this spec at manifest index `k`.
    pub fn label_or_default(&self, k: usize) -> String {
        self.label.clone().unwrap_or_else(|| match &self.source {
            JobSource::Function { name, .. } => format!("{name}-{k}"),
            JobSource::Deck { .. } => format!("deck-{k}"),
        })
    }

    /// Renders this spec back to its manifest-object form. The inverse of
    /// [`BatchManifest::parse`]'s per-job reader up to defaults: optional
    /// members are emitted only when they differ from the default, and
    /// `parse(to_json(spec)) == spec` (the round-trip test pins it). The
    /// coordinator forwards jobs to workers through this renderer, so a
    /// routed job is *provably* the same spec the client submitted.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        match &self.source {
            JobSource::Function { name, analysis } => {
                let _ = write!(out, "\"function\":\"{}\"", json_escape(name));
                match analysis {
                    AnalysisSpec::Op { input } => {
                        let _ = write!(out, ",\"analysis\":\"op\",\"input\":{input}");
                    }
                    AnalysisSpec::Transient {
                        phase_ns,
                        dt_ns,
                        max_samples,
                    } => {
                        let _ = write!(
                            out,
                            ",\"analysis\":\"transient\",\"phase_ns\":{},\"dt_ns\":{},\"max_samples\":{max_samples}",
                            json_f64(*phase_ns),
                            json_f64(*dt_ns),
                        );
                    }
                }
            }
            JobSource::Deck { text, max_samples } => {
                let _ = write!(
                    out,
                    "\"deck\":\"{}\",\"max_samples\":{max_samples}",
                    json_escape(text)
                );
            }
        }
        if let Some(ms) = self.deadline_ms {
            let _ = write!(out, ",\"deadline_ms\":{}", json_f64(ms));
        }
        if self.ladder {
            out.push_str(",\"retry\":\"ladder\"");
        }
        if let Some(label) = &self.label {
            let _ = write!(out, ",\"label\":\"{}\"", json_escape(label));
        }
        if self.waveform {
            out.push_str(",\"waveform\":true");
        }
        if self.cache != CacheMode::Default {
            let _ = write!(out, ",\"cache\":\"{}\"", self.cache.as_str());
        }
        out.push('}');
        out
    }
}

/// Renders a one-job manifest for `spec` — what the coordinator forwards
/// to a worker. `ensemble_width` is passed through when the submitting
/// manifest set it (0 = absent, the worker's engine default).
pub fn single_job_manifest(spec: &JobSpec, ensemble_width: usize) -> String {
    let width = if ensemble_width > 0 {
        format!("\"ensemble_width\":{ensemble_width},")
    } else {
        String::new()
    };
    format!("{{{width}\"jobs\":[{}]}}", spec.to_json())
}

/// The analysis half of a [`JobSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisSpec {
    /// DC operating point for a packed input assignment.
    Op {
        /// Packed input bits (bit `v` drives variable `v`).
        input: u32,
    },
    /// Transient over the full 2ⁿ input walk.
    Transient {
        /// Seconds per input combination, in nanoseconds.
        phase_ns: f64,
        /// Fixed timestep, in nanoseconds.
        dt_ns: f64,
        /// Retained-sample budget for the decimating waveform sink.
        max_samples: usize,
    },
}

/// A parsed batch manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchManifest {
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Lockstep lanes per solver ensemble for DC batch evaluation
    /// (0 = engine default; 1 disables the ensemble path). Validated to
    /// [`MAX_ENSEMBLE_WIDTH`] at parse time.
    pub ensemble_width: usize,
    /// The jobs, in submission order.
    pub jobs: Vec<JobSpec>,
}

/// Reads an optional positive-integer member, validating range.
fn parse_max_samples(j: &Json, k: usize) -> Result<usize, WireError> {
    let Some(v) = j.get("max_samples") else {
        return Ok(DEFAULT_MAX_SAMPLES);
    };
    let Some(x) = v.as_f64() else {
        return Err(WireError::job(
            "invalid_max_samples",
            k,
            "\"max_samples\" must be a number",
        ));
    };
    if x.fract() != 0.0 || !(2.0..=MAX_SAMPLES_LIMIT as f64).contains(&x) {
        return Err(WireError::job(
            "invalid_max_samples",
            k,
            format!("\"max_samples\" must be an integer in [2, {MAX_SAMPLES_LIMIT}], got {x}"),
        ));
    }
    Ok(x as usize)
}

impl BatchManifest {
    /// Parses and validates a manifest document.
    ///
    /// # Errors
    ///
    /// Structured [`WireError`]s: malformed JSON (`bad_json`), missing
    /// members, unknown `analysis`/`retry` kinds, out-of-range
    /// `max_samples` or timing parameters.
    pub fn parse(text: &str) -> Result<BatchManifest, WireError> {
        let doc = Json::parse(text).map_err(|e| WireError::manifest("bad_json", e))?;
        let threads = doc.get("threads").and_then(Json::as_f64).unwrap_or(0.0) as usize;
        let ensemble_width = match doc.get("ensemble_width") {
            None => 0,
            Some(v) => {
                let x = v.as_f64().ok_or_else(|| {
                    WireError::manifest(
                        "invalid_ensemble_width",
                        "\"ensemble_width\" must be a number",
                    )
                })?;
                if x.fract() != 0.0 || !(1.0..=MAX_ENSEMBLE_WIDTH as f64).contains(&x) {
                    return Err(WireError::manifest(
                        "invalid_ensemble_width",
                        format!(
                            "\"ensemble_width\" must be an integer in [1, {MAX_ENSEMBLE_WIDTH}], got {x}"
                        ),
                    ));
                }
                x as usize
            }
        };
        let jobs_json = doc.get("jobs").and_then(Json::as_array).ok_or_else(|| {
            WireError::manifest("bad_manifest", "manifest needs a \"jobs\" array")
        })?;
        let mut jobs = Vec::with_capacity(jobs_json.len());
        for (k, j) in jobs_json.iter().enumerate() {
            let function = j.get("function").and_then(Json::as_str);
            let deck = j.get("deck").and_then(Json::as_str);
            let source = match (function, deck) {
                (Some(_), Some(_)) => {
                    return Err(WireError::job(
                        "bad_manifest",
                        k,
                        "a job takes \"function\" or \"deck\", not both",
                    ))
                }
                (None, None) => {
                    return Err(WireError::job(
                        "bad_manifest",
                        k,
                        "missing \"function\" or \"deck\"",
                    ))
                }
                (None, Some(text)) => {
                    // The deck's own analysis card decides what runs, so
                    // the function-job analysis members are meaningless
                    // here — reject them rather than silently ignore.
                    for key in ["analysis", "input", "phase_ns", "dt_ns"] {
                        if j.get(key).is_some() {
                            return Err(WireError::job(
                                "bad_manifest",
                                k,
                                format!("\"{key}\" is not valid on a deck job (the deck's analysis card decides)"),
                            ));
                        }
                    }
                    JobSource::Deck {
                        text: text.to_owned(),
                        max_samples: parse_max_samples(j, k)?,
                    }
                }
                (Some(name), None) => {
                    let analysis = match j.get("analysis").and_then(Json::as_str).unwrap_or("op") {
                        "op" => AnalysisSpec::Op {
                            input: j.get("input").and_then(Json::as_f64).unwrap_or(0.0) as u32,
                        },
                        "transient" => {
                            let phase_ns = j.get("phase_ns").and_then(Json::as_f64).unwrap_or(6.0);
                            let dt_ns = j.get("dt_ns").and_then(Json::as_f64).unwrap_or(0.1);
                            // Rejects NaN and infinity alongside non-positive values.
                            let good = |x: f64| x.is_finite() && x > 0.0;
                            if !good(phase_ns) || !good(dt_ns) || dt_ns > phase_ns {
                                return Err(WireError::job(
                                    "invalid_timing",
                                    k,
                                    format!("need 0 < dt_ns <= phase_ns, got dt_ns={dt_ns}, phase_ns={phase_ns}"),
                                ));
                            }
                            AnalysisSpec::Transient {
                                phase_ns,
                                dt_ns,
                                max_samples: parse_max_samples(j, k)?,
                            }
                        }
                        other => {
                            return Err(WireError::job(
                                "unknown_analysis",
                                k,
                                format!("unknown analysis {other:?}"),
                            ))
                        }
                    };
                    JobSource::Function {
                        name: name.to_owned(),
                        analysis,
                    }
                }
            };
            let ladder = match j.get("retry").and_then(Json::as_str).unwrap_or("full") {
                "full" => false,
                "ladder" => true,
                other => {
                    return Err(WireError::job(
                        "unknown_retry",
                        k,
                        format!("unknown retry policy {other:?}"),
                    ))
                }
            };
            let deadline_ms = j.get("deadline_ms").and_then(Json::as_f64);
            if let Some(ms) = deadline_ms {
                if !(ms.is_finite() && ms > 0.0) {
                    return Err(WireError::job(
                        "invalid_deadline",
                        k,
                        format!("\"deadline_ms\" must be positive, got {ms}"),
                    ));
                }
            }
            let cache = match j.get("cache") {
                None => CacheMode::Default,
                Some(v) => {
                    let s = v.as_str().ok_or_else(|| {
                        WireError::job("unknown_cache_mode", k, "\"cache\" must be a string")
                    })?;
                    CacheMode::parse(s).ok_or_else(|| {
                        WireError::job(
                            "unknown_cache_mode",
                            k,
                            format!(
                                "unknown cache mode {s:?} (want \"default\", \"bypass\", or \"refresh\")"
                            ),
                        )
                    })?
                }
            };
            jobs.push(JobSpec {
                source,
                deadline_ms,
                ladder,
                label: j.get("label").and_then(Json::as_str).map(str::to_owned),
                waveform: j.get("waveform").and_then(Json::as_bool).unwrap_or(false),
                cache,
            });
        }
        Ok(BatchManifest {
            threads,
            ensemble_width,
            jobs,
        })
    }

    /// Renders the manifest back to its document form, the inverse of
    /// [`parse`](BatchManifest::parse) up to defaults (absent members are
    /// emitted only when set): `parse(to_json(m)) == m`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        if self.threads != 0 {
            let _ = write!(out, "\"threads\":{},", self.threads);
        }
        if self.ensemble_width != 0 {
            let _ = write!(out, "\"ensemble_width\":{},", self.ensemble_width);
        }
        out.push_str("\"jobs\":[");
        for (k, spec) in self.jobs.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&spec.to_json());
        }
        out.push_str("]}");
        out
    }
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

/// Renders the deterministic result object for one outcome — shared
/// byte-for-byte between the `fts batch` report rows and the server's
/// `GET /v1/jobs/{id}` responses, which is what makes "server response
/// equals direct engine submission" checkable at the byte level.
///
/// Timing never appears here (it lives in the per-job stats), so the
/// object is identical across runs, thread counts, and transports.
pub fn outcome_json(outcome: &SimOutcome, out: NodeId, waveform: bool) -> String {
    match outcome {
        SimOutcome::Op(op) => {
            format!(
                "{{\"kind\":\"op\",\"out_v\":{}}}",
                json_f64(op.voltage(out))
            )
        }
        SimOutcome::Sweep(points) => {
            let vs: Vec<f64> = points.iter().map(|p| p.voltage(out)).collect();
            format!(
                "{{\"kind\":\"sweep\",\"points\":{},\"out_v\":{}}}",
                points.len(),
                json_f64_array(&vs)
            )
        }
        SimOutcome::Transient(w) => {
            let v = w.voltage(out).unwrap_or_default();
            let peak = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let detail = if waveform {
                format!(
                    ",\"time\":{},\"out_v\":{}",
                    json_f64_array(w.time()),
                    json_f64_array(&v)
                )
            } else {
                String::new()
            };
            format!(
                "{{\"kind\":\"transient\",\"samples\":{},\"total_samples\":{},\"stride\":{},\"out_peak_v\":{}{detail}}}",
                w.len(),
                w.total_samples(),
                w.stride(),
                json_f64(peak),
            )
        }
        SimOutcome::Ac(ac) => {
            format!("{{\"kind\":\"ac\",\"points\":{}}}", ac.freqs.len())
        }
        SimOutcome::Failed { error, attempts } => format!(
            "{{\"kind\":\"failed\",\"error\":\"{}\",\"attempts\":{attempts}}}",
            json_escape(&error.to_string())
        ),
        SimOutcome::Cancelled => "{\"kind\":\"cancelled\"}".to_owned(),
        SimOutcome::DeadlineExceeded { attempts } => {
            format!("{{\"kind\":\"deadline_exceeded\",\"attempts\":{attempts}}}")
        }
    }
}

/// Renders one report row: label and timing stats wrapped around the
/// deterministic [`outcome_json`] result object.
pub fn job_row_json(
    label: &str,
    outcome: &SimOutcome,
    stats: &JobStats,
    out: NodeId,
    waveform: bool,
) -> String {
    job_row_json_traced(label, outcome, stats, out, waveform, None)
}

/// [`job_row_json`] with an optional embedded flight-recorder journal:
/// `--trace` report rows carry a `"trace"` object
/// ([`trace_object_json`]) after the result.
pub fn job_row_json_traced(
    label: &str,
    outcome: &SimOutcome,
    stats: &JobStats,
    out: NodeId,
    waveform: bool,
    trace: Option<&TraceSnapshot>,
) -> String {
    let trace = trace.map_or(String::new(), |snap| {
        format!(",\"trace\":{}", trace_object_json(snap))
    });
    format!(
        "{{\"label\":\"{}\",\"kind\":\"{}\",\"wall_s\":{},\"attempts\":{},\"result\":{}{trace}}}",
        json_escape(label),
        outcome.kind(),
        stats.wall_s,
        stats.attempts,
        outcome_json(outcome, out, waveform),
    )
}

/// Renders the `,"cache":{"key":"cache_key/1:…","hit":…}` member the
/// server appends to each served row. It sits *after* the `"result"`
/// object (and any `"trace"`), so byte-level comparisons over the
/// deterministic result object — which is how hit/cold equivalence is
/// checked everywhere — are unaffected by cache metadata.
#[must_use]
pub fn cache_member_json(key: CacheKey, hit: bool) -> String {
    format!(",\"cache\":{{\"key\":\"{key}\",\"hit\":{hit}}}")
}

/// Renders the whole `fts batch` report document
/// (schema `fts-batch-report/1`).
pub fn batch_report_json(rows: &[String], succeeded: usize, threads: usize, wall_s: f64) -> String {
    format!(
        concat!(
            "{{\"schema\":\"fts-batch-report/1\",\"schema_version\":{},\"jobs\":{},",
            "\"succeeded\":{},\"threads\":{},\"wall_s\":{},\"outcomes\":[{}]}}"
        ),
        SCHEMA_VERSION,
        rows.len(),
        succeeded,
        threads,
        wall_s,
        rows.join(","),
    )
}

// ---------------------------------------------------------------------------
// Flight-recorder journals
// ---------------------------------------------------------------------------

/// Renders a flight-recorder snapshot's journal body — `"capacity"`,
/// `"dropped"`, and the `"events"` array — without the enclosing braces,
/// so callers can compose it into both the standalone trace document
/// ([`trace_journal_json`]) and an embedded report field.
pub fn trace_events_json(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(64 + snap.events.len() * 96);
    let _ = write!(
        out,
        "\"capacity\":{},\"dropped\":{},\"events\":[",
        snap.capacity, snap.dropped
    );
    for (k, ev) in snap.events.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"t_us\":{},\"attempt\":{},\"kind\":\"{}\",\"detail\":\"{}\",\"a\":{},\"b\":{}}}",
            json_f64(ev.t_us),
            ev.attempt,
            json_escape(ev.kind),
            json_escape(ev.detail),
            json_f64(ev.a),
            json_f64(ev.b),
        );
    }
    out.push(']');
    out
}

/// Renders the journal as an embeddable JSON object (the `"trace"` field
/// of `--trace` report rows).
pub fn trace_object_json(snap: &TraceSnapshot) -> String {
    format!("{{{}}}", trace_events_json(snap))
}

/// Renders the `GET /v1/jobs/{id}/trace` document (schema `fts-trace/1`):
/// the job's identity and status wrapped around the bounded event journal.
pub fn trace_journal_json(id: u64, label: &str, status: &str, snap: &TraceSnapshot) -> String {
    format!(
        concat!(
            "{{\"schema\":\"fts-trace/1\",\"schema_version\":{},\"id\":{},",
            "\"label\":\"{}\",\"status\":\"{}\",{}}}"
        ),
        SCHEMA_VERSION,
        id,
        json_escape(label),
        json_escape(status),
        trace_events_json(snap),
    )
}

/// Renders the journal in the Chrome trace-event format
/// (`?format=chrome`): one `ph:"X"` span per retry attempt bracketing its
/// events, plus one `ph:"i"` instant per recorded event, loadable in
/// `about:tracing` / Perfetto. Attempts map to Chrome thread lanes.
pub fn trace_chrome_json(id: u64, label: &str, snap: &TraceSnapshot) -> String {
    let name = if label.is_empty() {
        format!("job-{id}")
    } else {
        label.to_owned()
    };
    let mut out = String::with_capacity(128 + snap.events.len() * 128);
    let _ = write!(out, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    // One complete-event span per attempt, spanning its first..last event.
    let mut bounds: Vec<(u32, f64, f64)> = Vec::new();
    for ev in &snap.events {
        match bounds.last_mut() {
            Some((a, _, hi)) if *a == ev.attempt => *hi = ev.t_us.max(*hi),
            _ => bounds.push((ev.attempt, ev.t_us, ev.t_us)),
        }
    }
    for (a, lo, hi) in &bounds {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            concat!(
                "{{\"name\":\"{} attempt {}\",\"cat\":\"attempt\",\"ph\":\"X\",",
                "\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}"
            ),
            json_escape(&name),
            a,
            json_f64(*lo),
            json_f64((hi - lo).max(0.001)),
            a,
        );
    }
    for ev in &snap.events {
        if !first {
            out.push(',');
        }
        first = false;
        let ev_name = if ev.detail.is_empty() {
            ev.kind.to_owned()
        } else {
            format!("{}:{}", ev.kind, ev.detail)
        };
        let _ = write!(
            out,
            concat!(
                "{{\"name\":\"{}\",\"cat\":\"trace\",\"ph\":\"i\",\"ts\":{},",
                "\"pid\":1,\"tid\":{},\"s\":\"t\",\"args\":{{\"a\":{},\"b\":{}}}}}"
            ),
            json_escape(&ev_name),
            json_f64(ev.t_us),
            ev.attempt,
            json_f64(ev.a),
            json_f64(ev.b),
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        let doc =
            Json::parse(r#"{"a": 1.5, "b": [true, null, "x\n\"y\""], "c": {"d": -2e3}}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(1.5));
        let b = doc.get("b").and_then(Json::as_array).unwrap();
        assert_eq!(b[0], Json::Bool(true));
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[1], Json::Null);
        assert_eq!(b[2].as_str(), Some("x\n\"y\""));
        let d = doc.get("c").and_then(|c| c.get("d")).unwrap();
        assert_eq!(d.as_f64(), Some(-2000.0));
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Right at the cap parses; one past it is a structured error.
        let deep = |n: usize| format!("{}1{}", "[".repeat(n), "]".repeat(n));
        assert!(Json::parse(&deep(MAX_JSON_DEPTH)).is_ok());
        let e = Json::parse(&deep(MAX_JSON_DEPTH + 1)).unwrap_err();
        assert!(e.contains("nesting"), "{e}");
        // Hostile depths far past the cap fail the same way instead of
        // overflowing the stack (objects recurse through values too).
        assert!(Json::parse(&"[".repeat(200_000)).is_err());
        assert!(Json::parse(&r#"{"a":"#.repeat(200_000)).is_err());
        let e = BatchManifest::parse(&"[".repeat(50_000)).unwrap_err();
        assert_eq!(e.code, "bad_json");
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
        let arr = json_f64_array(&[1.0, f64::INFINITY, f64::NAN]);
        assert_eq!(arr, "[1,null,null]");
        // The guarded tokens parse back as valid JSON.
        assert!(Json::parse(&arr).is_ok());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} x", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn manifest_defaults_and_options() {
        let m = BatchManifest::parse(
            r#"{"threads": 3, "jobs": [
                {"function": "and2"},
                {"function": "xor3", "analysis": "transient", "phase_ns": 2.0,
                 "deadline_ms": 250, "retry": "ladder", "label": "walk",
                 "max_samples": 128, "waveform": true}
            ]}"#,
        )
        .unwrap();
        assert_eq!(m.threads, 3);
        assert_eq!(m.ensemble_width, 0, "absent means engine default");
        assert_eq!(m.jobs.len(), 2);
        match &m.jobs[0].source {
            JobSource::Function { name, analysis } => {
                assert_eq!(name, "and2");
                assert!(matches!(analysis, AnalysisSpec::Op { input: 0 }));
            }
            other => panic!("expected function source, got {other:?}"),
        }
        assert!(!m.jobs[0].ladder);
        assert!(!m.jobs[0].waveform);
        assert_eq!(m.jobs[0].label_or_default(0), "and2-0");
        match &m.jobs[1].source {
            JobSource::Function {
                analysis:
                    AnalysisSpec::Transient {
                        phase_ns,
                        dt_ns,
                        max_samples,
                    },
                ..
            } => {
                assert_eq!(*phase_ns, 2.0);
                assert_eq!(*dt_ns, 0.1);
                assert_eq!(*max_samples, 128);
            }
            other => panic!("expected transient, got {other:?}"),
        }
        assert!(m.jobs[1].ladder);
        assert!(m.jobs[1].waveform);
        assert_eq!(m.jobs[1].deadline_ms, Some(250.0));
        assert_eq!(m.jobs[1].label.as_deref(), Some("walk"));
    }

    #[test]
    fn manifest_ensemble_width_parses_and_validates() {
        let m =
            BatchManifest::parse(r#"{"ensemble_width": 16, "jobs": [{"function": "x"}]}"#).unwrap();
        assert_eq!(m.ensemble_width, 16);
        let m =
            BatchManifest::parse(r#"{"ensemble_width": 1, "jobs": [{"function": "x"}]}"#).unwrap();
        assert_eq!(
            m.ensemble_width, 1,
            "1 is valid: it disables the ensemble path"
        );
        for bad in [
            r#"{"ensemble_width": 0, "jobs": []}"#,
            r#"{"ensemble_width": 65, "jobs": []}"#,
            r#"{"ensemble_width": 7.5, "jobs": []}"#,
            r#"{"ensemble_width": "wide", "jobs": []}"#,
            r#"{"ensemble_width": -4, "jobs": []}"#,
        ] {
            let e = BatchManifest::parse(bad).unwrap_err();
            assert_eq!(e.code, "invalid_ensemble_width", "{bad}");
            assert_eq!(e.job, None, "manifest-level error, not a job error");
        }
    }

    #[test]
    fn manifest_rejects_unknown_kinds() {
        let e = BatchManifest::parse(r#"{"jobs": [{"function": "x", "analysis": "noise"}]}"#)
            .unwrap_err();
        assert_eq!(e.code, "unknown_analysis");
        assert_eq!(e.job, Some(0));
        let e = BatchManifest::parse(r#"{"jobs": [{"function": "x", "retry": "forever"}]}"#)
            .unwrap_err();
        assert_eq!(e.code, "unknown_retry");
        let e = BatchManifest::parse(r#"{"jobs": [{"function": "x", "cache": "always"}]}"#)
            .unwrap_err();
        assert_eq!(e.code, "unknown_cache_mode");
        assert_eq!(e.job, Some(0));
        let e = BatchManifest::parse(r#"{"jobs": [{"function": "x", "cache": 1}]}"#).unwrap_err();
        assert_eq!(e.code, "unknown_cache_mode");
        let e = BatchManifest::parse(r#"{"jobs": [{}]}"#).unwrap_err();
        assert_eq!(e.code, "bad_manifest");
    }

    #[test]
    fn manifest_validates_decimation_and_timing() {
        for (snippet, code) in [
            (r#""max_samples": 1"#, "invalid_max_samples"),
            (r#""max_samples": 2.5"#, "invalid_max_samples"),
            (r#""max_samples": 1e9"#, "invalid_max_samples"),
            (r#""max_samples": "lots""#, "invalid_max_samples"),
            (r#""dt_ns": -1"#, "invalid_timing"),
            (r#""dt_ns": 7.0, "phase_ns": 2.0"#, "invalid_timing"),
        ] {
            let text =
                format!(r#"{{"jobs": [{{"function": "x", "analysis": "transient", {snippet}}}]}}"#);
            let e = BatchManifest::parse(&text).unwrap_err();
            assert_eq!(e.code, code, "{snippet}");
            assert_eq!(e.job, Some(0), "{snippet}");
        }
        let e =
            BatchManifest::parse(r#"{"jobs": [{"function": "x", "deadline_ms": 0}]}"#).unwrap_err();
        assert_eq!(e.code, "invalid_deadline");
    }

    #[test]
    fn manifest_deck_jobs_parse_and_validate() {
        let m = BatchManifest::parse(
            r#"{"jobs": [{"deck": "v1 a 0 dc 1\n.op\n", "max_samples": 64, "label": "d"}]}"#,
        )
        .unwrap();
        match &m.jobs[0].source {
            JobSource::Deck { text, max_samples } => {
                assert!(text.starts_with("v1 a 0"), "{text:?}");
                assert_eq!(*max_samples, 64);
            }
            other => panic!("expected deck source, got {other:?}"),
        }
        assert_eq!(m.jobs[0].label_or_default(0), "d");
        let m = BatchManifest::parse(r#"{"jobs": [{"deck": "x"}]}"#).unwrap();
        assert_eq!(m.jobs[0].label_or_default(3), "deck-3");

        for (body, needle) in [
            (r#"{"function": "x", "deck": "y"}"#, "not both"),
            (r#"{"deck": "y", "analysis": "op"}"#, "analysis"),
            (r#"{"deck": "y", "input": 3}"#, "input"),
            (r#"{"deck": "y", "phase_ns": 1}"#, "phase_ns"),
            (r#"{"deck": "y", "dt_ns": 1}"#, "dt_ns"),
        ] {
            let e = BatchManifest::parse(&format!(r#"{{"jobs": [{body}]}}"#)).unwrap_err();
            assert_eq!(e.code, "bad_manifest", "{body}");
            assert!(e.message.contains(needle), "{body}: {e}");
        }
    }

    #[test]
    fn deck_errors_carry_line_and_column() {
        let deck_err = fts_netlist::parse_str("v1 in 0 dc 1\nr1 a b\n.op\n").unwrap_err();
        let e = WireError::from_deck(&deck_err, Some(2));
        assert_eq!(e.line, Some(2));
        let json = e.to_json();
        assert!(json.contains("\"job\":2"), "{json}");
        assert!(json.contains("\"line\":2"), "{json}");
        assert!(json.contains("\"col\":"), "{json}");
        assert!(Json::parse(&json).is_ok());
        assert!(e.to_string().contains("line 2:"), "{e}");
    }

    #[test]
    fn json_render_reparse_is_identity() {
        let text = r#"{"a":[1,true,null,"x\n"],"b":{"c":-0.0025},"d":""}"#;
        let doc = Json::parse(text).unwrap();
        assert_eq!(doc.render(), text);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        // Non-finite numbers normalize to null on render.
        assert_eq!(Json::Number(f64::NAN).render(), "null");
    }

    #[test]
    fn overflowing_number_literals_are_parse_errors() {
        // The shared number path refuses literals that overflow to
        // infinity and non-JSON forms the old lenient reader admitted.
        for bad in ["1e999", "[1,-1e999]", "01", "+1", "1.", ".5"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn manifest_to_json_round_trips_through_parse() {
        for text in [
            r#"{"jobs":[{"function":"and2"}]}"#,
            r#"{"threads":3,"ensemble_width":16,"jobs":[
                {"function":"xor3","analysis":"transient","phase_ns":2.5,"dt_ns":0.1,
                 "max_samples":128,"deadline_ms":250,"retry":"ladder","label":"w\"x","waveform":true},
                {"function":"maj3","analysis":"op","input":5},
                {"deck":"v1 a 0 dc 2\nr1 a out 1k\nr2 out 0 1k\n.op\n","max_samples":64}
            ]}"#,
            r#"{"jobs":[
                {"function":"and2","cache":"bypass"},
                {"function":"or2","cache":"refresh"},
                {"function":"xor2","cache":"default"}
            ]}"#,
        ] {
            let m = BatchManifest::parse(text).unwrap();
            let rendered = m.to_json();
            let reparsed = BatchManifest::parse(&rendered)
                .unwrap_or_else(|e| panic!("render of {text} unparseable: {e}\n{rendered}"));
            assert_eq!(reparsed, m, "round trip drifted for {text}:\n{rendered}");
            // Idempotence: rendering the reparse is byte-stable.
            assert_eq!(reparsed.to_json(), rendered);
        }
    }

    #[test]
    fn single_job_manifest_preserves_spec_and_width() {
        let m = BatchManifest::parse(
            r#"{"ensemble_width":8,"jobs":[{"function":"or2","analysis":"op","input":2,"label":"L"}]}"#,
        )
        .unwrap();
        let fwd = single_job_manifest(&m.jobs[0], m.ensemble_width);
        let fm = BatchManifest::parse(&fwd).unwrap();
        assert_eq!(fm.ensemble_width, 8);
        assert_eq!(fm.jobs, m.jobs);
        // Width 0 stays absent so the worker keeps its engine default.
        let fwd = single_job_manifest(&m.jobs[0], 0);
        assert!(!fwd.contains("ensemble_width"), "{fwd}");
        assert_eq!(BatchManifest::parse(&fwd).unwrap().jobs, m.jobs);
    }

    #[test]
    fn wire_error_renders_structured_json() {
        let e = WireError::job("invalid_max_samples", 3, "must be \"small\"");
        let json = e.to_json();
        assert_eq!(
            json,
            format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"error\":{{\"code\":\"invalid_max_samples\",\"message\":\"must be \\\"small\\\"\",\"job\":3}}}}"
            )
        );
        // The structured body itself round-trips through the parser.
        let doc = Json::parse(&json).unwrap();
        let err = doc.get("error").unwrap();
        assert_eq!(
            err.get("code").and_then(Json::as_str),
            Some("invalid_max_samples")
        );
        assert_eq!(err.get("job").and_then(Json::as_f64), Some(3.0));
        assert!(e.to_string().contains("job 3"));
    }
}
