//! The job service: a bounded work queue in front of the batch engine.
//!
//! [`JobService`] owns the job registry (id → state), the pending queue,
//! and the worker protocol. Admission is **all-or-nothing**: a manifest's
//! jobs are either all enqueued or the whole submission is rejected with
//! [`SubmitError::Overloaded`] (the HTTP layer's `429`), so a client never
//! has to reason about partially-accepted batches. Workers pull queued
//! jobs and run them through [`Engine::run_single`], which applies the
//! same retry/deadline/telemetry semantics as `Engine::run` — that is
//! what makes served results byte-identical to direct engine submission.
//!
//! Job *construction* is injected through [`JobBuilder`] rather than done
//! here: the service knows manifests and outcomes, while the caller (the
//! `fts` CLI's synthesis pipeline) knows how a named Boolean function
//! becomes a lattice netlist. `fts batch` and `fts serve` hand the same
//! builder to [`build_job`], so the two transports cannot drift.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use fts_engine::{
    cache_key, params_vector, topology_hash, Analysis, CacheKey, CacheMode, CacheStats,
    CachedResult, Engine, ResultCache, RetryPolicy, SimJob, SimOutcome, DEFAULT_CACHE_BYTES,
};
use fts_netlist::{elaborate, parse_str, ElabOptions};
use fts_spice::{CancelToken, NodeId};
use fts_telemetry::trace::JobTrace;

use crate::wire::{
    cache_member_json, job_row_json, json_escape, json_f64, outcome_json, trace_chrome_json,
    trace_journal_json, JobSource, JobSpec, WireError, SCHEMA_VERSION,
};

/// A manifest job lowered to an engine job plus the node to report.
pub struct BuiltJob {
    /// The runnable engine job (netlist + analysis; policy fields are
    /// applied by [`build_job`]).
    pub job: SimJob,
    /// The lattice output node whose voltage the report quotes.
    pub out: NodeId,
}

/// Lowers one manifest [`JobSpec`] to a runnable [`BuiltJob`].
///
/// Implementations map the spec's named function and analysis onto a
/// netlist; validation failures (unknown function name, unrealizable
/// lattice) surface as [`WireError`]s → structured `400`s / CLI errors.
pub trait JobBuilder: Send + Sync {
    /// Builds the engine job for `spec` (manifest index `index`).
    ///
    /// # Errors
    ///
    /// A structured [`WireError`] attributed to job `index`.
    fn build(&self, spec: &JobSpec, index: usize) -> Result<BuiltJob, WireError>;
}

/// Lowers `spec` through `builder` and applies the spec's policy fields
/// (label, retry ladder, deadline). This is the single construction path
/// shared by `fts batch` and the server.
///
/// Deck sources are lowered right here through `fts-netlist` — the
/// builder only ever sees [`JobSource::Function`] specs, so builders stay
/// ignorant of SPICE.
///
/// # Errors
///
/// Whatever the builder reports for job `index`, or a structured deck
/// parse/elaboration error (with line/column) for deck sources.
pub fn build_job(
    builder: &dyn JobBuilder,
    spec: &JobSpec,
    index: usize,
) -> Result<BuiltJob, WireError> {
    let built = match &spec.source {
        JobSource::Deck { text, max_samples } => build_deck_job(text, *max_samples, index)?,
        JobSource::Function { .. } => builder.build(spec, index)?,
    };
    let mut job = built.job.label(&spec.label_or_default(index));
    if spec.ladder {
        job = job.retry(RetryPolicy::ladder());
    }
    if let Some(ms) = spec.deadline_ms {
        job = job.deadline(Duration::from_secs_f64(ms / 1000.0));
    }
    Ok(BuiltJob {
        job,
        out: built.out,
    })
}

/// Lowers a manifest deck job: parse (`.include` disabled — manifests
/// arrive over the wire), elaborate, and require exactly one analysis
/// card so the deck maps onto the manifest's one-spec-one-row shape.
fn build_deck_job(text: &str, max_samples: usize, index: usize) -> Result<BuiltJob, WireError> {
    let deck = parse_str(text).map_err(|e| WireError::from_deck(&e, Some(index)))?;
    let elab = elaborate(&deck, &ElabOptions { max_samples })
        .map_err(|e| WireError::from_deck(&e, Some(index)))?;
    let mut jobs = elab.jobs;
    if jobs.len() != 1 {
        return Err(WireError::job(
            "deck_analysis_count",
            index,
            format!(
                "a manifest deck job must carry exactly one analysis card, this deck has {} \
                 (POST /v1/decks runs multi-analysis decks)",
                jobs.len()
            ),
        ));
    }
    Ok(BuiltJob {
        job: jobs.pop().expect("length checked"),
        out: elab.out,
    })
}

/// Lowers a raw deck body (`POST /v1/decks`) into one [`Submission`] per
/// analysis card, labelled with the deck's ordinal analysis labels
/// (`op-0`, `tran-1`, …).
///
/// # Errors
///
/// A structured [`WireError`] carrying the deck's stable error code and
/// 1-based line/column.
pub fn deck_submissions(text: &str) -> Result<Vec<Submission>, WireError> {
    let deck = parse_str(text).map_err(|e| WireError::from_deck(&e, None))?;
    let elab =
        elaborate(&deck, &ElabOptions::default()).map_err(|e| WireError::from_deck(&e, None))?;
    let out = elab.out;
    Ok(elab
        .jobs
        .into_iter()
        .map(|job| Submission {
            label: job.label.clone(),
            out,
            waveform: false,
            cache: CacheMode::Default,
            job,
        })
        .collect())
}

/// One admitted unit of work: a runnable job plus its report metadata.
/// Both `POST /v1/jobs` (manifest) and `POST /v1/decks` (raw deck) lower
/// to these before hitting the shared admission path,
/// [`JobService::submit_jobs`].
pub struct Submission {
    /// The runnable engine job.
    pub job: SimJob,
    /// Report label.
    pub label: String,
    /// The node whose voltage the report quotes.
    pub out: NodeId,
    /// Embed the decimated waveform arrays in the result row.
    pub waveform: bool,
    /// Result-cache policy for this job.
    pub cache: CacheMode,
}

/// Why a submission was not admitted.
#[derive(Debug)]
pub enum SubmitError {
    /// The manifest failed validation (→ `400`).
    Invalid(WireError),
    /// Admitting the manifest would overflow the work queue (→ `429`).
    Overloaded {
        /// Current queue length.
        queued: usize,
        /// Configured queue capacity.
        depth: usize,
    },
    /// The service is draining for shutdown (→ `503`).
    ShuttingDown,
    /// No backend can take the work right now (→ `503` with code
    /// `no_workers`). Only the coordinator produces this: its validation
    /// passed but every routable worker was down or refused.
    Unavailable(String),
}

enum JobState {
    Queued,
    Running,
    Done { kind: &'static str, row: String },
}

struct JobEntry {
    label: String,
    waveform: bool,
    out: NodeId,
    cancel: CancelToken,
    /// Present while queued; taken by the worker that starts the job.
    job: Option<SimJob>,
    /// The job's flight recorder, minted at admission (absent when the
    /// service runs with tracing disabled). The engine installs the
    /// other clone of this handle on the worker thread; this one serves
    /// `GET /v1/jobs/{id}/trace`, including mid-run.
    trace: Option<JobTrace>,
    /// The job's canonical content hash, computed at admission.
    key: CacheKey,
    /// The job's cache policy.
    mode: CacheMode,
    state: JobState,
}

struct Registry {
    jobs: HashMap<u64, JobEntry>,
    pending: VecDeque<u64>,
    /// Done entry ids in completion order — the eviction queue that keeps
    /// retained results (potentially multi-megabyte waveform rows)
    /// bounded on a long-running server.
    done_order: VecDeque<u64>,
    next_id: u64,
    draining: bool,
    running: usize,
    completed: u64,
}

/// Live queue/registry gauges for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceGauges {
    /// Jobs admitted but not yet started.
    pub queued: usize,
    /// Jobs currently executing on a worker.
    pub running: usize,
    /// Jobs finished (any outcome) since startup.
    pub completed: u64,
    /// Finished job rows currently retained (≤ the `cache_entries` bound).
    pub done_retained: usize,
    /// Submissions rejected with `429` since startup.
    pub rejected: u64,
    /// Configured queue capacity.
    pub queue_depth: usize,
}

/// Default for [`JobService::new`]'s `cache_entries`: the bound on both
/// the content-addressed result cache *and* the retained finished-job
/// rows (the two retention knobs PR 10 consolidated — see DESIGN.md §13).
pub const DEFAULT_CACHE_ENTRIES: usize = 256;

/// Deprecated alias of [`DEFAULT_CACHE_ENTRIES`], kept so pre-cache
/// callers (and the `--retain-done` CLI alias) keep compiling.
pub const DEFAULT_RETAIN_DONE: usize = DEFAULT_CACHE_ENTRIES;

/// `GET /v1/jobs` page size when the request has no `limit`.
pub const LIST_LIMIT_DEFAULT: usize = 50;

/// Largest accepted `GET /v1/jobs` `limit`; bigger asks are a structured
/// `400`, not a silent clamp, so clients learn the cap.
pub const LIST_LIMIT_MAX: usize = 500;

/// Renders one `GET /v1/jobs` page: `rows` (each already a JSON object)
/// plus `next_cursor` when `truncated` says there is more. Shared by the
/// single-process server and the coordinator so both listings carry the
/// identical shape.
#[must_use]
pub fn list_page_json(rows: &[String], truncated: bool, last_id: Option<u64>) -> String {
    let mut doc = format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"jobs\":[{}]",
        rows.join(",")
    );
    if truncated {
        if let Some(last) = last_id {
            doc.push_str(&format!(",\"next_cursor\":{last}"));
        }
    }
    doc.push('}');
    doc
}

/// Renders one [`CacheStats`] snapshot as the `GET /v1/cache` body —
/// shared by the single-process server and (per worker, plus the
/// aggregate) the coordinator.
#[must_use]
pub fn cache_stats_json(s: &CacheStats) -> String {
    format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"entries\":{},\"bytes\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_ratio\":{}}}",
        s.entries,
        s.bytes,
        s.hits,
        s.misses,
        s.evictions,
        json_f64(s.hit_ratio()),
    )
}

/// Result of a `GET /v1/jobs/{id}/trace` lookup.
pub enum TraceLookup {
    /// Unknown id, or the finished job was evicted (→ `404`).
    Unknown,
    /// The service runs with per-job tracing disabled (→ `404` with a
    /// distinct error code, so clients can tell "no such job" from
    /// "tracing off").
    Disabled,
    /// The rendered journal document.
    Journal(String),
}

/// The bounded job queue + registry behind the HTTP endpoints.
pub struct JobService {
    registry: Mutex<Registry>,
    work_ready: Condvar,
    job_done: Condvar,
    builder: Arc<dyn JobBuilder>,
    engine: Engine,
    queue_depth: usize,
    cache_entries: usize,
    /// The content-addressed result cache + warm-start index (PR 10).
    cache: ResultCache,
    /// Per-job flight-recorder ring capacity; 0 disables tracing.
    trace_events: usize,
    rejected: AtomicU64,
}

impl JobService {
    /// A service admitting at most `queue_depth` queued jobs, lowering
    /// manifests through `builder`, and bounding both the result cache
    /// and the retained finished-job rows to `cache_entries` (see
    /// [`DEFAULT_CACHE_ENTRIES`]; the byte bound defaults to
    /// [`DEFAULT_CACHE_BYTES`], adjustable via
    /// [`cache_bytes`](JobService::cache_bytes)).
    ///
    /// Retention is what bounds the registry: queued and running entries
    /// are already limited by `queue_depth` and the worker count, and
    /// once the done set exceeds `cache_entries` the oldest-completed
    /// entries are dropped, so a long-running server's memory cannot grow
    /// with its job history. An evicted id reads as `404` — clients poll
    /// results promptly (and `server_load` hammers exactly that loop), so
    /// the cap trades indefinite retrievability for a hard memory bound.
    /// The content cache ages out separately by LRU under the same entry
    /// bound, so a result evicted from the *registry* (by id) is usually
    /// still servable as a cache hit (by content).
    pub fn new(
        builder: Arc<dyn JobBuilder>,
        queue_depth: usize,
        cache_entries: usize,
    ) -> JobService {
        JobService {
            registry: Mutex::new(Registry {
                jobs: HashMap::new(),
                pending: VecDeque::new(),
                done_order: VecDeque::new(),
                next_id: 0,
                draining: false,
                running: 0,
                completed: 0,
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            builder,
            engine: Engine::new(),
            queue_depth: queue_depth.max(1),
            cache_entries: cache_entries.max(1),
            cache: ResultCache::new(cache_entries.max(1), DEFAULT_CACHE_BYTES),
            trace_events: fts_telemetry::trace::DEFAULT_EVENT_CAP,
            rejected: AtomicU64::new(0),
        }
    }

    /// Rebounds the result cache's byte budget (entry bound unchanged).
    /// Call before serving traffic: the cache is reset empty.
    pub fn cache_bytes(mut self, bytes: usize) -> JobService {
        self.cache = ResultCache::new(self.cache_entries, bytes);
        self
    }

    /// Sets the per-job flight-recorder ring capacity (events retained
    /// per job before drop-oldest kicks in). `0` disables tracing: no
    /// rings are minted and `GET /v1/jobs/{id}/trace` reports
    /// [`TraceLookup::Disabled`]. Defaults to
    /// [`fts_telemetry::trace::DEFAULT_EVENT_CAP`].
    pub fn trace_capacity(mut self, events: usize) -> JobService {
        self.trace_events = events;
        self
    }

    /// Validates, lowers, and admits a manifest's jobs; returns their ids
    /// in manifest order.
    ///
    /// Construction happens *before* admission, so an invalid manifest is
    /// rejected without consuming queue slots, and admission is
    /// all-or-nothing against the queue bound.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] on validation failure,
    /// [`SubmitError::Overloaded`] when the queue cannot take every job,
    /// [`SubmitError::ShuttingDown`] while draining.
    pub fn submit(&self, manifest: &crate::wire::BatchManifest) -> Result<Vec<u64>, SubmitError> {
        let mut subs = Vec::with_capacity(manifest.jobs.len());
        for (k, spec) in manifest.jobs.iter().enumerate() {
            let b = build_job(self.builder.as_ref(), spec, k).map_err(SubmitError::Invalid)?;
            subs.push(Submission {
                job: b.job,
                label: spec.label_or_default(k),
                out: b.out,
                waveform: spec.waveform,
                cache: spec.cache,
            });
        }
        self.submit_jobs(subs)
    }

    /// Admits pre-built jobs: the single all-or-nothing admission path
    /// behind both `POST /v1/jobs` (via [`submit`](JobService::submit))
    /// and `POST /v1/decks` (via [`deck_submissions`]); returns ids in
    /// submission order.
    ///
    /// # Errors
    ///
    /// Same contract as [`submit`](JobService::submit).
    pub fn submit_jobs(&self, subs: Vec<Submission>) -> Result<Vec<u64>, SubmitError> {
        if subs.is_empty() {
            return Err(SubmitError::Invalid(WireError::manifest(
                "empty_manifest",
                "no jobs to admit",
            )));
        }

        // Canonical keys are pure functions of the job — compute them
        // before taking the registry lock.
        let keyed: Vec<(Submission, CacheKey)> = subs
            .into_iter()
            .map(|s| {
                let key = cache_key(&s.job, s.out, s.waveform);
                (s, key)
            })
            .collect();

        let mut reg = self.registry.lock().expect("registry poisoned");
        if reg.draining {
            return Err(SubmitError::ShuttingDown);
        }

        // Admission consults the cache: a `default`-mode job whose key is
        // already cached is minted Done on the spot — it never occupies a
        // queue slot, so capacity is checked against misses only.
        let looked: Vec<(Submission, CacheKey, Option<CachedResult>)> = keyed
            .into_iter()
            .map(|(s, key)| {
                let hit = s.cache.reads().then(|| self.cache.lookup(key)).flatten();
                (s, key, hit)
            })
            .collect();
        let misses = looked.iter().filter(|(_, _, hit)| hit.is_none()).count();
        if reg.pending.len() + misses > self.queue_depth {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            fts_telemetry::counter("server.jobs.rejected", looked.len() as u64);
            return Err(SubmitError::Overloaded {
                queued: reg.pending.len(),
                depth: self.queue_depth,
            });
        }

        let mut ids = Vec::with_capacity(looked.len());
        let mut queued_any = false;
        for (mut s, key, hit) in looked {
            let id = reg.next_id;
            reg.next_id += 1;
            let trace = (self.trace_events > 0).then(|| JobTrace::new(self.trace_events));
            if let Some(cached) = hit {
                // Serve the stored result bytes under this submission's
                // own label: byte-identical `result` object, zero queue
                // time, attempts quoted from the original run.
                let row = format!(
                    "{{\"label\":\"{}\",\"kind\":\"{}\",\"wall_s\":0,\"attempts\":{},\"result\":{}{}}}",
                    json_escape(&s.label),
                    cached.kind,
                    cached.attempts,
                    cached.result_json,
                    cache_member_json(key, true),
                );
                reg.jobs.insert(
                    id,
                    JobEntry {
                        label: s.label,
                        waveform: s.waveform,
                        out: s.out,
                        cancel: CancelToken::new(),
                        job: None,
                        trace,
                        key,
                        mode: s.cache,
                        state: JobState::Done {
                            kind: cached.kind,
                            row,
                        },
                    },
                );
                reg.completed += 1;
                reg.done_order.push_back(id);
                while reg.done_order.len() > self.cache_entries {
                    let evicted = reg.done_order.pop_front().expect("non-empty");
                    reg.jobs.remove(&evicted);
                }
            } else {
                // Mint the job's flight recorder at admission: the engine
                // installs the handle riding on the job, the registry
                // keeps this clone to serve the journal.
                if let Some(t) = &trace {
                    s.job.trace = Some(t.clone());
                }
                reg.jobs.insert(
                    id,
                    JobEntry {
                        label: s.label,
                        waveform: s.waveform,
                        out: s.out,
                        cancel: CancelToken::new(),
                        job: Some(s.job),
                        trace,
                        key,
                        mode: s.cache,
                        state: JobState::Queued,
                    },
                );
                reg.pending.push_back(id);
                queued_any = true;
            }
            ids.push(id);
        }
        fts_telemetry::counter("server.jobs.admitted", ids.len() as u64);
        if queued_any {
            self.work_ready.notify_all();
        }
        Ok(ids)
    }

    /// One worker thread's loop: pull queued jobs and run them until the
    /// queue is empty *and* the service is draining. Workers never abandon
    /// a started job, which is what makes shutdown lossless.
    pub fn worker_loop(&self) {
        loop {
            let (id, mut job, cancel, key, mode, out, waveform) = {
                let mut reg = self.registry.lock().expect("registry poisoned");
                loop {
                    if let Some(id) = reg.pending.pop_front() {
                        let entry = reg.jobs.get_mut(&id).expect("pending id registered");
                        entry.state = JobState::Running;
                        let job = entry.job.take().expect("queued job present");
                        let cancel = entry.cancel.clone();
                        let (key, mode) = (entry.key, entry.mode);
                        let (out, waveform) = (entry.out, entry.waveform);
                        reg.running += 1;
                        break (id, job, cancel, key, mode, out, waveform);
                    }
                    if reg.draining {
                        return;
                    }
                    reg = self.work_ready.wait(reg).expect("registry poisoned");
                }
            };

            // Dequeue-time recheck: an in-flight duplicate admitted as a
            // miss may have been cached by its twin while this job sat
            // queued — serve the stored bytes instead of recomputing.
            if mode.reads() {
                if let Some(cached) = self.cache.recheck(key) {
                    self.finish(id, cached.kind, |entry| {
                        format!(
                            "{{\"label\":\"{}\",\"kind\":\"{}\",\"wall_s\":0,\"attempts\":{},\"result\":{}{}}}",
                            json_escape(&entry.label),
                            cached.kind,
                            cached.attempts,
                            cached.result_json,
                            cache_member_json(key, true),
                        )
                    });
                    continue;
                }
                // Warm-start: seed Newton from the nearest cached
                // operating point of the same concrete topology.
                if matches!(job.analysis, Analysis::Op) {
                    let topo = topology_hash(&job.netlist);
                    let params = params_vector(&job.netlist);
                    if let Some(x) = self.cache.warm_lookup(topo, &params) {
                        job.initial = Some(x);
                    }
                }
            }

            let warmed = job.initial.is_some();
            let (outcome, stats) = self.engine.run_single(&job, &cancel);

            if outcome.is_success() && mode.writes() {
                self.cache.insert(
                    key,
                    outcome.kind(),
                    outcome_json(&outcome, out, waveform),
                    stats.attempts,
                );
                if let SimOutcome::Op(op) = &outcome {
                    self.cache.warm_insert(
                        topology_hash(&job.netlist),
                        params_vector(&job.netlist),
                        op.unknowns().to_vec(),
                    );
                    let iters = op.convergence().newton_iterations;
                    if warmed {
                        fts_telemetry::record("cache.warm.newton_iterations", iters as f64);
                    } else {
                        fts_telemetry::record("cache.cold.newton_iterations", iters as f64);
                    }
                }
            }

            self.finish(id, outcome.kind(), |entry| {
                let mut row =
                    job_row_json(&entry.label, &outcome, &stats, entry.out, entry.waveform);
                row.pop();
                row.push_str(&cache_member_json(key, false));
                row.push('}');
                row
            });
        }
    }

    /// Completes job `id`: renders its row (under the registry lock, so
    /// the closure sees the entry's metadata), flips it Done, and applies
    /// the done-row retention bound.
    fn finish(&self, id: u64, kind: &'static str, row: impl FnOnce(&JobEntry) -> String) {
        let mut reg = self.registry.lock().expect("registry poisoned");
        let entry = reg.jobs.get_mut(&id).expect("running id registered");
        let row = row(entry);
        entry.state = JobState::Done { kind, row };
        reg.running -= 1;
        reg.completed += 1;
        reg.done_order.push_back(id);
        while reg.done_order.len() > self.cache_entries {
            let evicted = reg.done_order.pop_front().expect("non-empty");
            reg.jobs.remove(&evicted);
        }
        self.job_done.notify_all();
    }

    /// The status document for `GET /v1/jobs/{id}`, or `None` for ids
    /// that are unknown or whose finished result has been evicted by the
    /// `cache_entries` done-row bound.
    ///
    /// Done jobs embed the full report row — label, timing stats, and the
    /// deterministic `result` object rendered by
    /// [`outcome_json`](crate::wire::outcome_json).
    pub fn status_json(&self, id: u64) -> Option<String> {
        let reg = self.registry.lock().expect("registry poisoned");
        let entry = reg.jobs.get(&id)?;
        Some(match &entry.state {
            JobState::Queued => format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"id\":{id},\"label\":\"{}\",\"status\":\"queued\"}}",
                json_escape(&entry.label)
            ),
            JobState::Running => format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"id\":{id},\"label\":\"{}\",\"status\":\"running\"}}",
                json_escape(&entry.label)
            ),
            JobState::Done { kind, row } => format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"id\":{id},\"status\":\"done\",\"kind\":\"{kind}\",\"job\":{row}}}"
            ),
        })
    }

    /// The flight-recorder journal for `GET /v1/jobs/{id}/trace`.
    ///
    /// Works for jobs in any state — a running job serves the events it
    /// has produced so far. `chrome` selects the Chrome trace-event
    /// rendering (`?format=chrome`) over the `fts-trace/1` journal.
    pub fn trace_json(&self, id: u64, chrome: bool) -> TraceLookup {
        let reg = self.registry.lock().expect("registry poisoned");
        let Some(entry) = reg.jobs.get(&id) else {
            return TraceLookup::Unknown;
        };
        let Some(trace) = &entry.trace else {
            return TraceLookup::Disabled;
        };
        let snap = trace.snapshot();
        let doc = if chrome {
            trace_chrome_json(id, &entry.label, &snap)
        } else {
            let status = match &entry.state {
                JobState::Queued => "queued",
                JobState::Running => "running",
                JobState::Done { .. } => "done",
            };
            trace_journal_json(id, &entry.label, status, &snap)
        };
        TraceLookup::Journal(doc)
    }

    /// Fires the job's [`CancelToken`] for `DELETE /v1/jobs/{id}`.
    /// Returns the job's status after the cancel request, or `None` for
    /// unknown (or evicted) ids.
    ///
    /// Cancelling is cooperative and idempotent: a queued or running job
    /// stops at its next cancellation point and reports
    /// `"kind":"cancelled"`; a job that already finished keeps its result
    /// (the cancel-vs-complete race is settled by whoever got there
    /// first).
    pub fn cancel(&self, id: u64) -> Option<&'static str> {
        let reg = self.registry.lock().expect("registry poisoned");
        let entry = reg.jobs.get(&id)?;
        entry.cancel.cancel();
        fts_telemetry::counter("server.jobs.cancel_requests", 1);
        Some(match &entry.state {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
        })
    }

    /// Marks the service draining and blocks until every admitted job has
    /// finished. After this returns, workers have exited (or are about to,
    /// having observed the drain flag with an empty queue).
    pub fn drain(&self) {
        let mut reg = self.registry.lock().expect("registry poisoned");
        reg.draining = true;
        self.work_ready.notify_all();
        while !reg.pending.is_empty() || reg.running > 0 {
            reg = self.job_done.wait(reg).expect("registry poisoned");
        }
    }

    /// One page of `GET /v1/jobs`: summary rows for registered jobs with
    /// id > `cursor`, ascending by id, at most `limit` of them. `state`
    /// (already validated by the route layer) keeps only jobs in that
    /// state. The page carries `next_cursor` — the last id returned —
    /// exactly when more matching jobs exist beyond it.
    pub fn list_json(&self, state: Option<&str>, cursor: Option<u64>, limit: usize) -> String {
        let reg = self.registry.lock().expect("registry poisoned");
        let mut ids: Vec<u64> = reg.jobs.keys().copied().collect();
        ids.sort_unstable();
        let mut rows = Vec::new();
        let mut truncated = false;
        let mut last_id = None;
        for id in ids {
            if let Some(c) = cursor {
                if id <= c {
                    continue;
                }
            }
            let entry = &reg.jobs[&id];
            let (status, kind) = match &entry.state {
                JobState::Queued => ("queued", None),
                JobState::Running => ("running", None),
                JobState::Done { kind, .. } => ("done", Some(*kind)),
            };
            if state.is_some_and(|want| want != status) {
                continue;
            }
            if rows.len() == limit {
                truncated = true;
                break;
            }
            let mut row = format!(
                "{{\"id\":{id},\"label\":\"{}\",\"status\":\"{status}\"",
                json_escape(&entry.label)
            );
            if let Some(kind) = kind {
                row.push_str(&format!(",\"kind\":\"{kind}\""));
            }
            row.push('}');
            rows.push(row);
            last_id = Some(id);
        }
        list_page_json(&rows, truncated, last_id)
    }

    /// The result cache's counter snapshot (for `/metrics` and
    /// aggregation by the coordinator).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The `GET /v1/cache` document.
    pub fn cache_stats_json(&self) -> String {
        cache_stats_json(&self.cache.stats())
    }

    /// Flushes the result cache (and warm-start index) for
    /// `DELETE /v1/cache`. Counters are cumulative and survive.
    pub fn cache_flush(&self) {
        self.cache.flush();
    }

    /// Live gauges for `/metrics`.
    pub fn gauges(&self) -> ServiceGauges {
        let reg = self.registry.lock().expect("registry poisoned");
        ServiceGauges {
            queued: reg.pending.len(),
            running: reg.running,
            completed: reg.completed,
            done_retained: reg.done_order.len(),
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth: self.queue_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::BatchManifest;
    use fts_spice::netlist::{Netlist, Waveform};

    /// A builder that makes a trivial divider: out = vdd · R2/(R1+R2).
    struct DividerBuilder;

    impl JobBuilder for DividerBuilder {
        fn build(&self, spec: &JobSpec, index: usize) -> Result<BuiltJob, WireError> {
            let JobSource::Function { name, .. } = &spec.source else {
                unreachable!("deck jobs are lowered by build_job, not the builder");
            };
            if name != "divider" {
                return Err(WireError::job(
                    "unknown_function",
                    index,
                    format!("unknown function {name:?}"),
                ));
            }
            let mut nl = Netlist::new();
            let a = nl.node("a");
            let out = nl.node("out");
            nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(2.0))
                .unwrap();
            nl.resistor("R1", a, out, 1e3).unwrap();
            nl.resistor("R2", out, Netlist::GROUND, 1e3).unwrap();
            Ok(BuiltJob {
                job: SimJob::op(nl),
                out,
            })
        }
    }

    fn service(depth: usize) -> JobService {
        JobService::new(Arc::new(DividerBuilder), depth, DEFAULT_RETAIN_DONE)
    }

    fn manifest(n: usize) -> BatchManifest {
        let jobs: Vec<String> = (0..n)
            .map(|_| "{\"function\":\"divider\"}".into())
            .collect();
        BatchManifest::parse(&format!("{{\"jobs\":[{}]}}", jobs.join(","))).unwrap()
    }

    #[test]
    fn submit_run_and_report() {
        let svc = service(8);
        let ids = svc.submit(&manifest(2)).unwrap();
        assert_eq!(ids, vec![0, 1]);
        assert!(svc
            .status_json(0)
            .unwrap()
            .contains("\"status\":\"queued\""));
        assert!(svc.status_json(99).is_none());

        std::thread::scope(|s| {
            s.spawn(|| svc.worker_loop());
            svc.drain();
        });

        let done = svc.status_json(0).unwrap();
        assert!(done.contains("\"status\":\"done\""), "{done}");
        assert!(done.contains("\"kind\":\"op\""), "{done}");
        assert!(done.contains("\"label\":\"divider-0\""), "{done}");
        let doc = crate::wire::Json::parse(&done).unwrap();
        let out_v = doc
            .get("job")
            .and_then(|j| j.get("result"))
            .and_then(|r| r.get("out_v"))
            .and_then(crate::wire::Json::as_f64)
            .unwrap();
        assert!((out_v - 1.0).abs() < 1e-6, "divider out_v = {out_v}");
        let g = svc.gauges();
        assert_eq!(g.completed, 2);
        assert_eq!((g.queued, g.running, g.rejected), (0, 0, 0));
    }

    #[test]
    fn done_entries_are_evicted_beyond_retention() {
        let svc = JobService::new(Arc::new(DividerBuilder), 8, 2);
        let ids = svc.submit(&manifest(5)).unwrap();
        // One worker → jobs finish in submission order, so the eviction
        // order is deterministic.
        std::thread::scope(|s| {
            s.spawn(|| svc.worker_loop());
            svc.drain();
        });
        for &id in &ids[..3] {
            assert!(svc.status_json(id).is_none(), "id {id} should be evicted");
            assert!(svc.cancel(id).is_none());
        }
        for &id in &ids[3..] {
            let done = svc.status_json(id).expect("retained");
            assert!(done.contains("\"status\":\"done\""), "{done}");
        }
        // Eviction drops rows, not history: the completed count stands.
        assert_eq!(svc.gauges().completed, 5);
    }

    #[test]
    fn overloaded_submission_is_all_or_nothing() {
        let svc = service(3);
        svc.submit(&manifest(2)).unwrap();
        // 2 queued + 2 requested > 3: the whole manifest bounces.
        match svc.submit(&manifest(2)) {
            Err(SubmitError::Overloaded { queued, depth }) => {
                assert_eq!((queued, depth), (2, 3));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(svc.gauges().rejected, 1);
        // A fitting manifest still goes through.
        svc.submit(&manifest(1)).unwrap();
        assert_eq!(svc.gauges().queued, 3);
    }

    #[test]
    fn invalid_function_rejects_without_queueing() {
        let svc = service(4);
        let m =
            BatchManifest::parse("{\"jobs\":[{\"function\":\"divider\"},{\"function\":\"nope\"}]}")
                .unwrap();
        match svc.submit(&m) {
            Err(SubmitError::Invalid(e)) => {
                assert_eq!(e.code, "unknown_function");
                assert_eq!(e.job, Some(1));
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        assert_eq!(svc.gauges().queued, 0, "no partial admission");
    }

    /// The same voltage divider as [`DividerBuilder`], as a SPICE deck.
    const DIVIDER_DECK: &str = "v1 a 0 dc 2\nr1 a out 1k\nr2 out 0 1k\n.op\n.probe v(out)\n";

    #[test]
    fn deck_jobs_share_the_admission_path() {
        let svc = service(8);
        let m = BatchManifest::parse(&format!(
            "{{\"jobs\":[{{\"deck\":{},\"label\":\"divider-deck\"}}]}}",
            crate::wire::Json::String(DIVIDER_DECK.into()).render()
        ))
        .unwrap();
        let ids = svc.submit(&m).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| svc.worker_loop());
            svc.drain();
        });
        let done = svc.status_json(ids[0]).unwrap();
        assert!(done.contains("\"label\":\"divider-deck\""), "{done}");
        let doc = crate::wire::Json::parse(&done).unwrap();
        let out_v = doc
            .get("job")
            .and_then(|j| j.get("result"))
            .and_then(|r| r.get("out_v"))
            .and_then(crate::wire::Json::as_f64)
            .unwrap();
        assert!((out_v - 1.0).abs() < 1e-6, "deck divider out_v = {out_v}");
    }

    #[test]
    fn deck_submissions_label_with_ordinal_analysis_labels() {
        let subs = deck_submissions("v1 a 0 dc 2\nr1 a out 1k\nr2 out 0 1k\n.op\n.op\n").unwrap();
        let labels: Vec<&str> = subs.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["op-0", "op-1"]);
        assert!(subs.iter().all(|s| !s.waveform));
    }

    #[test]
    fn bad_deck_is_a_structured_error_with_position() {
        let m =
            BatchManifest::parse(r#"{"jobs":[{"deck":"v1 a 0 dc 1\nr1 a b\n.op\n"}]}"#).unwrap();
        match service(4).submit(&m) {
            Err(SubmitError::Invalid(e)) => {
                assert_eq!(e.job, Some(0));
                assert_eq!(e.line, Some(2), "{e}");
                assert!(e.col.is_some(), "{e}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        // A deck with more than one analysis card cannot be a manifest job.
        let m = BatchManifest::parse(r#"{"jobs":[{"deck":"v1 a 0 dc 1\nr1 a 0 1k\n.op\n.op\n"}]}"#)
            .unwrap();
        match service(4).submit(&m) {
            Err(SubmitError::Invalid(e)) => assert_eq!(e.code, "deck_analysis_count"),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn trace_journal_covers_the_whole_run() {
        let svc = service(8);
        let ids = svc.submit(&manifest(1)).unwrap();
        // Queued job: journal exists and is empty.
        let TraceLookup::Journal(doc) = svc.trace_json(ids[0], false) else {
            panic!("queued job must have a journal");
        };
        assert!(doc.contains("\"status\":\"queued\""), "{doc}");
        assert!(doc.contains("\"events\":[]"), "{doc}");

        std::thread::scope(|s| {
            s.spawn(|| svc.worker_loop());
            svc.drain();
        });

        let TraceLookup::Journal(doc) = svc.trace_json(ids[0], false) else {
            panic!("done job must have a journal");
        };
        let parsed = crate::wire::Json::parse(&doc).expect("journal is valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(crate::wire::Json::as_str),
            Some("fts-trace/1")
        );
        assert_eq!(
            parsed.get("status").and_then(crate::wire::Json::as_str),
            Some("done")
        );
        let events = parsed
            .get("events")
            .and_then(crate::wire::Json::as_array)
            .unwrap();
        assert!(!events.is_empty(), "a solved op must record events");
        let kinds: Vec<&str> = events
            .iter()
            .map(|e| e.get("kind").and_then(crate::wire::Json::as_str).unwrap())
            .collect();
        assert!(kinds.contains(&"newton_converged"), "{kinds:?}");
        assert_eq!(kinds.last(), Some(&"job_done"));

        // Chrome rendering parses and carries both span and instant phases.
        let TraceLookup::Journal(chrome) = svc.trace_json(ids[0], true) else {
            panic!("chrome variant must render");
        };
        let parsed = crate::wire::Json::parse(&chrome).expect("chrome doc is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(crate::wire::Json::as_array)
            .unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").and_then(crate::wire::Json::as_str).unwrap())
            .collect();
        assert!(phases.contains(&"X"), "{phases:?}");
        assert!(phases.contains(&"i"), "{phases:?}");

        assert!(matches!(svc.trace_json(999, false), TraceLookup::Unknown));
    }

    #[test]
    fn trace_capacity_zero_disables_tracing() {
        let svc = service(8).trace_capacity(0);
        let ids = svc.submit(&manifest(1)).unwrap();
        assert!(matches!(
            svc.trace_json(ids[0], false),
            TraceLookup::Disabled
        ));
        std::thread::scope(|s| {
            s.spawn(|| svc.worker_loop());
            svc.drain();
        });
        assert!(matches!(
            svc.trace_json(ids[0], false),
            TraceLookup::Disabled
        ));
        // The job itself still runs to completion.
        assert!(svc
            .status_json(ids[0])
            .unwrap()
            .contains("\"status\":\"done\""));
    }

    #[test]
    fn cancel_before_start_reports_cancelled() {
        let svc = service(4);
        let ids = svc.submit(&manifest(1)).unwrap();
        assert_eq!(svc.cancel(ids[0]), Some("queued"));
        std::thread::scope(|s| {
            s.spawn(|| svc.worker_loop());
            svc.drain();
        });
        let done = svc.status_json(ids[0]).unwrap();
        assert!(done.contains("\"kind\":\"cancelled\""), "{done}");
        assert!(svc.cancel(77).is_none());
    }

    #[test]
    fn listing_pages_by_cursor_and_filters_by_state() {
        let svc = service(16);
        let ids = svc.submit(&manifest(5)).unwrap();
        // All queued: a full unfiltered page has every job, no cursor.
        let page = crate::wire::Json::parse(&svc.list_json(None, None, 50)).unwrap();
        let jobs = page
            .get("jobs")
            .and_then(crate::wire::Json::as_array)
            .unwrap();
        assert_eq!(jobs.len(), 5);
        assert!(page.get("next_cursor").is_none());

        // limit=2 truncates and hands back the last id as the cursor.
        let page = crate::wire::Json::parse(&svc.list_json(None, None, 2)).unwrap();
        let jobs = page
            .get("jobs")
            .and_then(crate::wire::Json::as_array)
            .unwrap();
        assert_eq!(jobs.len(), 2);
        let cursor = page
            .get("next_cursor")
            .and_then(crate::wire::Json::as_f64)
            .unwrap() as u64;
        assert_eq!(cursor, 1);
        // Resuming from the cursor yields the remainder, exactly once.
        let page = crate::wire::Json::parse(&svc.list_json(None, Some(cursor), 50)).unwrap();
        let jobs = page
            .get("jobs")
            .and_then(crate::wire::Json::as_array)
            .unwrap();
        let got: Vec<u64> = jobs
            .iter()
            .map(|j| j.get("id").and_then(crate::wire::Json::as_f64).unwrap() as u64)
            .collect();
        assert_eq!(got, vec![2, 3, 4]);

        std::thread::scope(|s| {
            s.spawn(|| svc.worker_loop());
            svc.drain();
        });

        // State filter: everything is done now, and done rows carry kind.
        let page = crate::wire::Json::parse(&svc.list_json(Some("queued"), None, 50)).unwrap();
        assert!(page
            .get("jobs")
            .and_then(crate::wire::Json::as_array)
            .unwrap()
            .is_empty());
        let page = crate::wire::Json::parse(&svc.list_json(Some("done"), None, 50)).unwrap();
        let jobs = page
            .get("jobs")
            .and_then(crate::wire::Json::as_array)
            .unwrap();
        assert_eq!(jobs.len(), ids.len());
        for j in jobs {
            assert_eq!(
                j.get("kind").and_then(crate::wire::Json::as_str),
                Some("op")
            );
            assert!(j.get("label").and_then(crate::wire::Json::as_str).is_some());
        }
    }

    #[test]
    fn list_truncation_flag_is_exact_at_the_boundary() {
        let svc = service(16);
        svc.submit(&manifest(3)).unwrap();
        // limit equals the match count: full page, no next_cursor.
        let page = crate::wire::Json::parse(&svc.list_json(None, None, 3)).unwrap();
        assert_eq!(
            page.get("jobs")
                .and_then(crate::wire::Json::as_array)
                .unwrap()
                .len(),
            3
        );
        assert!(page.get("next_cursor").is_none());
    }

    #[test]
    fn drain_rejects_new_submissions() {
        let svc = service(4);
        std::thread::scope(|s| {
            s.spawn(|| svc.worker_loop());
            svc.drain();
            assert!(matches!(
                svc.submit(&manifest(1)),
                Err(SubmitError::ShuttingDown)
            ));
        });
    }
}
