//! `fts-server`: a zero-dependency HTTP/1.1 simulation service over the
//! `fts-engine` batch scheduler.
//!
//! The crate turns the batch engine into a long-running network service
//! using nothing but std: a [`TcpListener`](std::net::TcpListener) accept
//! loop, hand-rolled bounded HTTP parsing ([`http`]), the versioned JSON
//! wire schema shared with the `fts batch` CLI ([`wire`]), and a bounded
//! job queue in front of [`Engine`](fts_engine::Engine) ([`service`]).
//!
//! # Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/jobs` | Submit a batch manifest (same schema as `fts batch`); returns job ids, `202` |
//! | `GET /v1/jobs` | Bounded job listing: `?state=` filter + cursor pagination |
//! | `GET /v1/jobs/{id}` | Job status; done jobs embed the deterministic result object |
//! | `GET /v1/jobs/{id}/trace` | The job's flight-recorder journal (`fts-trace/1`); `?format=chrome` renders Chrome trace-event JSON for `about:tracing` |
//! | `DELETE /v1/jobs/{id}` | Cooperative cancel via the job's `CancelToken` |
//! | `GET /healthz` | Liveness: uptime, schema version, jobs in each state |
//! | `GET /metrics` | Prometheus-style text: queue gauges, live per-endpoint request counters + sliding-window latency, fts-telemetry counters/percentiles |
//! | `POST /v1/shutdown` | Graceful shutdown (same drain as SIGINT) |
//!
//! # Service semantics
//!
//! * **Backpressure** — bounded connection *and* job queues; overflow of
//!   either answers `429` instead of buffering unboundedly.
//! * **Timeouts & deadlines** — per-connection read/write timeouts plus
//!   an overall per-request wall-clock deadline (so a slow-loris client
//!   cannot pin a connection worker); a manifest's `deadline_ms` maps
//!   onto the engine's per-job deadline tokens, so a runaway solve stops
//!   within one Newton iteration of expiry.
//! * **Bounded memory** — JSON nesting depth, request head/body sizes,
//!   queue depths, and the number of retained finished-job results
//!   (`retain_done`, evicting oldest-completed) are all capped.
//! * **Graceful shutdown** — SIGINT, `POST /v1/shutdown`, or a
//!   [`ServerHandle`] stop the accept loop, serve already-accepted
//!   connections, let every admitted job finish, and flush a final
//!   telemetry report. Zero in-flight jobs are dropped.
//! * **Determinism** — results are rendered by the same
//!   [`wire::outcome_json`] the CLI report uses and carry no timing, so a
//!   served result is byte-identical to direct engine submission.
//!
//! The dependency arrow points *away* from the synthesis pipeline: this
//! crate only knows manifests and engine jobs, and the caller injects how
//! a named function becomes a netlist through [`JobBuilder`] — `fts-core`
//! implements it once and hands it to both `fts batch` and `fts serve`.

//! # Distributed mode
//!
//! [`Coordinator`] puts the same wire API in front of a fleet of worker
//! processes: submissions are validated locally, routed by consistent
//! hash ([`ring`]) over the blocking [`WireClient`] ([`client`]), and
//! recovered onto live workers when one dies mid-flight. See the
//! `coordinator` module docs for the failure model and drain ordering.

#![deny(unsafe_code)] // `signal`/`net` opt out locally for their libc FFI shims.
#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod http;
pub mod net;
pub mod ring;
pub mod server;
pub mod service;
pub mod signal;
pub mod testing;
pub mod wire;

pub use client::{ApiError, ClientError, ClientLimits, ClientResponse, WireClient};
pub use coordinator::{Coordinator, CoordinatorConfig};
pub use http::{HttpError, HttpLimits, Request};
pub use ring::HashRing;
pub use server::{Server, ServerConfig, ServerHandle, ShutdownReport};
pub use service::{
    build_job, cache_stats_json, BuiltJob, JobBuilder, JobService, ServiceGauges, SubmitError,
    TraceLookup, DEFAULT_CACHE_ENTRIES, DEFAULT_RETAIN_DONE, LIST_LIMIT_DEFAULT, LIST_LIMIT_MAX,
};
pub use wire::{
    batch_report_json, cache_member_json, job_row_json, json_escape, outcome_json,
    single_job_manifest, trace_chrome_json, trace_journal_json, trace_object_json, AnalysisSpec,
    BatchManifest, JobSpec, Json, WireError, MAX_JSON_DEPTH, MAX_SAMPLES_LIMIT, SCHEMA_VERSION,
};
