//! `WireClient`: the blocking HTTP client side of the schema_version-1
//! wire protocol.
//!
//! One client type serves every consumer that used to hand-roll request
//! strings — the coordinator's worker connections, the `server_load` and
//! `server_cluster` benches, the CLI's `fts client` subcommand, and the
//! integration tests. It speaks exactly the dialect the server does (one
//! request per connection, explicit `Content-Length`, `Connection: close`
//! read-to-EOF responses) under the same bounded-resource discipline as
//! the server side ([`ClientLimits`]): connect/read/write timeouts, an
//! overall per-request deadline, and a cap on buffered response bytes.
//!
//! Failures are structured: transport problems surface as
//! [`ClientError::Io`], framing violations as [`ClientError::Protocol`],
//! and non-2xx statuses decode the server's `WireError{code,message}`
//! envelope into [`ApiError`] — so a caller can tell "the worker is dead"
//! from "the worker said 429" without string matching.

use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::wire::Json;

/// Size and time bounds applied to every client request — the client-side
/// mirror of [`HttpLimits`](crate::http::HttpLimits).
#[derive(Debug, Clone, Copy)]
pub struct ClientLimits {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-`read(2)` timeout while draining the response.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Wall-clock budget for one complete request/response exchange. Like
    /// the server's `request_deadline`, this is the liveness bound: the
    /// per-read timeout alone resets on every byte received.
    pub request_deadline: Duration,
    /// Maximum buffered response bytes. Served waveform rows can run to
    /// megabytes, so the default is generous — but still a hard cap, so a
    /// misbehaving peer cannot balloon client memory.
    pub max_response_bytes: usize,
}

impl Default for ClientLimits {
    fn default() -> ClientLimits {
        ClientLimits {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(30),
            max_response_bytes: 64 * 1024 * 1024,
        }
    }
}

/// A response as seen by the client: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (headers stripped).
    pub body: String,
}

/// A decoded server error envelope (`{"error":{"code","message",...}}`)
/// plus the HTTP status it rode in on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code (4xx/5xx).
    pub status: u16,
    /// The server's stable machine-readable error code (`overloaded`,
    /// `bad_json`, `trace_disabled`, …), or `"unknown"` when the body did
    /// not carry the envelope.
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// Index of the offending job within the submitted manifest, when the
    /// server attributed the error to one job.
    pub job: Option<u64>,
    /// 1-based deck line, for errors pointing into a SPICE deck.
    pub line: Option<u64>,
    /// 1-based deck column, for errors pointing into a SPICE deck.
    pub col: Option<u64>,
}

/// Why a client request failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed: connect refused, reset, timed out. The
    /// coordinator treats this class as "worker may be down".
    Io(std::io::Error),
    /// The peer answered, but not in the protocol's framing (bad status
    /// line, response over the size cap, deadline expired mid-response).
    Protocol(String),
    /// The server answered with a structured error status.
    Api(ApiError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Api(e) => {
                write!(f, "server {}: {} ({})", e.status, e.message, e.code)?;
                if let Some(k) = e.job {
                    write!(f, " [job {k}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Decodes a non-2xx response body into an [`ApiError`]. Bodies that do
/// not carry the envelope (or are not JSON at all) still produce a usable
/// error with code `"unknown"` and the raw body as message.
pub fn decode_api_error(status: u16, body: &str) -> ApiError {
    let fallback = |body: &str| ApiError {
        status,
        code: "unknown".to_owned(),
        message: body.trim().to_owned(),
        job: None,
        line: None,
        col: None,
    };
    let Ok(doc) = Json::parse(body) else {
        return fallback(body);
    };
    let Some(err) = doc.get("error") else {
        return fallback(body);
    };
    let field = |k: &str| err.get(k).and_then(Json::as_f64).map(|x| x as u64);
    ApiError {
        status,
        code: err
            .get("code")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_owned(),
        message: err
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned(),
        job: field("job"),
        line: field("line"),
        col: field("col"),
    }
}

/// A blocking client bound to one server address.
///
/// Every method opens a fresh connection (the protocol is one request per
/// connection), so a `WireClient` is freely shareable across threads —
/// the coordinator keeps one per worker and calls it from the submit
/// path, the health prober, and the drain loop concurrently.
#[derive(Debug, Clone)]
pub struct WireClient {
    addr: String,
    limits: ClientLimits,
}

impl WireClient {
    /// A client for `addr` (`"127.0.0.1:8707"` or anything resolvable)
    /// with default [`ClientLimits`].
    pub fn new(addr: impl Into<String>) -> WireClient {
        WireClient {
            addr: addr.into(),
            limits: ClientLimits::default(),
        }
    }

    /// Replaces the client's limits (builder style).
    pub fn limits(mut self, limits: ClientLimits) -> WireClient {
        self.limits = limits;
        self
    }

    /// The address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Performs one raw request and returns whatever status the server
    /// answered — no error-envelope decoding. This is the transport
    /// primitive under every typed method; tests that assert on 4xx
    /// statuses use it directly.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure, [`ClientError::Protocol`]
    /// on framing violations (never [`ClientError::Api`]).
    pub fn call(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, ClientError> {
        let start = Instant::now();
        let addr: SocketAddr = self
            .addr
            .to_socket_addrs()
            .map_err(ClientError::Io)?
            .next()
            .ok_or_else(|| ClientError::Protocol(format!("{:?} resolves to nothing", self.addr)))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.limits.connect_timeout)?;
        stream.set_read_timeout(Some(self.limits.read_timeout))?;
        stream.set_write_timeout(Some(self.limits.write_timeout))?;

        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: fts\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes())?;
        stream.flush()?;

        // Drain to EOF in bounded chunks, checking the wall-clock deadline
        // between reads — the per-read timeout alone resets on every byte,
        // so a dripping peer needs the same slow-loris defense the server
        // applies to us.
        let mut raw = Vec::with_capacity(1024);
        let mut chunk = [0u8; 8 * 1024];
        loop {
            if start.elapsed() >= self.limits.request_deadline {
                return Err(ClientError::Protocol(format!(
                    "response exceeded the {:?} request deadline",
                    self.limits.request_deadline
                )));
            }
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    raw.extend_from_slice(&chunk[..n]);
                    if raw.len() > self.limits.max_response_bytes {
                        return Err(ClientError::Protocol(format!(
                            "response exceeds {} bytes",
                            self.limits.max_response_bytes
                        )));
                    }
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
        let raw = String::from_utf8(raw)
            .map_err(|_| ClientError::Protocol("response is not UTF-8".into()))?;
        parse_response(&raw)
            .ok_or_else(|| ClientError::Protocol(format!("malformed response {raw:?}")))
    }

    /// [`call`](WireClient::call), with non-2xx statuses decoded into
    /// [`ClientError::Api`].
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, ClientError> {
        let resp = self.call(method, path, body)?;
        if resp.status >= 400 {
            return Err(ClientError::Api(decode_api_error(resp.status, &resp.body)));
        }
        Ok(resp)
    }

    /// `POST /v1/jobs` with a rendered manifest document; returns the
    /// admitted job ids in manifest order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] carries the server's structured `400`
    /// (validation), `429` (overloaded), or `503` (draining) envelope.
    pub fn submit_manifest(&self, manifest_json: &str) -> Result<Vec<u64>, ClientError> {
        let resp = self.request("POST", "/v1/jobs", Some(manifest_json))?;
        extract_ids(&resp.body)
    }

    /// [`submit_manifest`](WireClient::submit_manifest) for a typed
    /// manifest, rendered through
    /// [`BatchManifest::to_json`](crate::wire::BatchManifest::to_json).
    ///
    /// # Errors
    ///
    /// Same as [`submit_manifest`](WireClient::submit_manifest).
    pub fn submit(&self, manifest: &crate::wire::BatchManifest) -> Result<Vec<u64>, ClientError> {
        self.submit_manifest(&manifest.to_json())
    }

    /// `POST /v1/decks` with a raw SPICE deck; returns one job id per
    /// analysis card.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; deck errors carry line/column in the envelope.
    pub fn submit_deck(&self, deck: &str) -> Result<Vec<u64>, ClientError> {
        let resp = self.request("POST", "/v1/decks", Some(deck))?;
        extract_ids(&resp.body)
    }

    /// `GET /v1/jobs/{id}`: the job's status document.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with status 404 for unknown/evicted ids.
    pub fn status(&self, id: u64) -> Result<String, ClientError> {
        Ok(self.request("GET", &format!("/v1/jobs/{id}"), None)?.body)
    }

    /// Polls [`status`](WireClient::status) every `poll` until the job
    /// reports `"status":"done"`, returning the final document.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the underlying polls.
    pub fn wait_done(&self, id: u64, poll: Duration) -> Result<String, ClientError> {
        loop {
            let body = self.status(id)?;
            if body.contains("\"status\":\"done\"") {
                return Ok(body);
            }
            std::thread::sleep(poll);
        }
    }

    /// `GET /v1/jobs?state=&cursor=&limit=`: the bounded job listing.
    /// `None` arguments are omitted (server defaults apply).
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with a structured 400 on bad filter values.
    pub fn list(
        &self,
        state: Option<&str>,
        cursor: Option<u64>,
        limit: Option<usize>,
    ) -> Result<String, ClientError> {
        let mut query = Vec::new();
        if let Some(s) = state {
            query.push(format!("state={s}"));
        }
        if let Some(c) = cursor {
            query.push(format!("cursor={c}"));
        }
        if let Some(n) = limit {
            query.push(format!("limit={n}"));
        }
        let path = if query.is_empty() {
            "/v1/jobs".to_owned()
        } else {
            format!("/v1/jobs?{}", query.join("&"))
        };
        Ok(self.request("GET", &path, None)?.body)
    }

    /// `DELETE /v1/jobs/{id}`: requests cooperative cancellation.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with status 404 for unknown/evicted ids.
    pub fn cancel(&self, id: u64) -> Result<String, ClientError> {
        Ok(self
            .request("DELETE", &format!("/v1/jobs/{id}"), None)?
            .body)
    }

    /// `GET /v1/jobs/{id}/trace`: the flight-recorder journal (`chrome`
    /// selects the Chrome trace-event rendering).
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] 404 with code `trace_disabled` when the server
    /// runs with tracing off, plain 404 for unknown ids.
    pub fn trace(&self, id: u64, chrome: bool) -> Result<String, ClientError> {
        let path = if chrome {
            format!("/v1/jobs/{id}/trace?format=chrome")
        } else {
            format!("/v1/jobs/{id}/trace")
        };
        Ok(self.request("GET", &path, None)?.body)
    }

    /// `GET /healthz`: the liveness document.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn healthz(&self) -> Result<String, ClientError> {
        Ok(self.request("GET", "/healthz", None)?.body)
    }

    /// `GET /metrics`: the Prometheus-style text exposition.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn metrics(&self) -> Result<String, ClientError> {
        Ok(self.request("GET", "/metrics", None)?.body)
    }

    /// `GET /v1/cache`: result-cache statistics (`entries`, `bytes`,
    /// `hits`, `misses`, `evictions`, `hit_ratio`). On a coordinator the
    /// top-level numbers aggregate the whole fleet.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn cache_stats(&self) -> Result<String, ClientError> {
        Ok(self.request("GET", "/v1/cache", None)?.body)
    }

    /// `DELETE /v1/cache`: drop every cached result (cumulative counters
    /// survive). On a coordinator the flush fans out to every worker.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn cache_flush(&self) -> Result<String, ClientError> {
        Ok(self.request("DELETE", "/v1/cache", None)?.body)
    }

    /// `POST /v1/shutdown`: requests a graceful drain. On a coordinator
    /// this cascades to the worker fleet once every in-flight job is done.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn shutdown(&self) -> Result<String, ClientError> {
        Ok(self.request("POST", "/v1/shutdown", None)?.body)
    }
}

/// Splits a raw `Connection: close` response into status and body.
pub fn parse_response(raw: &str) -> Option<ClientResponse> {
    let status: u16 = raw.split(' ').nth(1)?.parse().ok()?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Some(ClientResponse { status, body })
}

/// Reads the `"ids"` array out of an admission response body.
fn extract_ids(body: &str) -> Result<Vec<u64>, ClientError> {
    let doc = Json::parse(body)
        .map_err(|e| ClientError::Protocol(format!("admission body is not JSON: {e}")))?;
    let ids = doc
        .get("ids")
        .and_then(Json::as_array)
        .ok_or_else(|| ClientError::Protocol(format!("admission body lacks ids: {body}")))?;
    ids.iter()
        .map(|v| {
            v.as_f64()
                .map(|x| x as u64)
                .ok_or_else(|| ClientError::Protocol(format!("non-numeric id in {body}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let r = parse_response("HTTP/1.1 429 Too Many Requests\r\nA: b\r\n\r\n{\"x\":1}").unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.body, "{\"x\":1}");
        assert!(parse_response("garbage").is_none());
    }

    #[test]
    fn decodes_the_error_envelope() {
        let e = decode_api_error(
            400,
            r#"{"schema_version":1,"error":{"code":"bad_json","message":"nope","job":2,"line":3,"col":7}}"#,
        );
        assert_eq!(e.status, 400);
        assert_eq!(e.code, "bad_json");
        assert_eq!(e.message, "nope");
        assert_eq!((e.job, e.line, e.col), (Some(2), Some(3), Some(7)));

        // Non-envelope bodies degrade to code "unknown", not a panic.
        let e = decode_api_error(502, "Bad Gateway");
        assert_eq!(e.code, "unknown");
        assert_eq!(e.message, "Bad Gateway");
        let e = decode_api_error(500, "{\"oops\":true}");
        assert_eq!(e.code, "unknown");
    }

    #[test]
    fn extract_ids_requires_the_ids_array() {
        assert_eq!(
            extract_ids("{\"schema_version\":1,\"ids\":[0,5]}").unwrap(),
            vec![0, 5]
        );
        assert!(extract_ids("{\"schema_version\":1}").is_err());
        assert!(extract_ids("not json").is_err());
    }

    #[test]
    fn connect_to_a_dead_port_is_an_io_error() {
        // Bind-then-drop guarantees an unused port.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = WireClient::new(addr.to_string()).limits(ClientLimits {
            connect_timeout: Duration::from_millis(500),
            ..ClientLimits::default()
        });
        match client.healthz() {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
