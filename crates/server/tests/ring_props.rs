//! Properties of the coordinator's consistent-hash ring.
//!
//! 1. **Determinism across restarts** — the ring is a pure function of
//!    the worker address list, so two independently constructed rings
//!    (a coordinator and its restarted twin) route every key to the
//!    same worker and produce the same failover order.
//! 2. **Bounded remapping** — growing N workers to N+1 (or removing
//!    one) moves only the keys on the arcs the changed worker owns:
//!    about K/(N+1) of K keys, bounded here at 3× the fair share to
//!    leave room for vnode placement variance at small N.
//! 3. **Stability of survivors** — keys that did *not* route to a
//!    removed worker keep their assignment exactly.

use proptest::prelude::*;

use fts_server::HashRing;

fn addrs(n: usize, port_base: u16) -> Vec<String> {
    (0..n)
        .map(|i| format!("10.0.0.{}:{}", (i % 200) + 1, port_base + i as u16))
        .collect()
}

proptest! {
    #[test]
    fn routing_is_deterministic_across_rebuilds(n in 1usize..9, port in 1024u16..60000, keys in 1u64..2000) {
        let workers = addrs(n, port);
        let a = HashRing::new(&workers);
        let b = HashRing::new(&workers);
        for id in 0..keys {
            let key = HashRing::key_for_id(id);
            prop_assert_eq!(a.route(key), b.route(key));
            prop_assert_eq!(a.candidates(key), b.candidates(key));
        }
    }

    #[test]
    fn adding_a_worker_remaps_a_bounded_fraction(n in 1usize..8, port in 1024u16..60000) {
        const K: u64 = 4000;
        let before = HashRing::new(&addrs(n, port));
        let after = HashRing::new(&addrs(n + 1, port));
        let mut moved = 0u64;
        for id in 0..K {
            let key = HashRing::key_for_id(id);
            let (a, b) = (before.route(key).unwrap(), after.route(key).unwrap());
            // The new worker is the last index; a key may only change
            // owner by moving TO it.
            if a != b {
                prop_assert_eq!(b, n, "key moved between pre-existing workers");
                moved += 1;
            }
        }
        let fair = K / (n as u64 + 1);
        prop_assert!(
            moved <= 3 * fair,
            "adding worker {} of {} moved {moved}/{K} keys (fair share {fair})",
            n + 1,
            n + 1
        );
    }

    #[test]
    fn removing_a_worker_only_reroutes_its_own_keys(n in 2usize..9, port in 1024u16..60000, drop_idx in 0usize..8) {
        let drop_idx = drop_idx % n;
        let full_addrs = addrs(n, port);
        let full = HashRing::new(&full_addrs);
        let mut reduced_addrs = full_addrs.clone();
        reduced_addrs.remove(drop_idx);
        let reduced = HashRing::new(&reduced_addrs);

        for id in 0..2000u64 {
            let key = HashRing::key_for_id(id);
            let before = full.route(key).unwrap();
            let after = reduced.route(key).unwrap();
            // Map the reduced ring's index back to the full address list.
            let after_addr = &reduced_addrs[after];
            if before != drop_idx {
                // Survivor keys keep their worker exactly.
                prop_assert_eq!(
                    &full_addrs[before],
                    after_addr,
                    "key {} moved although its worker survived",
                    id
                );
            } else {
                prop_assert_ne!(after_addr, &full_addrs[drop_idx]);
            }
        }
    }

    #[test]
    fn candidates_are_a_permutation_starting_at_route(n in 1usize..9, port in 1024u16..60000, id in 0u64..100000) {
        let ring = HashRing::new(&addrs(n, port));
        let key = HashRing::key_for_id(id);
        let c = ring.candidates(key);
        prop_assert_eq!(c.len(), n);
        prop_assert_eq!(c[0], ring.route(key).unwrap());
        let mut sorted = c.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
