//! End-to-end flight-recorder tests against a live in-process server: a
//! deliberately hard-to-converge (near-singular, nonlinear) job whose
//! journal must come back ordered and bounded, a deadline-killed job
//! whose journal must record the deadline, and the live per-endpoint
//! `/metrics` series the trace traffic itself generates.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use fts_engine::SimJob;
use fts_server::service::{BuiltJob, JobBuilder};
use fts_server::testing::http_call;
use fts_server::wire::{JobSource, JobSpec, Json, WireError};
use fts_server::{Server, ServerConfig, ShutdownReport};
use fts_spice::analysis::TranConfig;
use fts_spice::netlist::{MosParams, Netlist, Waveform};

/// Two test circuits:
///
/// * `"hard"` — a cross-coupled NMOS pair behind 1 GΩ pull-ups: the MNA
///   matrix mixes ~1e-9 S pull-up conductances with the transistors'
///   on-conductance, near-singular enough that Newton has to work for
///   its convergence (and the homotopy ladder is exercised under
///   `"retry": "ladder"`).
/// * `"slow"` — a 100k-step RC transient, used with a short
///   `deadline_ms` so the deadline path shows up in the journal.
struct TraceBuilder;

impl JobBuilder for TraceBuilder {
    fn build(&self, spec: &JobSpec, index: usize) -> Result<BuiltJob, WireError> {
        let JobSource::Function { name, .. } = &spec.source else {
            unreachable!("deck jobs are lowered by build_job, not the builder");
        };
        let mut nl = Netlist::new();
        match name.as_str() {
            "hard" => {
                let vdd = nl.node("vdd");
                let q = nl.node("q");
                let qb = nl.node("qb");
                nl.vsource("V1", vdd, Netlist::GROUND, Waveform::Dc(5.0))
                    .unwrap();
                nl.resistor("R1", vdd, q, 1e9).unwrap();
                nl.resistor("R2", vdd, qb, 1e9).unwrap();
                let mos = MosParams {
                    kp: 2e-5,
                    vth: 0.7,
                    lambda: 0.01,
                    w_over_l: 10.0,
                };
                nl.nmos("M1", q, qb, Netlist::GROUND, mos).unwrap();
                nl.nmos("M2", qb, q, Netlist::GROUND, mos).unwrap();
                Ok(BuiltJob {
                    job: SimJob::op(nl),
                    out: q,
                })
            }
            "slow" => {
                let a = nl.node("a");
                let out = nl.node("out");
                nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))
                    .unwrap();
                nl.resistor("R1", a, out, 1e4).unwrap();
                nl.capacitor("C1", out, Netlist::GROUND, 1e-9).unwrap();
                Ok(BuiltJob {
                    job: SimJob::transient(nl, TranConfig::fixed(1e-8, 1e-3))
                        .probes(&[out])
                        .max_samples(64),
                    out,
                })
            }
            other => Err(WireError::job(
                "unknown_function",
                index,
                format!("unknown function {other:?}"),
            )),
        }
    }
}

type ServerThread = std::thread::JoinHandle<std::io::Result<ShutdownReport>>;

fn start_server(config: ServerConfig) -> (SocketAddr, fts_server::ServerHandle, ServerThread) {
    let server = Server::bind(config, Arc::new(TraceBuilder)).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, handle, thread)
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 64,
        conn_workers: 2,
        ..ServerConfig::default()
    }
}

fn submit(addr: SocketAddr, body: &str) -> u64 {
    let resp = http_call(addr, "POST", "/v1/jobs", Some(body)).expect("submit");
    assert_eq!(resp.status, 202, "{}", resp.body);
    Json::parse(&resp.body)
        .unwrap()
        .get("ids")
        .and_then(Json::as_array)
        .unwrap()[0]
        .as_f64()
        .unwrap() as u64
}

fn wait_done(addr: SocketAddr, id: u64) -> String {
    loop {
        let resp = http_call(addr, "GET", &format!("/v1/jobs/{id}"), None).expect("status");
        assert_eq!(resp.status, 200, "{}", resp.body);
        if resp.body.contains("\"status\":\"done\"") {
            return resp.body;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn fetch_journal(addr: SocketAddr, id: u64) -> Json {
    let resp = http_call(addr, "GET", &format!("/v1/jobs/{id}/trace"), None).expect("trace");
    assert_eq!(resp.status, 200, "{}", resp.body);
    Json::parse(&resp.body).expect("journal parses through wire Json")
}

fn event_kinds(journal: &Json) -> Vec<String> {
    journal
        .get("events")
        .and_then(Json::as_array)
        .expect("events array")
        .iter()
        .map(|e| {
            e.get("kind")
                .and_then(Json::as_str)
                .expect("kind")
                .to_owned()
        })
        .collect()
}

#[test]
fn hard_job_journal_is_present_ordered_and_bounded() {
    let (addr, handle, thread) = start_server(test_config());
    let id = submit(
        addr,
        r#"{"jobs":[{"function":"hard","retry":"ladder","label":"latch"}]}"#,
    );
    wait_done(addr, id);

    let journal = fetch_journal(addr, id);
    assert_eq!(
        journal.get("schema").and_then(Json::as_str),
        Some("fts-trace/1")
    );
    assert_eq!(
        journal.get("schema_version").and_then(Json::as_f64),
        Some(2.0)
    );
    assert_eq!(journal.get("id").and_then(Json::as_f64), Some(id as f64));
    assert_eq!(journal.get("label").and_then(Json::as_str), Some("latch"));
    assert_eq!(journal.get("status").and_then(Json::as_str), Some("done"));

    // Bounded: the journal can never exceed its declared ring capacity.
    let capacity = journal.get("capacity").and_then(Json::as_f64).unwrap() as usize;
    let events = journal.get("events").and_then(Json::as_array).unwrap();
    assert!(!events.is_empty(), "journal must not be empty");
    assert!(events.len() <= capacity, "{} > {capacity}", events.len());

    // Present: the solver stack's events made it through HTTP → engine →
    // spice and back.
    let kinds = event_kinds(&journal);
    assert_eq!(kinds.first().map(String::as_str), Some("attempt"));
    assert_eq!(kinds.last().map(String::as_str), Some("job_done"));
    assert!(
        kinds.iter().any(|k| k == "homotopy_step"),
        "no homotopy events in {kinds:?}"
    );
    assert!(
        kinds
            .iter()
            .any(|k| k == "newton_converged" || k == "newton_diverged"),
        "no Newton events in {kinds:?}"
    );

    // Ordered: timestamps are monotone and every event is well-typed.
    let mut last_t = f64::NEG_INFINITY;
    for ev in events {
        let t = ev.get("t_us").and_then(Json::as_f64).expect("t_us number");
        assert!(t >= last_t, "timestamps must be monotone");
        last_t = t;
        assert!(ev.get("attempt").and_then(Json::as_f64).is_some());
        assert!(ev.get("detail").and_then(Json::as_str).is_some());
        assert!(ev.get("a").is_some() && ev.get("b").is_some());
    }

    // The Chrome rendering parses and carries both spans and instants.
    let resp = http_call(
        addr,
        "GET",
        &format!("/v1/jobs/{id}/trace?format=chrome"),
        None,
    )
    .expect("chrome trace");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let chrome = Json::parse(&resp.body).expect("chrome JSON parses");
    let trace_events = chrome
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents");
    let phases: Vec<&str> = trace_events
        .iter()
        .filter_map(|e| e.get("ph").and_then(Json::as_str))
        .collect();
    assert!(phases.contains(&"X"), "no attempt spans in {phases:?}");
    assert!(phases.contains(&"i"), "no instants in {phases:?}");

    // The trace traffic itself shows up in the live per-endpoint series.
    let resp = http_call(addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(resp.status, 200);
    assert!(
        resp.body.contains(
            "fts_http_requests_total{method=\"GET\",path=\"/v1/jobs/{id}/trace\",status=\"200\"}"
        ),
        "{}",
        resp.body
    );
    assert!(resp.body.contains("fts_http_latency_window_count"));

    // And /healthz reports uptime plus per-state job counts.
    let resp = http_call(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(resp.status, 200);
    let health = Json::parse(&resp.body).expect("healthz parses");
    assert!(health.get("uptime_s").and_then(Json::as_f64).unwrap() >= 0.0);
    let jobs = health.get("jobs").expect("jobs object");
    assert_eq!(jobs.get("completed").and_then(Json::as_f64), Some(1.0));

    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn deadline_killed_job_records_the_deadline_event() {
    let (addr, handle, thread) = start_server(test_config());
    let id = submit(addr, r#"{"jobs":[{"function":"slow","deadline_ms":5}]}"#);
    let status = wait_done(addr, id);
    assert!(
        status.contains("\"kind\":\"deadline_exceeded\""),
        "job should die on its deadline: {status}"
    );

    let journal = fetch_journal(addr, id);
    let kinds = event_kinds(&journal);
    assert!(
        kinds.iter().any(|k| k == "deadline"),
        "no deadline event in {kinds:?}"
    );
    assert_eq!(kinds.last().map(String::as_str), Some("job_done"));

    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn disabled_tracing_is_a_distinguishable_404() {
    let config = ServerConfig {
        trace_events: 0,
        ..test_config()
    };
    let (addr, handle, thread) = start_server(config);
    let id = submit(addr, r#"{"jobs":[{"function":"hard"}]}"#);
    wait_done(addr, id);

    // The job exists, but its recorder was never minted.
    let resp = http_call(addr, "GET", &format!("/v1/jobs/{id}/trace"), None).expect("trace");
    assert_eq!(resp.status, 404, "{}", resp.body);
    assert!(
        resp.body.contains("\"code\":\"trace_disabled\""),
        "{}",
        resp.body
    );

    // An id the registry never saw stays a plain not-found.
    let resp = http_call(addr, "GET", "/v1/jobs/999/trace", None).expect("trace");
    assert_eq!(resp.status, 404, "{}", resp.body);
    assert!(
        resp.body.contains("\"code\":\"not_found\""),
        "{}",
        resp.body
    );

    handle.shutdown();
    thread.join().unwrap().unwrap();
}
