//! End-to-end HTTP tests against a live in-process server: protocol
//! abuse (malformed lines, oversized heads/bodies, truncated JSON,
//! dropped connections), the cancel-vs-complete race, and the
//! shutdown-drains-in-flight-jobs guarantee.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use fts_engine::SimJob;
use fts_server::service::{BuiltJob, JobBuilder};
use fts_server::testing::{http_call, parse_response, ClientResponse};
use fts_server::wire::{JobSource, JobSpec, Json, WireError};
use fts_server::{HttpLimits, Server, ServerConfig, ShutdownReport};
use fts_spice::analysis::TranConfig;
use fts_spice::netlist::{MosParams, Netlist, Waveform};

/// Builds a fast DC divider (`"divider"`), a deliberately slow 100k-step
/// RC transient (`"slow"` — gives shutdown and cancellation something to
/// race against), or a parametrized nonlinear NMOS inverter
/// (`"inv<mv>"`, e.g. `"inv2000"` for a 2.0 V supply — same topology at
/// every supply, so the cache's warm-start index kicks in).
struct TestBuilder;

impl JobBuilder for TestBuilder {
    fn build(&self, spec: &JobSpec, index: usize) -> Result<BuiltJob, WireError> {
        let JobSource::Function { name, .. } = &spec.source else {
            unreachable!("deck jobs are lowered by build_job, not the builder");
        };
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let out = nl.node("out");
        match name.as_str() {
            "divider" => {
                nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(2.0))
                    .unwrap();
                nl.resistor("R1", a, out, 1e3).unwrap();
                nl.resistor("R2", out, Netlist::GROUND, 1e3).unwrap();
                Ok(BuiltJob {
                    job: SimJob::op(nl),
                    out,
                })
            }
            "slow" => {
                nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0))
                    .unwrap();
                nl.resistor("R1", a, out, 1e4).unwrap();
                nl.capacitor("C1", out, Netlist::GROUND, 1e-9).unwrap();
                Ok(BuiltJob {
                    job: SimJob::transient(nl, TranConfig::fixed(1e-8, 1e-3))
                        .probes(&[out])
                        .max_samples(64),
                    out,
                })
            }
            name if name.starts_with("inv") => {
                let mv: f64 = name[3..].parse().map_err(|_| {
                    WireError::job("unknown_function", index, format!("bad inv name {name:?}"))
                })?;
                nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(mv / 1000.0))
                    .unwrap();
                nl.resistor("R1", a, out, 1e4).unwrap();
                let mos = MosParams {
                    kp: 2e-5,
                    vth: 0.7,
                    lambda: 0.01,
                    w_over_l: 10.0,
                };
                nl.nmos("M1", out, a, Netlist::GROUND, mos).unwrap();
                Ok(BuiltJob {
                    job: SimJob::op(nl),
                    out,
                })
            }
            other => Err(WireError::job(
                "unknown_function",
                index,
                format!("unknown function {other:?}"),
            )),
        }
    }
}

type ServerThread = std::thread::JoinHandle<std::io::Result<ShutdownReport>>;

fn start_server(config: ServerConfig) -> (SocketAddr, fts_server::ServerHandle, ServerThread) {
    let server = Server::bind(config, Arc::new(TestBuilder)).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, handle, thread)
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 64,
        conn_workers: 2,
        ..ServerConfig::default()
    }
}

/// Sends raw bytes and reads the raw response (empty if the server wrote
/// nothing before closing).
fn raw_call(addr: SocketAddr, bytes: &[u8]) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).expect("write");
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw);
    parse_response(&raw).unwrap_or(ClientResponse {
        status: 0,
        body: raw,
    })
}

fn submit_divider(addr: SocketAddr, n: usize) -> Vec<u64> {
    let jobs: Vec<String> = (0..n).map(|_| r#"{"function":"divider"}"#.into()).collect();
    let body = format!("{{\"jobs\":[{}]}}", jobs.join(","));
    let resp = http_call(addr, "POST", "/v1/jobs", Some(&body)).expect("submit");
    assert_eq!(resp.status, 202, "{}", resp.body);
    Json::parse(&resp.body)
        .unwrap()
        .get("ids")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap() as u64)
        .collect()
}

fn wait_done(addr: SocketAddr, id: u64) -> String {
    loop {
        let resp = http_call(addr, "GET", &format!("/v1/jobs/{id}"), None).expect("status");
        assert_eq!(resp.status, 200, "{}", resp.body);
        if resp.body.contains("\"status\":\"done\"") {
            return resp.body;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn protocol_abuse_maps_to_precise_statuses() {
    let (addr, handle, thread) = start_server(test_config());

    // Malformed request lines → 400.
    for bad in [
        "NOT-HTTP\r\n\r\n",
        "GET /healthz SPAM HTTP/1.1\r\n\r\n",
        "GET healthz HTTP/1.1\r\n\r\n",
        "GET / HTTP/0.9\r\n\r\n",
    ] {
        let resp = raw_call(addr, bad.as_bytes());
        assert_eq!(resp.status, 400, "for {bad:?}: {}", resp.body);
        assert!(
            resp.body.contains("\"code\":\"bad_request\""),
            "{}",
            resp.body
        );
    }

    // Malformed header line → 400.
    let resp = raw_call(addr, b"GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n");
    assert_eq!(resp.status, 400, "{}", resp.body);

    // Oversized request head → 431 (pad past max_head_bytes).
    let mut big = String::from("GET /healthz HTTP/1.1\r\n");
    while big.len() <= 16 * 1024 {
        big.push_str("X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    big.push_str("\r\n");
    let resp = raw_call(addr, big.as_bytes());
    assert_eq!(resp.status, 431, "{}", resp.body);

    // Too many header lines → 431.
    let mut many = String::from("GET /healthz HTTP/1.1\r\n");
    for k in 0..80 {
        many.push_str(&format!("X-H{k}: v\r\n"));
    }
    many.push_str("\r\n");
    let resp = raw_call(addr, many.as_bytes());
    assert_eq!(resp.status, 431, "{}", resp.body);

    // Declared body over the limit → 413, before any body bytes are read.
    let resp = raw_call(
        addr,
        b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n",
    );
    assert_eq!(resp.status, 413, "{}", resp.body);
    assert!(resp.body.contains("\"code\":\"payload_too_large\""));

    // Present-but-unparseable Content-Length → 400 (RFC 9110; 411 would
    // mean the header is missing).
    for bad_len in ["banana", "-5"] {
        let resp = raw_call(
            addr,
            format!("POST /v1/jobs HTTP/1.1\r\nContent-Length: {bad_len}\r\n\r\n").as_bytes(),
        );
        assert_eq!(resp.status, 400, "for {bad_len:?}: {}", resp.body);
        assert!(
            resp.body.contains("\"code\":\"bad_request\""),
            "{}",
            resp.body
        );
    }

    // Unknown route → 404; known route, wrong method → 405; bad id → 400.
    assert_eq!(http_call(addr, "GET", "/nope", None).unwrap().status, 404);
    assert_eq!(
        http_call(addr, "PUT", "/v1/jobs", None).unwrap().status,
        405
    );
    assert_eq!(
        http_call(addr, "POST", "/healthz", None).unwrap().status,
        405
    );
    assert_eq!(
        http_call(addr, "GET", "/v1/jobs/999", None).unwrap().status,
        404
    );
    assert_eq!(
        http_call(addr, "GET", "/v1/jobs/abc", None).unwrap().status,
        400
    );

    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn truncated_json_is_a_structured_400() {
    let (addr, handle, thread) = start_server(test_config());

    let resp = http_call(addr, "POST", "/v1/jobs", Some(r#"{"jobs":[{"funct"#)).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("\"schema_version\":2"), "{}", resp.body);
    assert!(resp.body.contains("\"code\":\"bad_json\""), "{}", resp.body);

    // Valid JSON, invalid manifest shape → structured 400 too.
    let resp = http_call(addr, "POST", "/v1/jobs", Some(r#"{"jobs":{}}"#)).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);

    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn deeply_nested_json_is_a_structured_400() {
    let (addr, handle, thread) = start_server(test_config());

    // ~20k nested arrays would overflow the connection worker's stack if
    // the parser recursed unboundedly; the depth cap makes it a 400.
    let bomb = "[".repeat(20_000);
    let resp = http_call(addr, "POST", "/v1/jobs", Some(&bomb)).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("\"code\":\"bad_json\""), "{}", resp.body);
    assert!(resp.body.contains("nesting"), "{}", resp.body);

    // The worker that parsed the bomb still serves.
    let resp = http_call(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn slow_loris_hits_the_request_deadline() {
    let config = ServerConfig {
        limits: HttpLimits {
            request_deadline: Duration::from_millis(250),
            ..HttpLimits::default()
        },
        ..test_config()
    };
    let (addr, handle, thread) = start_server(config);

    // Drip one byte at a time, slower than the deadline in total but far
    // faster than the per-read timeout — only the overall wall-clock
    // deadline can end this request.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for b in b"GET /healthz HTTP/1.1" {
        if s.write_all(&[*b]).is_err() {
            break; // server already gave up on us
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    let resp = parse_response(&raw).expect("deadline response");
    assert_eq!(resp.status, 408, "{raw}");
    assert!(resp.body.contains("\"code\":\"timeout\""), "{}", resp.body);

    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn finished_results_are_evicted_beyond_retention() {
    let config = ServerConfig {
        cache_entries: 2,
        workers: 1, // in-order completion → deterministic eviction order
        ..test_config()
    };
    let (addr, handle, thread) = start_server(config);

    let ids = submit_divider(addr, 5);
    wait_done(addr, ids[4]);

    // Only the two most recently completed results survive.
    for &id in &ids[..3] {
        let resp = http_call(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(resp.status, 404, "id {id}: {}", resp.body);
    }
    for &id in &ids[3..] {
        let resp = http_call(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(resp.status, 200, "id {id}: {}", resp.body);
        assert!(resp.body.contains("\"status\":\"done\""), "{}", resp.body);
    }

    handle.shutdown();
    let report = thread.join().unwrap().unwrap();
    // Eviction bounds retained rows, not the completion count.
    assert_eq!(report.jobs_completed, 5);
}

/// Extracts the raw `"result":{…}` object bytes from a status document —
/// byte identity between cached and cold responses is asserted on these
/// bytes, not on a parse/re-render round trip.
fn result_bytes(body: &str) -> &str {
    let start = body.find("\"result\":").expect("result member") + "\"result\":".len();
    let bytes = &body.as_bytes()[start..];
    let (mut depth, mut in_string, mut escaped) = (0usize, false, false);
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            _ if escaped => escaped = false,
            b'\\' if in_string => escaped = true,
            b'"' => in_string = !in_string,
            b'{' if !in_string => depth += 1,
            b'}' if !in_string => {
                depth -= 1;
                if depth == 0 {
                    return &body[start..=start + i];
                }
            }
            _ => {}
        }
    }
    panic!("unterminated result object in {body}");
}

fn out_v_of(body: &str) -> f64 {
    Json::parse(body)
        .unwrap()
        .get("job")
        .and_then(|j| j.get("result"))
        .and_then(|r| r.get("out_v"))
        .and_then(Json::as_f64)
        .expect("out_v")
}

fn submit_one(addr: SocketAddr, spec: &str) -> u64 {
    let body = format!("{{\"jobs\":[{spec}]}}");
    let resp = http_call(addr, "POST", "/v1/jobs", Some(&body)).expect("submit");
    assert_eq!(resp.status, 202, "{}", resp.body);
    Json::parse(&resp.body)
        .unwrap()
        .get("ids")
        .and_then(Json::as_array)
        .unwrap()[0]
        .as_f64()
        .unwrap() as u64
}

#[test]
fn cache_hit_serves_byte_identical_result() {
    let (addr, handle, thread) = start_server(test_config());

    // Cold run: a miss that populates the cache.
    let cold_id = submit_one(addr, r#"{"function":"divider"}"#);
    let cold = wait_done(addr, cold_id);
    assert!(cold.contains("\"cache\":{\"key\":\"cache_key/1:"), "{cold}");
    assert!(cold.contains("\"hit\":false"), "{cold}");

    // Identical resubmission: served from the cache, marked as a hit,
    // with byte-identical result bytes (and no recomputation — wall_s 0).
    let hit_id = submit_one(addr, r#"{"function":"divider"}"#);
    assert_ne!(hit_id, cold_id, "hits still mint fresh job ids");
    let hit = wait_done(addr, hit_id);
    assert!(hit.contains("\"hit\":true"), "{hit}");
    assert!(hit.contains("\"wall_s\":0"), "{hit}");
    assert_eq!(
        result_bytes(&cold),
        result_bytes(&hit),
        "hit must serve byte-identical bytes"
    );

    // Bypass: the exact legacy cold path — recomputed, never a hit, and
    // (determinism) byte-identical to what the cache stored.
    let bp_id = submit_one(addr, r#"{"function":"divider","cache":"bypass"}"#);
    let bp = wait_done(addr, bp_id);
    assert!(bp.contains("\"hit\":false"), "{bp}");
    assert_eq!(
        result_bytes(&cold),
        result_bytes(&bp),
        "bypass twin must match cold bytes"
    );

    // The stats document adds up and the flush verb empties the store
    // while the lifetime counters survive.
    let stats = http_call(addr, "GET", "/v1/cache", None).unwrap();
    assert_eq!(stats.status, 200, "{}", stats.body);
    let doc = Json::parse(&stats.body).unwrap();
    assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(2.0));
    assert!(
        doc.get("entries").and_then(Json::as_f64).unwrap() >= 1.0,
        "{}",
        stats.body
    );
    assert!(
        doc.get("bytes").and_then(Json::as_f64).unwrap() > 0.0,
        "{}",
        stats.body
    );
    assert!(
        doc.get("hits").and_then(Json::as_f64).unwrap() >= 1.0,
        "{}",
        stats.body
    );
    assert!(
        doc.get("hit_ratio").and_then(Json::as_f64).unwrap() > 0.0,
        "{}",
        stats.body
    );

    let flush = http_call(addr, "DELETE", "/v1/cache", None).unwrap();
    assert_eq!(flush.status, 200, "{}", flush.body);
    assert!(flush.body.contains("\"flushed\":true"), "{}", flush.body);
    let stats = http_call(addr, "GET", "/v1/cache", None).unwrap();
    let doc = Json::parse(&stats.body).unwrap();
    assert_eq!(
        doc.get("entries").and_then(Json::as_f64),
        Some(0.0),
        "{}",
        stats.body
    );
    assert!(
        doc.get("hits").and_then(Json::as_f64).unwrap() >= 1.0,
        "{}",
        stats.body
    );

    // After the flush the same circuit is a miss again.
    let id = submit_one(addr, r#"{"function":"divider"}"#);
    let post = wait_done(addr, id);
    assert!(post.contains("\"hit\":false"), "{post}");

    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn unknown_cache_mode_is_a_structured_400() {
    let (addr, handle, thread) = start_server(test_config());
    let resp = http_call(
        addr,
        "POST",
        "/v1/jobs",
        Some(r#"{"jobs":[{"function":"divider","cache":"sometimes"}]}"#),
    )
    .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(
        resp.body.contains("\"code\":\"unknown_cache_mode\""),
        "{}",
        resp.body
    );
    assert!(resp.body.contains("\"schema_version\":2"), "{}", resp.body);
    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn warm_started_miss_matches_cold_solution() {
    let (addr, handle, thread) = start_server(test_config());

    // Cold run at 2.0 V stores an operating point for the inverter
    // topology in the warm-start index.
    let id = submit_one(addr, r#"{"function":"inv2000"}"#);
    wait_done(addr, id);

    // Reference: 2.1 V solved completely cold (bypass never reads the
    // cache, so it can't be warm-started).
    let id = submit_one(addr, r#"{"function":"inv2100","cache":"bypass"}"#);
    let cold = wait_done(addr, id);

    // 2.1 V in default mode: a different key (miss) over the same
    // topology, so Newton is seeded from the 2.0 V solution. The seed
    // may change the iteration path but must not move the answer.
    let id = submit_one(addr, r#"{"function":"inv2100"}"#);
    let warm = wait_done(addr, id);
    assert!(warm.contains("\"hit\":false"), "{warm}");

    let (cold_v, warm_v) = (out_v_of(&cold), out_v_of(&warm));
    assert!(
        (cold_v - warm_v).abs() <= 1e-9,
        "warm-started solution drifted: cold {cold_v} vs warm {warm_v}"
    );

    // The warm run was recorded as such in telemetry.
    let resp = http_call(addr, "GET", "/metrics", None).unwrap();
    assert!(
        resp.body
            .contains("fts_histogram_count{name=\"cache.warm.newton_iterations\"}"),
        "no warm-start telemetry in:\n{}",
        resp.body
    );

    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn dropped_connections_leave_the_server_healthy() {
    let (addr, handle, thread) = start_server(test_config());

    // Drop mid-request: partial head, then close.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /v1/jobs HT").unwrap();
    }
    // Drop mid-response: full request, close without reading the reply.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let body = r#"{"jobs":[{"function":"divider"}]}"#;
        s.write_all(
            format!(
                "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
        // Closing here races the server's write; either way it must not
        // take the server down.
    }
    // Drop a declared-but-never-sent body: the read times out or sees EOF.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\n")
            .unwrap();
    }

    // The server still answers.
    let resp = http_call(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"status\":\"ok\""));

    handle.shutdown();
    let report = thread.join().unwrap().unwrap();
    // The mid-response submission may or may not have been admitted
    // (depends on when the client vanished), but nothing may be lost:
    // every admitted job completed.
    assert!(report.jobs_completed <= 1);
}

#[test]
fn healthz_metrics_and_status_lifecycle() {
    let (addr, handle, thread) = start_server(test_config());

    let ids = submit_divider(addr, 2);
    let done = wait_done(addr, ids[0]);
    assert!(done.contains("\"kind\":\"op\""), "{done}");
    let doc = Json::parse(&done).unwrap();
    let out_v = doc
        .get("job")
        .and_then(|j| j.get("result"))
        .and_then(|r| r.get("out_v"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!((out_v - 1.0).abs() < 1e-6, "divider out_v = {out_v}");
    wait_done(addr, ids[1]);

    let resp = http_call(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("fts_jobs_completed 2"), "{}", resp.body);
    assert!(resp.body.contains("fts_queue_depth 64"), "{}", resp.body);
    assert!(
        resp.body
            .contains("fts_counter{name=\"server.jobs.admitted\"}"),
        "{}",
        resp.body
    );

    handle.shutdown();
    let report = thread.join().unwrap().unwrap();
    assert_eq!(report.jobs_completed, 2);
}

#[test]
fn deck_endpoint_runs_and_reports_structured_errors() {
    let (addr, handle, thread) = start_server(test_config());

    // A raw SPICE deck body: one admitted job per analysis card, with the
    // deck's ordinal analysis labels.
    let deck = "v1 a 0 dc 2\nr1 a out 1k\nr2 out 0 1k\n.op\n.probe v(out)\n";
    let resp = http_call(addr, "POST", "/v1/decks", Some(deck)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    let ids: Vec<u64> = Json::parse(&resp.body)
        .unwrap()
        .get("ids")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap() as u64)
        .collect();
    assert_eq!(ids.len(), 1, "{}", resp.body);
    let done = wait_done(addr, ids[0]);
    assert!(done.contains("\"label\":\"op-0\""), "{done}");
    let doc = Json::parse(&done).unwrap();
    let out_v = doc
        .get("job")
        .and_then(|j| j.get("result"))
        .and_then(|r| r.get("out_v"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!((out_v - 1.0).abs() < 1e-6, "deck divider out_v = {out_v}");

    // A malformed deck answers 400 with the deck's structured error code
    // and a 1-based line/column.
    let resp = http_call(
        addr,
        "POST",
        "/v1/decks",
        Some("v1 a 0 dc 1\nr1 a b\n.op\n"),
    )
    .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    let doc = Json::parse(&resp.body).unwrap();
    let err = doc.get("error").expect("error object");
    assert!(
        err.get("code").and_then(Json::as_str).is_some(),
        "{}",
        resp.body
    );
    assert_eq!(
        err.get("line").and_then(Json::as_f64),
        Some(2.0),
        "{}",
        resp.body
    );
    assert!(
        err.get("col").and_then(Json::as_f64).is_some(),
        "{}",
        resp.body
    );

    // Wrong method on the deck route → 405.
    assert_eq!(
        http_call(addr, "GET", "/v1/decks", None).unwrap().status,
        405
    );

    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn cancel_vs_complete_race_is_consistent() {
    let (addr, handle, thread) = start_server(test_config());
    let ids = submit_divider(addr, 16);

    // Cancel every job from racing client threads while the two sim
    // workers chew through the queue.
    std::thread::scope(|scope| {
        for chunk in ids.chunks(4) {
            scope.spawn(move || {
                for &id in chunk {
                    let resp = http_call(addr, "DELETE", &format!("/v1/jobs/{id}"), None).unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    assert!(resp.body.contains("\"cancelled\":true"), "{}", resp.body);
                    let was_valid = [
                        "\"was\":\"queued\"",
                        "\"was\":\"running\"",
                        "\"was\":\"done\"",
                    ]
                    .iter()
                    .any(|w| resp.body.contains(w));
                    assert!(was_valid, "{}", resp.body);
                }
            });
        }
    });

    // Whoever won each race, the terminal state must be coherent: done,
    // with either the real result or a clean cancellation — and cancels
    // must be idempotent.
    for &id in &ids {
        let done = wait_done(addr, id);
        assert!(
            done.contains("\"kind\":\"op\"") || done.contains("\"kind\":\"cancelled\""),
            "{done}"
        );
        let again = http_call(addr, "DELETE", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(again.status, 200);
        assert!(again.body.contains("\"was\":\"done\""), "{}", again.body);
    }

    handle.shutdown();
    let report = thread.join().unwrap().unwrap();
    assert_eq!(report.jobs_completed, 16);
}

#[test]
fn shutdown_drains_in_flight_jobs() {
    let (addr, _handle, thread) = start_server(test_config());

    // Four slow transients on two workers: two run, two queue.
    let body = r#"{"jobs":[{"function":"slow"},{"function":"slow"},{"function":"slow"},{"function":"slow"}]}"#;
    let resp = http_call(addr, "POST", "/v1/jobs", Some(body)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);

    // Wait until at least one job is actually running, so shutdown races
    // real in-flight work.
    loop {
        let resp = http_call(addr, "GET", "/v1/jobs/0", None).unwrap();
        if resp.body.contains("\"status\":\"running\"") || resp.body.contains("\"status\":\"done\"")
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let resp = http_call(addr, "POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"shutting_down\":true"));

    let report = thread.join().unwrap().unwrap();
    assert_eq!(
        report.jobs_completed, 4,
        "graceful shutdown must finish every admitted job"
    );
    assert_eq!(report.submissions_rejected, 0);
    assert!(
        report.telemetry.contains("server.jobs.admitted"),
        "final telemetry report must be flushed:\n{}",
        report.telemetry
    );
}

#[test]
fn submissions_during_drain_get_503() {
    // Direct service-level check of the drain gate through HTTP is racy
    // (the accept loop stops with shutdown), so pin the 429 overload path
    // instead, which uses the same all-or-nothing admission: a queue of
    // depth 2 cannot take a 3-job manifest on top of a slow job.
    let config = ServerConfig {
        queue_depth: 2,
        workers: 1,
        ..test_config()
    };
    let (addr, handle, thread) = start_server(config);

    let slow = r#"{"jobs":[{"function":"slow"},{"function":"slow"},{"function":"slow"}]}"#;
    let resp = http_call(addr, "POST", "/v1/jobs", Some(slow)).unwrap();
    // 3 jobs > depth 2 can still be admitted if the worker already pulled
    // one off the queue; submit until we see the rejection.
    let mut saw_429 = resp.status == 429;
    for _ in 0..10 {
        if saw_429 {
            break;
        }
        let r = http_call(addr, "POST", "/v1/jobs", Some(slow)).unwrap();
        saw_429 = r.status == 429;
    }
    assert!(saw_429, "expected a 429 against queue_depth=2");

    handle.shutdown();
    let report = thread.join().unwrap().unwrap();
    assert!(report.submissions_rejected >= 1);
}
