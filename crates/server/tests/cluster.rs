//! End-to-end coordinator tests against a live in-process fleet:
//! routing, proxied status with id rewriting, listing, the unified
//! error envelope, worker-death recovery, and the cascading drain.

use std::sync::Arc;
use std::time::Duration;

use fts_engine::{Engine, SimJob};
use fts_server::service::{BuiltJob, JobBuilder};
use fts_server::wire::{outcome_json, JobSource, JobSpec, Json, WireError};
use fts_server::{
    ClientError, Coordinator, CoordinatorConfig, Server, ServerConfig, ShutdownReport, WireClient,
};
use fts_spice::netlist::{Netlist, Waveform};
use fts_spice::CancelToken;

/// The same DC divider the service tests use: out = vdd · R2/(R1+R2),
/// with the source voltage selectable per job (`divider<mv>`), so
/// different jobs have distinguishable deterministic results.
struct DividerBuilder;

fn divider_netlist(vdd: f64) -> (Netlist, fts_spice::NodeId) {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let out = nl.node("out");
    nl.vsource("V1", a, Netlist::GROUND, Waveform::Dc(vdd))
        .unwrap();
    nl.resistor("R1", a, out, 1e3).unwrap();
    nl.resistor("R2", out, Netlist::GROUND, 1e3).unwrap();
    (nl, out)
}

impl JobBuilder for DividerBuilder {
    fn build(&self, spec: &JobSpec, index: usize) -> Result<BuiltJob, WireError> {
        let JobSource::Function { name, .. } = &spec.source else {
            unreachable!("deck jobs are lowered by build_job, not the builder");
        };
        let Some(mv) = name
            .strip_prefix("divider")
            .and_then(|s| s.parse::<u32>().ok())
        else {
            return Err(WireError::job(
                "unknown_function",
                index,
                format!("unknown function {name:?}"),
            ));
        };
        let (nl, out) = divider_netlist(f64::from(mv) / 1000.0);
        Ok(BuiltJob {
            job: SimJob::op(nl),
            out,
        })
    }
}

/// The result object a direct engine run produces for `divider<mv>` —
/// the byte-identity reference for served results.
fn direct_result(mv: u32) -> String {
    let (nl, out) = divider_netlist(f64::from(mv) / 1000.0);
    let job = SimJob::op(nl);
    let (outcome, _stats) = Engine::new()
        .threads(1)
        .run_single(&job, &CancelToken::new());
    outcome_json(&outcome, out, false)
}

type ServerThread = std::thread::JoinHandle<std::io::Result<ShutdownReport>>;

fn start_worker(addr: &str) -> (String, fts_server::ServerHandle, ServerThread) {
    let server = Server::bind(
        ServerConfig {
            addr: addr.to_owned(),
            workers: 2,
            conn_workers: 2,
            ..ServerConfig::default()
        },
        Arc::new(DividerBuilder),
    )
    .expect("worker bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, handle, thread)
}

fn start_coordinator(workers: Vec<String>) -> (WireClient, fts_server::ServerHandle, ServerThread) {
    let coordinator = Coordinator::bind(
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            probe_interval: Duration::from_millis(50),
            conn_workers: 2,
            ..CoordinatorConfig::default()
        },
        Arc::new(DividerBuilder),
    )
    .expect("coordinator bind");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let handle = coordinator.handle();
    let thread = std::thread::spawn(move || coordinator.run());
    (WireClient::new(addr), handle, thread)
}

/// Submits in `"cache":"bypass"` mode: these tests assert byte-identity
/// against a cold direct engine run, so neither cache hits nor
/// warm-started Newton solves may enter the picture. (The dedicated
/// cache test below exercises default mode.)
fn submit_dividers(client: &WireClient, mvs: &[u32]) -> Vec<u64> {
    let jobs: Vec<String> = mvs
        .iter()
        .map(|mv| format!("{{\"function\":\"divider{mv}\",\"cache\":\"bypass\"}}"))
        .collect();
    client
        .submit_manifest(&format!("{{\"jobs\":[{}]}}", jobs.join(",")))
        .expect("submit")
}

const POLL: Duration = Duration::from_millis(5);

#[test]
fn coordinator_proxies_jobs_with_byte_identical_results() {
    let (w0, h0, t0) = start_worker("127.0.0.1:0");
    let (w1, h1, t1) = start_worker("127.0.0.1:0");
    let (client, coord_handle, coord_thread) = start_coordinator(vec![w0, w1]);

    let mvs: Vec<u32> = (0..8).map(|k| 1000 + 250 * k).collect();
    let ids = submit_dividers(&client, &mvs);
    assert_eq!(ids, (0..8).collect::<Vec<u64>>(), "global ids in order");

    for (&id, &mv) in ids.iter().zip(&mvs) {
        let body = client.wait_done(id, POLL).expect("wait");
        // The proxied document carries the GLOBAL id...
        assert!(body.contains(&format!("\"id\":{id},")), "{body}");
        // ...the label the coordinator pinned before forwarding...
        assert!(
            body.contains(&format!("\"label\":\"divider{mv}-")),
            "{body}"
        );
        // ...and the byte-identical result object a direct run produces.
        assert!(
            body.contains(&format!("\"result\":{}", direct_result(mv))),
            "served body diverges from direct engine run for divider{mv}:\n{body}"
        );
    }

    // Healthz shows the fleet; listing pages the registry with worker
    // attribution.
    let health = client.healthz().expect("healthz");
    assert!(health.contains("\"role\":\"coordinator\""), "{health}");
    assert!(health.contains("\"total\":2,\"up\":2"), "{health}");
    let page = client.list(Some("done"), None, Some(500)).expect("list");
    let doc = Json::parse(&page).unwrap();
    let rows = doc.get("jobs").and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), 8, "{page}");
    for row in rows {
        assert_eq!(row.get("kind").and_then(Json::as_str), Some("op"));
        assert!(row.get("worker").and_then(Json::as_str).is_some());
    }

    // Metrics: the worker-up gauge and per-worker route counters.
    let metrics = client.metrics().expect("metrics");
    assert_eq!(
        metrics
            .lines()
            .filter(|l| l.starts_with("fts_coordinator_worker_up{") && l.ends_with(" 1"))
            .count(),
        2,
        "{metrics}"
    );
    let routed: u64 = metrics
        .lines()
        .filter(|l| l.starts_with("fts_coordinator_worker_routed_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(routed, 8, "{metrics}");

    // Error envelope: a bad manifest 400s with the same WireError shape,
    // decoded by the client into a structured ApiError.
    match client.submit_manifest("{\"jobs\":[{\"function\":\"nope\"}]}") {
        Err(ClientError::Api(e)) => {
            assert_eq!(e.status, 400);
            assert_eq!(e.code, "unknown_function");
            assert_eq!(e.job, Some(0));
        }
        other => panic!("expected structured 400, got {other:?}"),
    }
    // Unknown id → envelope 404; bad listing cursor → envelope 400.
    match client.status(999) {
        Err(ClientError::Api(e)) => assert_eq!((e.status, e.code.as_str()), (404, "not_found")),
        other => panic!("expected 404, got {other:?}"),
    }
    match client.list(None, None, Some(100_000)) {
        Err(ClientError::Api(e)) => {
            assert_eq!((e.status, e.code.as_str()), (400, "invalid_limit"));
        }
        other => panic!("expected 400, got {other:?}"),
    }

    // Cascading drain: shutting the coordinator down also drains both
    // workers — their run() threads return without explicit shutdown.
    coord_handle.shutdown();
    let report = coord_thread.join().unwrap().expect("coordinator run");
    assert_eq!(report.jobs_completed, 8);
    let w0_report = t0.join().unwrap().expect("worker 0 run");
    let w1_report = t1.join().unwrap().expect("worker 1 run");
    assert_eq!(w0_report.jobs_completed + w1_report.jobs_completed, 8);
    drop((h0, h1));
}

/// Sums the per-worker routed counters from a coordinator scrape.
fn routed_total(metrics: &str) -> u64 {
    metrics
        .lines()
        .filter(|l| l.starts_with("fts_coordinator_worker_routed_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum()
}

#[test]
fn coordinator_cache_hit_is_byte_identical_and_flush_fans_out() {
    let (w0, h0, t0) = start_worker("127.0.0.1:0");
    let (client, coord_handle, coord_thread) = start_coordinator(vec![w0]);
    let manifest = "{\"jobs\":[{\"function\":\"divider1900\"}]}";
    let want = format!("\"result\":{}", direct_result(1900));

    // Cold: routed to the worker; reading the result populates the
    // coordinator's own cache.
    let ids = client.submit_manifest(manifest).expect("cold submit");
    let cold = client.wait_done(ids[0], POLL).expect("cold wait");
    assert!(cold.contains("\"hit\":false"), "{cold}");
    assert!(cold.contains(&want), "{cold}");

    // Hit: the identical resubmission is answered from the coordinator's
    // cache — done at admission, byte-identical result, nothing routed.
    let ids = client.submit_manifest(manifest).expect("hit submit");
    let hit = client.wait_done(ids[0], POLL).expect("hit wait");
    assert!(hit.contains("\"hit\":true"), "{hit}");
    assert!(hit.contains("\"wall_s\":0"), "{hit}");
    assert!(
        hit.contains(&want),
        "cached result diverges from the direct run:\n{hit}"
    );
    let metrics = client.metrics().expect("metrics");
    assert_eq!(
        routed_total(&metrics),
        1,
        "a hit must not route:\n{metrics}"
    );
    assert!(metrics.contains("fts_cache_hits_total 1"), "{metrics}");

    // Stats aggregate the coordinator's own store with every worker's.
    let stats = client.cache_stats().expect("cache stats");
    let doc = Json::parse(&stats).unwrap();
    assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(2.0));
    assert!(
        doc.get("hits").and_then(Json::as_f64).unwrap() >= 1.0,
        "{stats}"
    );
    assert!(
        doc.get("entries").and_then(Json::as_f64).unwrap() >= 1.0,
        "{stats}"
    );
    assert!(doc.get("coordinator").is_some(), "{stats}");
    let workers = doc
        .get("workers")
        .and_then(Json::as_array)
        .expect("workers");
    assert_eq!(workers.len(), 1, "{stats}");

    // Flush fans out: both the coordinator's store and the worker's
    // empty, so the resubmission is a miss that routes again.
    let flushed = client.cache_flush().expect("cache flush");
    assert!(flushed.contains("\"flushed\":true"), "{flushed}");
    let stats = client.cache_stats().expect("stats after flush");
    let doc = Json::parse(&stats).unwrap();
    assert_eq!(
        doc.get("entries").and_then(Json::as_f64),
        Some(0.0),
        "{stats}"
    );
    let workers = doc
        .get("workers")
        .and_then(Json::as_array)
        .expect("workers");
    assert_eq!(
        workers[0].get("entries").and_then(Json::as_f64),
        Some(0.0),
        "worker cache must be flushed too: {stats}"
    );

    let ids = client.submit_manifest(manifest).expect("post-flush submit");
    let post = client.wait_done(ids[0], POLL).expect("post-flush wait");
    assert!(post.contains("\"hit\":false"), "{post}");
    assert!(post.contains(&want), "{post}");
    let metrics = client.metrics().expect("metrics");
    assert_eq!(routed_total(&metrics), 2, "{metrics}");

    coord_handle.shutdown();
    let report = coord_thread.join().unwrap().expect("coordinator run");
    assert_eq!(report.jobs_completed, 3, "cold + hit + post-flush rerun");
    t0.join().unwrap().expect("worker run");
    drop(h0);
}

#[test]
fn killed_worker_jobs_reroute_and_none_are_lost() {
    let (w0, h0, t0) = start_worker("127.0.0.1:0");
    let (w1, h1, t1) = start_worker("127.0.0.1:0");
    let (client, coord_handle, coord_thread) = start_coordinator(vec![w0.clone(), w1]);

    let mvs: Vec<u32> = (0..10).map(|k| 1500 + 100 * k).collect();
    let ids = submit_dividers(&client, &mvs);

    // Rolling restart, phase 1: take worker 0 down (graceful drain —
    // but the coordinator hasn't read the results yet, so from its view
    // those jobs vanish: the restarted process answers 404).
    h0.shutdown();
    t0.join().unwrap().expect("worker 0 first run");

    // Phase 2: restart on the SAME address (SO_REUSEADDR makes the
    // rebind immediate despite TIME_WAIT) with a fresh, empty registry.
    let (w0_again, h0b, t0b) = start_worker(&w0);
    assert_eq!(w0_again, w0, "restart must reclaim the same address");

    // Every job still completes with the right deterministic result:
    // jobs the dead worker held are re-routed (to the survivor or the
    // restarted twin) on poll.
    for (&id, &mv) in ids.iter().zip(&mvs) {
        let body = client.wait_done(id, POLL).expect("wait");
        assert!(
            body.contains(&format!("\"result\":{}", direct_result(mv))),
            "job {id} (divider{mv}) lost or wrong after worker restart:\n{body}"
        );
    }

    coord_handle.shutdown();
    let report = coord_thread.join().unwrap().expect("coordinator run");
    assert_eq!(report.jobs_completed, 10, "zero dropped jobs");
    t1.join().unwrap().expect("worker 1 run");
    t0b.join().unwrap().expect("worker 0 second run");
    drop((h1, h0b));
}

/// The stranded-job aliasing regression: a job whose re-placement found
/// no taker holds no remote id. If the coordinator kept polling the
/// dead placement's id (worker-local ids restart at 0), a restarted
/// worker's id 0 — some *other* job — would be served as this job's
/// result. The stranded job must instead re-place and produce its own
/// result.
#[test]
fn stranded_job_never_reads_another_jobs_result() {
    let (w0, h0, t0) = start_worker("127.0.0.1:0");
    let (client, coord_handle, coord_thread) = start_coordinator(vec![w0.clone()]);

    // Lands as remote id 0 on the only worker.
    let ids = submit_dividers(&client, &[1700]);
    h0.shutdown();
    t0.join().unwrap().expect("worker first run");

    // Poll with the fleet empty: re-placement has no candidate (the
    // dead owner is excluded), so the job strands as synthetic queued.
    let body = client.status(ids[0]).expect("status while stranded");
    assert!(body.contains("\"status\":\"queued\""), "{body}");

    // Restart on the same address and land a DIFFERENT job first, so
    // the fresh registry's id 0 belongs to divider2400 — the very id
    // the stranded job held on the dead twin.
    let (w0_again, h0b, t0b) = start_worker(&w0);
    assert_eq!(w0_again, w0, "restart must reclaim the same address");
    let other = submit_dividers(&client, &[2400]);
    let other_body = client.wait_done(other[0], POLL).expect("other job");
    assert!(
        other_body.contains(&format!("\"result\":{}", direct_result(2400))),
        "{other_body}"
    );

    let body = client.wait_done(ids[0], POLL).expect("stranded job");
    assert!(
        body.contains(&format!("\"result\":{}", direct_result(1700))),
        "stranded job served another job's result (or the wrong one):\n{body}"
    );

    coord_handle.shutdown();
    let report = coord_thread.join().unwrap().expect("coordinator run");
    assert_eq!(report.jobs_completed, 2);
    t0b.join().unwrap().expect("worker second run");
    drop(h0b);
}

/// An acknowledged cancel is binding: cancelling a job whose owning
/// worker is unreachable must close the job out in the coordinator's
/// registry, never re-route it to a restarted worker.
#[test]
fn cancel_on_unreachable_worker_is_never_resubmitted() {
    let (w0, h0, t0) = start_worker("127.0.0.1:0");
    let (client, coord_handle, coord_thread) = start_coordinator(vec![w0.clone()]);

    let ids = submit_dividers(&client, &[1800]);
    h0.shutdown();
    t0.join().unwrap().expect("worker first run");

    // Cancel while the owner is unreachable: acknowledged...
    let body = client.cancel(ids[0]).expect("cancel");
    assert!(body.contains("\"cancelled\":true"), "{body}");

    // ...and recorded: a fresh worker on the same address must never
    // receive this job, and every status poll stays terminal.
    let (w0_again, h0b, t0b) = start_worker(&w0);
    assert_eq!(w0_again, w0, "restart must reclaim the same address");
    for _ in 0..5 {
        let status = client.status(ids[0]).expect("status");
        assert!(status.contains("\"status\":\"done\""), "{status}");
        assert!(status.contains("\"kind\":\"cancelled\""), "{status}");
        std::thread::sleep(POLL);
    }

    coord_handle.shutdown();
    coord_thread.join().unwrap().expect("coordinator run");
    let worker_report = t0b.join().unwrap().expect("worker second run");
    assert_eq!(
        worker_report.jobs_completed, 0,
        "cancelled job must not re-run on the restarted worker"
    );
    drop(h0b);
}

#[test]
fn fleet_down_submissions_answer_no_workers() {
    // A worker that exists only long enough to learn its port, then dies.
    let (w0, h0, t0) = start_worker("127.0.0.1:0");
    h0.shutdown();
    t0.join().unwrap().expect("worker run");

    let (client, coord_handle, coord_thread) = start_coordinator(vec![w0]);
    match client.submit_manifest("{\"jobs\":[{\"function\":\"divider2000\"}]}") {
        Err(ClientError::Api(e)) => {
            assert_eq!(e.status, 503, "{e:?}");
            assert_eq!(e.code, "no_workers", "{e:?}");
        }
        other => panic!("expected 503 no_workers, got {other:?}"),
    }
    // Validation still runs before placement: a bad manifest is a 400
    // even with the whole fleet down.
    match client.submit_manifest("{\"jobs\":[{\"function\":\"nope\"}]}") {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 400),
        other => panic!("expected 400, got {other:?}"),
    }

    coord_handle.shutdown();
    let report = coord_thread.join().unwrap().expect("coordinator run");
    assert_eq!(report.jobs_completed, 0);
}
