//! Shared `--telemetry` plumbing for the `repro_*` binaries.
//!
//! Every reproduction binary accepts `--telemetry <path.json>`. The flag is
//! stripped from the argument list *before* the binary's own (strict) flag
//! parsing runs, so binaries that reject unknown flags never see it. When
//! present, global [`fts_telemetry`] collection is switched on for the whole
//! run and [`Session::finish`] writes three artifacts:
//!
//! * the merged telemetry report (`fts-telemetry/1` JSON) at the given path;
//! * a Chrome trace (`<path>.trace.json`) loadable in `chrome://tracing`;
//! * a benchmark summary `BENCH_<bin>.json` in the working directory with
//!   total and per-phase wall times.

use std::time::Instant;

/// Telemetry/benchmark session for one `repro_*` binary.
pub struct Session {
    bin: &'static str,
    out: Option<String>,
    mirrors: Vec<String>,
    started: Instant,
    mark: Instant,
    phases: Vec<(String, f64)>,
}

/// Parses and removes `--telemetry <path.json>` from `args`, enabling
/// global collection when the flag is present. Call once, at the top of
/// `main`, with the argument list the binary will parse afterwards.
pub fn from_args(bin: &'static str, args: &mut Vec<String>) -> Session {
    let mut out = None;
    if let Some(k) = args.iter().position(|a| a == "--telemetry") {
        args.remove(k);
        if k >= args.len() {
            eprintln!("--telemetry needs a file path");
            std::process::exit(2);
        }
        out = Some(args.remove(k));
        fts_telemetry::reset();
        fts_telemetry::set_enabled(true);
    }
    let now = Instant::now();
    Session {
        bin,
        out,
        mirrors: Vec::new(),
        started: now,
        mark: now,
        phases: Vec::new(),
    }
}

/// Turns on global counter collection when `session` is inactive (i.e. the
/// binary ran without `--telemetry`), so solver statistics are gathered
/// either way. Returns `true` when this call enabled collection; pass that
/// to [`solver_stats_done`] after reading the stats.
pub fn ensure_counters(session: &Session) -> bool {
    if session.active() {
        return false;
    }
    fts_telemetry::reset();
    fts_telemetry::set_enabled(true);
    true
}

/// Disables collection again when [`ensure_counters`] turned it on.
pub fn solver_stats_done(enabled_here: bool) {
    if enabled_here {
        fts_telemetry::set_enabled(false);
        fts_telemetry::reset();
    }
}

/// JSON object of linear-solver statistics drawn from the live telemetry
/// counters: engine selections, numeric factor/solve counts, and the
/// symbolic-analysis reuse rate (1.0 = every workspace after the first
/// reused a shared fill-reducing ordering).
pub fn solver_stats_json() -> String {
    let r = fts_telemetry::snapshot();
    let new = r.counter("spice.sparse.symbolic_new");
    let reuse = r.counter("spice.sparse.symbolic_reuse");
    let miss = r.counter("spice.sparse.symbolic_miss");
    let analyses = new + miss;
    let requests = analyses + reuse;
    let reuse_rate = if requests == 0 {
        0.0
    } else {
        reuse as f64 / requests as f64
    };
    format!(
        concat!(
            "{{\"dense_selected\":{},\"sparse_selected\":{},",
            "\"factor_count\":{},\"solve_count\":{},",
            "\"symbolic_new\":{},\"symbolic_reuse\":{},\"symbolic_miss\":{},",
            "\"symbolic_reuse_rate\":{}}}"
        ),
        r.counter("spice.solver.dense"),
        r.counter("spice.solver.sparse"),
        r.counter("spice.sparse.factor"),
        r.counter("spice.sparse.solve"),
        new,
        reuse,
        miss,
        reuse_rate,
    )
}

impl Session {
    /// True when `--telemetry` was passed.
    pub fn active(&self) -> bool {
        self.out.is_some()
    }

    /// Closes the phase that ran since the previous mark (or session
    /// start) and records it under `name`.
    pub fn phase_done(&mut self, name: &str) {
        let now = Instant::now();
        self.phases
            .push((name.to_owned(), (now - self.mark).as_secs_f64()));
        self.mark = now;
    }

    /// Completed phases so far as `(name, wall_seconds)` pairs.
    pub fn phases(&self) -> &[(String, f64)] {
        &self.phases
    }

    /// Also writes the bench summary to `path` (e.g. the canonical
    /// `BENCH_repro.json` emitted by `repro_yield`).
    pub fn mirror_bench(&mut self, path: &str) {
        self.mirrors.push(path.to_owned());
    }

    /// JSON fragment of the phase list: `[{"name":...,"wall_s":...},...]`.
    pub fn phases_json(&self) -> String {
        let items: Vec<String> = self
            .phases
            .iter()
            .map(|(n, s)| format!("{{\"name\":\"{n}\",\"wall_s\":{s}}}"))
            .collect();
        format!("[{}]", items.join(","))
    }

    /// Writes the telemetry report, Chrome trace, and bench summary when
    /// the session is active; a no-op otherwise. Disables collection.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing any artifact.
    pub fn finish(self) -> std::io::Result<()> {
        let total_s = self.started.elapsed().as_secs_f64();
        let Some(out) = self.out.clone() else {
            return Ok(());
        };
        let report = fts_telemetry::snapshot();
        fts_telemetry::set_enabled(false);
        fts_telemetry::reset();

        std::fs::write(&out, report.to_json())?;
        let trace_path = format!("{out}.trace.json");
        std::fs::write(&trace_path, report.to_chrome_trace())?;

        let bench = format!(
            concat!(
                "{{\"schema\":\"fts-bench/1\",\"bin\":\"{}\",\"wall_s\":{},",
                "\"phases\":{},\"telemetry_path\":\"{}\"}}"
            ),
            self.bin,
            total_s,
            self.phases_json(),
            out,
        );
        let bench_path = format!("BENCH_{}.json", self.bin);
        std::fs::write(&bench_path, &bench)?;
        for m in &self.mirrors {
            std::fs::write(m, &bench)?;
        }
        eprintln!(
            "[telemetry] report: {out}  trace: {trace_path}  bench: {bench_path}{}",
            if self.mirrors.is_empty() {
                String::new()
            } else {
                format!(" + {}", self.mirrors.join(" + "))
            }
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_flag_and_leaves_other_args() {
        let mut args: Vec<String> = ["--trials", "8", "--telemetry", "/tmp/t.json", "--json"]
            .map(String::from)
            .to_vec();
        let tel = from_args("unit_test_bin", &mut args);
        assert!(tel.active());
        assert_eq!(args, ["--trials", "8", "--json"]);
        fts_telemetry::set_enabled(false);
        fts_telemetry::reset();
    }

    #[test]
    fn absent_flag_is_inactive() {
        let mut args: Vec<String> = ["--json"].map(String::from).to_vec();
        let mut tel = from_args("unit_test_bin", &mut args);
        assert!(!tel.active());
        assert_eq!(args, ["--json"]);
        tel.phase_done("a");
        tel.phase_done("b");
        assert_eq!(tel.phases().len(), 2);
        assert!(tel.phases_json().starts_with("[{\"name\":\"a\""));
        tel.finish().unwrap();
    }
}
