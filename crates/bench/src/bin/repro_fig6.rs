//! Regenerates Fig. 6: cross-gate device curves and summary (see
//! `repro_fig5` for the sweep definitions).

use fts_bench::print_device_figure;
use fts_device::DeviceKind;

fn main() {
    print_device_figure("Fig. 6", DeviceKind::Cross);
}
