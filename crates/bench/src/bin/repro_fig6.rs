//! Regenerates Fig. 6: cross-gate device curves and summary (see
//! `repro_fig5` for the sweep definitions).

use fts_bench::print_device_figure;
use fts_device::DeviceKind;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("repro_fig6", &mut argv);
    print_device_figure("Fig. 6", DeviceKind::Cross);
    tel.phase_done("run");
    tel.finish().expect("telemetry artifacts");
}
