//! Regenerates Fig. 8: current-density vector profiles of the three
//! devices under the DSSS-like bias, plus the terminal-uniformity metric
//! that backs the paper's square-vs-cross comparison.

use fts_device::DeviceKind;
use fts_field::{channel_region, device_plan, SolveOptions, PLAN_GRID};

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("repro_fig8", &mut argv);
    let opts = SolveOptions::default();
    for kind in DeviceKind::all() {
        let p = device_plan(kind, true);
        let sol = p.solve(&opts);
        println!(
            "Fig. 8 — {} device, gate ON (|J| map, 24x24 downsample):",
            kind.name()
        );
        let n = PLAN_GRID;
        // Normalize to the 95th percentile so electrode hotspots do not
        // wash out the channel detail.
        let mut mags: Vec<f64> = (0..n * n).map(|i| sol.magnitude(i % n, i / n)).collect();
        mags.sort_by(f64::total_cmp);
        let scale = mags[(mags.len() * 95) / 100].max(1e-30);
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        for y in (0..n).step_by(2) {
            let mut line = String::new();
            for x in (0..n).step_by(2) {
                let g = ((sol.magnitude(x, y) / scale).sqrt() * 9.0).round() as usize;
                line.push(glyphs[g.min(9)]);
            }
            println!("  {line}");
        }
        let i_t1 = sol.electrode_current(&p, 0);
        let sinks: Vec<f64> = (1..4).map(|e| -sol.electrode_current(&p, e)).collect();
        let mean = sinks.iter().sum::<f64>() / 3.0;
        let cv = (sinks.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0).sqrt() / mean;
        println!(
            "  drive current {:.3e}, sink split T2/T3/T4 = {:.2}/{:.2}/{:.2}, spread CV = {:.3}",
            i_t1,
            sinks[0] / mean,
            sinks[1] / mean,
            sinks[2] / mean,
            cv
        );
        println!(
            "  channel |J| uniformity CV = {:.3}\n",
            sol.uniformity_cv(channel_region())
        );
    }
    println!("paper's qualitative claim: the cross gate gives a more uniform current profile than the square gate.");
    tel.phase_done("run");
    tel.finish().expect("telemetry artifacts");
}
