//! Regenerates Fig. 5: square-gate device, DSSS case, HfO2 gate —
//! (a) Id–Vg at Vds = 10 mV, (b) Id–Vg at Vds = 5 V, (c) Id–Vd at
//! Vgs = 5 V, per terminal — plus the Vth / on-off summary for both
//! dielectrics.

use fts_bench::print_device_figure;
use fts_device::DeviceKind;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("repro_fig5", &mut argv);
    print_device_figure("Fig. 5", DeviceKind::Square);
    tel.phase_done("run");
    tel.finish().expect("telemetry artifacts");
}
