//! Regenerates Fig. 5: square-gate device, DSSS case, HfO2 gate —
//! (a) Id–Vg at Vds = 10 mV, (b) Id–Vg at Vds = 5 V, (c) Id–Vd at
//! Vgs = 5 V, per terminal — plus the Vth / on-off summary for both
//! dielectrics.

use fts_bench::print_device_figure;
use fts_device::DeviceKind;

fn main() {
    print_device_figure("Fig. 5", DeviceKind::Square);
}
