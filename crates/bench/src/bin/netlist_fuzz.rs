//! `netlist_fuzz` — corpus-driven fuzz smoke for the SPICE-deck frontend.
//!
//! Throws mutated, truncated, spliced, and garbage decks at
//! `fts_netlist::parse_str` / `elaborate` and holds the crate to its
//! contract: **no panic, no unbounded recursion, bounded memory** — every
//! malformed deck must come back as a structured [`DeckError`] with a
//! 1-based line and column, and every deck that parses must survive the
//! render → reparse round trip. When a panic escapes, the offending deck
//! is written to the failure directory (CI uploads it as the repro
//! corpus) and the process exits non-zero with the seed to replay.
//!
//! ```text
//! usage: netlist_fuzz [--iters <n>] [--seed <u64>] [--failures <dir>]
//! ```
//!
//! [`DeckError`]: fts_netlist::DeckError

use std::panic::{self, AssertUnwindSafe};

use fts_netlist::{elaborate, parse_str, render, ElabOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hand-written seeds covering every card kind, plus the pathological
/// shapes earlier incidents taught us to keep around.
const CORPUS: &[&str] = &[
    // The RC classic: every analysis, probes, pulse/pwl waveforms.
    "v1 in 0 pulse ( 0 5 1u 1n 1n 1 2 )\nv2 b 0 dc 0.5 ac 1\ni1 0 in pwl ( 0 0 1n 1u )\n\
     r1 in out 1k\nc1 out 0 1u\nr2 b out 2.2meg\n.probe v(out)\n.op\n.dc v2 0 1 0.1\n\
     .tran 1u 10u\n.ac dec 10 1k 1meg\n",
    // Params, models (both levels), MOSFETs with every W/L spelling.
    ".param vdd=1.2\n.param half={vdd}\n.model sw1 nmos level=1 kp=2e-4 vto=0.7 lambda=0.01\n\
     .model sw3 nmos level=3 kp=2e-4 vto=0.7 theta=0.1 esatl=1.5 cgs=1f cgd=1f\n\
     v1 g 0 dc {half}\nm1 d g 0 sw1\nm2 d g 0 0 sw3 wol=4\nm3 d g 0 sw1 w=10u l=2u\n\
     r1 d 0 10k\n.op\n",
    // Subcircuits, instances, node ordering, continuations, comments.
    "* title comment\n.nodeorder a b mid\n.subckt cell d g\nm1 d g 0 sw\nr1 d\n+ 0 10k\n.ends cell\n\
     .model sw nmos level=1 kp=1e-4 vto=0.5\nv1 g 0 dc 1 ; trailing\nx1 a g cell\nx2 b g cell\n\
     r9 a b 1k\n.probe v(a)\n.op\n.end\nignored tail\n",
    // The depth-bomb shape (finite here, but mutation loves to grow it).
    ".subckt s0 a\nr1 a 0 1\n.ends\n.subckt s1 a\nx1 a s0\nx2 a s0\n.ends\n\
     .subckt s2 a\nx1 a s1\nx2 a s1\n.ends\nx1 top s2\n.op\n",
    // Numeric edge cases: suffixes, exponents, signs, subnormals.
    "r1 a 0 1e308\nr2 a 0 5e-324\nr3 a 0 -0.0\nr4 a 0 .5\nr5 a 0 1.e3\nr6 a 0 12.34e-5\n\
     c1 a 0 1mil\nc2 a 0 10meg\nv1 a 0 dc -1e-15\n.op\n",
    // Include directives must stay denied, never crash.
    ".include \"other.cir\"\n.include deep\nr1 a 0 1\n.op\n",
    // Hostile fragments: unterminated everything.
    ".subckt s a\n.param x=\n.model m nmos level=\nv1 a 0 pulse ( 0 1\n.dc\n.probe v(\n{\n",
];

/// Byte-level mutations; structure-blind on purpose (the parser must
/// survive arbitrary bytes, not just near-misses of the grammar).
fn mutate(corpus: &[Vec<u8>], rng: &mut StdRng) -> String {
    let pick = |rng: &mut StdRng| corpus[rng.gen_range(0usize..corpus.len())].clone();
    let mut bytes = pick(rng);
    for _ in 0..rng.gen_range(1usize..4) {
        match rng.gen_range(0u32..8) {
            // Truncate at a random byte.
            0 => {
                let at = rng.gen_range(0usize..bytes.len().max(1));
                bytes.truncate(at);
            }
            // Flip random bytes.
            1 => {
                for _ in 0..rng.gen_range(1usize..8) {
                    if bytes.is_empty() {
                        break;
                    }
                    let at = rng.gen_range(0usize..bytes.len());
                    bytes[at] = rng.gen::<u32>() as u8;
                }
            }
            // Insert random bytes (token soup included).
            2 => {
                let at = rng.gen_range(0usize..=bytes.len());
                let insert: Vec<u8> = (0..rng.gen_range(1usize..16))
                    .map(|_| rng.gen::<u32>() as u8)
                    .collect();
                bytes.splice(at..at, insert);
            }
            // Duplicate a random slice (grows repetition/depth).
            3 => {
                if !bytes.is_empty() {
                    let a = rng.gen_range(0usize..bytes.len());
                    let b = rng.gen_range(a..bytes.len().min(a + 256));
                    let slice = bytes[a..b].to_vec();
                    let times = rng.gen_range(1usize..20);
                    let at = rng.gen_range(0usize..=bytes.len());
                    bytes.splice(at..at, slice.repeat(times));
                }
            }
            // Splice the head of one seed onto the tail of another.
            4 => {
                let other = pick(rng);
                let cut_a = rng.gen_range(0usize..=bytes.len());
                let cut_b = rng.gen_range(0usize..=other.len());
                bytes.truncate(cut_a);
                bytes.extend_from_slice(&other[cut_b..]);
            }
            // Case-flip a region (the grammar is case-insensitive).
            5 => {
                for b in bytes.iter_mut() {
                    if rng.gen_bool(0.2) {
                        *b = if b.is_ascii_lowercase() {
                            b.to_ascii_uppercase()
                        } else {
                            b.to_ascii_lowercase()
                        };
                    }
                }
            }
            // Swap whitespace kinds (newlines are card boundaries).
            6 => {
                for b in bytes.iter_mut() {
                    if matches!(*b, b' ' | b'\t' | b'\n' | b'\r') && rng.gen_bool(0.3) {
                        *b = [b' ', b'\t', b'\n', b'\r', b'+', b';'][rng.gen_range(0usize..6)];
                    }
                }
            }
            // Pure garbage, occasionally near the file-size cap.
            _ => {
                let len = if rng.gen_bool(0.02) {
                    rng.gen_range(0usize..(1 << 20) + 4096)
                } else {
                    rng.gen_range(0usize..2048)
                };
                bytes = (0..len).map(|_| rng.gen::<u32>() as u8).collect();
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// One fuzz probe. Returns true when the deck parsed.
fn exercise(text: &str) -> bool {
    match parse_str(text) {
        Ok(deck) => {
            // Whatever parses must round-trip and elaborate without panics.
            let rendered = render(&deck);
            let again = parse_str(&rendered).unwrap_or_else(|e| {
                panic!("render of a parsed deck failed to reparse: {e}\n{rendered}")
            });
            assert_eq!(
                deck.cards_only().len(),
                again.cards_only().len(),
                "round trip changed the card count"
            );
            let _ = elaborate(&deck, &ElabOptions::default());
            true
        }
        Err(e) => {
            // The structured-error contract: stable code, 1-based position.
            assert!(
                !e.code.is_empty() && e.line >= 1 && e.col >= 1,
                "unstructured error: {e:?}"
            );
            false
        }
    }
}

fn main() {
    let mut iters = 10_000u64;
    let mut seed = 0xf75_0e75u64;
    let mut failures = std::path::PathBuf::from("target/netlist-fuzz-failures");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match flag.as_str() {
            "--iters" => iters = take("--iters").parse().expect("--iters: u64"),
            "--seed" => seed = take("--seed").parse().expect("--seed: u64"),
            "--failures" => failures = take("--failures").into(),
            other => {
                eprintln!("unknown flag {other:?}");
                eprintln!("usage: netlist_fuzz [--iters <n>] [--seed <u64>] [--failures <dir>]");
                std::process::exit(2);
            }
        }
    }

    let corpus: Vec<Vec<u8>> = CORPUS.iter().map(|s| s.as_bytes().to_vec()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut parsed, mut rejected) = (0u64, 0u64);
    let started = std::time::Instant::now();

    // Keep the default hook quiet during the run; a failure restores it
    // by re-running the case outside catch_unwind.
    let default_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    for k in 0..iters {
        let text = mutate(&corpus, &mut rng);
        match panic::catch_unwind(AssertUnwindSafe(|| exercise(&text))) {
            Ok(true) => parsed += 1,
            Ok(false) => rejected += 1,
            Err(_) => {
                panic::set_hook(default_hook);
                std::fs::create_dir_all(&failures).expect("failure dir");
                let path = failures.join(format!("crash-seed{seed}-iter{k}.cir"));
                std::fs::write(&path, &text).expect("write crash input");
                eprintln!(
                    "netlist_fuzz: PANIC at iteration {k} (seed {seed}); input saved to {}",
                    path.display()
                );
                // Replay loudly for the log, then fail.
                let _ = panic::catch_unwind(AssertUnwindSafe(|| exercise(&text)));
                std::process::exit(1);
            }
        }
        if (k + 1) % 20_000 == 0 {
            eprintln!(
                "netlist_fuzz: {}/{iters} iterations, {parsed} parsed, {rejected} rejected",
                k + 1
            );
        }
    }
    panic::set_hook(default_hook);

    println!(
        "netlist_fuzz: OK — {iters} iterations in {:.2}s ({parsed} parsed, {rejected} rejected \
         with structured errors, 0 panics)",
        started.elapsed().as_secs_f64()
    );
}
