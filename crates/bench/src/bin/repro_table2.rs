//! Regenerates Table II: structural features of the three four-terminal
//! devices, plus the derived channel geometry the model uses.

use fts_device::{DeviceGeometry, DeviceKind, Terminal, TerminalPair};

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("repro_table2", &mut argv);
    println!("Table II: structural features of four-terminal devices\n");
    for kind in DeviceKind::all() {
        let g = DeviceGeometry::table2(kind);
        println!(
            "{} ({}):",
            kind.name(),
            if kind.is_enhancement() {
                "enhancement"
            } else {
                "depletion (junctionless)"
            }
        );
        println!(
            "  device size (nm)     : {} x {} x {}",
            g.device_nm.0, g.device_nm.1, g.device_nm.2
        );
        println!(
            "  electrode size (nm)  : {} x {} x {}",
            g.electrode_nm.0, g.electrode_nm.1, g.electrode_nm.2
        );
        println!(
            "  gate footprint (nm)  : {} x {}, dielectric thickness {}",
            g.gate_nm.0, g.gate_nm.1, g.gate_thickness_nm
        );
        println!(
            "  doping (cm^-3)       : body/wire {:.0e}, electrodes {:.0e}",
            g.substrate_doping_cm3, g.electrode_doping_cm3
        );
        let adj = g.channel(TerminalPair::new(Terminal::T1, Terminal::T2));
        let opp = g.channel(TerminalPair::new(Terminal::T1, Terminal::T3));
        println!(
            "  derived channels     : edge W/L = {:.0}/{:.0} nm, diagonal W/L = {:.0}/{:.0} nm\n",
            adj.width_cm * 1e7,
            adj.length_cm * 1e7,
            opp.width_cm * 1e7,
            opp.length_cm * 1e7
        );
    }
    tel.phase_done("run");
    tel.finish().expect("telemetry artifacts");
}
