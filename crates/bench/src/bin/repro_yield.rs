//! Monte Carlo yield analysis of the paper's XOR3 lattice: functional and
//! parametric yield under process variation and crosspoint defects, with
//! sequential-vs-parallel throughput and a machine-readable JSON summary.
//!
//! Usage: `repro_yield [--trials N] [--seed S] [--defect-prob P]
//! [--ensemble-width K] [--json] [--telemetry <path.json>]`
//!
//! `--json` suppresses the human-readable report and prints only the JSON
//! object (one line, stable key order). `--telemetry` additionally writes
//! the solver/engine telemetry report, a Chrome trace, and the
//! `BENCH_repro_yield.json` / `BENCH_repro.json` benchmark summaries.

use std::time::Instant;

use fts_bench::telemetry;
use fts_circuit::experiments::xor3_lattice;
use fts_circuit::model::SwitchCircuitModel;
use fts_montecarlo::{EvalMode, MonteCarlo, SummaryStats, VariationModel, YieldReport};

struct Args {
    trials: u64,
    seed: u64,
    defect_prob: f64,
    ensemble_width: usize,
    json_only: bool,
}

fn parse_args(argv: Vec<String>) -> Args {
    let mut args = Args {
        trials: 512,
        seed: 0xD1CE,
        defect_prob: 0.01,
        ensemble_width: 16,
        json_only: false,
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--trials" => args.trials = value("--trials").parse().expect("--trials: integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--defect-prob" => {
                args.defect_prob = value("--defect-prob")
                    .parse()
                    .expect("--defect-prob: float")
            }
            "--ensemble-width" => {
                args.ensemble_width = value("--ensemble-width")
                    .parse()
                    .expect("--ensemble-width: integer")
            }
            "--json" => args.json_only = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn json_stats(s: &SummaryStats) -> String {
    format!(
        "{{\"n\":{},\"mean\":{},\"std_dev\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
        s.n, s.mean, s.std_dev, s.min, s.max, s.p50, s.p95, s.p99
    )
}

fn json_summary(
    r: &YieldReport,
    seq_tps: f64,
    par_tps: f64,
    threads: usize,
    ensemble_json: &str,
    phases_json: &str,
    solver_json: &str,
) -> String {
    let crit: Vec<String> = r.site_criticality.iter().map(u64::to_string).collect();
    // Criticality map summary: the most failure-implicated sites, best
    // first, as (row-major index, coincidence count) pairs.
    let top: Vec<String> = r
        .critical_sites()
        .iter()
        .take(5)
        .map(|(i, n)| format!("[{i},{n}]"))
        .collect();
    let causes = &r.failure_causes;
    format!(
        concat!(
            "{{\"experiment\":\"xor3_yield\",\"trials\":{},\"master_seed\":{},",
            "\"ensemble\":{},",
            "\"evaluated\":{},\"sim_failures\":{},",
            "\"sim_failure_causes\":{{\"no_convergence\":{},\"singular_matrix\":{},",
            "\"build\":{},\"other\":{}}},\"functional_pass\":{},",
            "\"parametric_pass\":{},\"logical_fail\":{},\"defects_injected\":{},",
            "\"functional_yield\":{},\"parametric_yield\":{},",
            "\"v_ol\":{},\"v_oh\":{},\"rise_s\":{},\"fall_s\":{},",
            "\"site_criticality\":[{}],\"critical_sites\":[{}],",
            "\"solver\":{},\"phases\":{},",
            "\"throughput\":{{\"sequential_trials_per_s\":{},\"parallel_trials_per_s\":{},",
            "\"threads\":{},\"speedup\":{}}}}}"
        ),
        r.trials,
        r.master_seed,
        ensemble_json,
        r.evaluated,
        r.sim_failures,
        causes.no_convergence,
        causes.singular_matrix,
        causes.build,
        causes.other,
        r.functional_pass,
        r.parametric_pass,
        r.logical_fail,
        r.defects_injected,
        r.functional_yield(),
        r.parametric_yield(),
        json_stats(&r.v_ol),
        json_stats(&r.v_oh),
        json_stats(&r.rise_s),
        json_stats(&r.fall_s),
        crit.join(","),
        top.join(","),
        solver_json,
        phases_json,
        seq_tps,
        par_tps,
        threads,
        par_tps / seq_tps,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = telemetry::from_args("repro_yield", &mut argv);
    tel.mirror_bench("BENCH_repro.json");
    let args = parse_args(argv);
    // Solver statistics ride on the telemetry counters; keep collection on
    // even without --telemetry so the JSON summary can report factor
    // counts and the symbolic reuse rate.
    let counters_here = telemetry::ensure_counters(&tel);

    let nominal = SwitchCircuitModel::square_hfo2()?;
    let lat = xor3_lattice();
    let mc = MonteCarlo::new(args.trials, args.seed)
        .variation(VariationModel::standard().with_defect_prob(args.defect_prob))
        .eval(EvalMode::Dc)
        .ensemble_width(args.ensemble_width);
    tel.phase_done("build");

    let t0 = Instant::now();
    let sequential = mc.threads(1).run(&lat, 3, &nominal)?;
    let seq_s = t0.elapsed().as_secs_f64();
    tel.phase_done("sequential");

    let threads = fts_montecarlo::executor::auto_threads();
    let t0 = Instant::now();
    let report = mc.threads(0).run(&lat, 3, &nominal)?;
    let par_s = t0.elapsed().as_secs_f64();
    tel.phase_done("parallel");

    if report != sequential {
        eprintln!(
            "DETERMINISM VIOLATION: parallel ensemble differs from sequential \
             (trials {}, seed {:#x}, {threads} threads)",
            args.trials, args.seed
        );
        std::process::exit(1);
    }

    let seq_tps = args.trials as f64 / seq_s;
    let par_tps = args.trials as f64 / par_s;
    let solver_json = telemetry::solver_stats_json();
    let snap = fts_telemetry::snapshot();
    let ens_lanes = snap.counter("spice.ensemble.lanes");
    let ens_iters = snap.counter("spice.ensemble.lockstep_iterations");
    let ens_fallbacks = snap.counter("spice.ensemble.scalar_fallback");
    let ensemble_json = format!(
        "{{\"width\":{},\"lanes\":{ens_lanes},\"lockstep_iterations\":{ens_iters},\"scalar_fallback\":{ens_fallbacks}}}",
        args.ensemble_width
    );

    if !args.json_only {
        println!(
            "XOR3 yield analysis: {} trials, seed {:#x}, defect prob {}, DC evaluation\n",
            args.trials, args.seed, args.defect_prob
        );
        println!("  evaluated        : {}", report.evaluated);
        println!("  sim failures     : {}", report.sim_failures);
        let c = &report.failure_causes;
        if report.sim_failures > 0 {
            println!(
                "    by cause       : no_convergence {}, singular {}, build {}, other {}",
                c.no_convergence, c.singular_matrix, c.build, c.other
            );
        }
        println!("  functional yield : {:.4}", report.functional_yield());
        println!("  parametric yield : {:.4}", report.parametric_yield());
        println!("  logical failures : {}", report.logical_fail);
        println!("  defects injected : {}", report.defects_injected);
        println!(
            "  V_OL             : mean {:.4} V, sigma {:.4} V, p95 {:.4} V  [nominal ~0.22 V]",
            report.v_ol.mean, report.v_ol.std_dev, report.v_ol.p95
        );
        println!(
            "  V_OH             : mean {:.4} V, sigma {:.4} V, min {:.4} V",
            report.v_oh.mean, report.v_oh.std_dev, report.v_oh.min
        );
        println!("\n  fault criticality (row-major failure coincidences):");
        for r in 0..3 {
            let row: Vec<String> = (0..3)
                .map(|c| format!("{:>6}", report.site_criticality[r * 3 + c]))
                .collect();
            println!("    {}", row.join(" "));
        }
        let top = report.critical_sites();
        if !top.is_empty() {
            let list: Vec<String> = top
                .iter()
                .take(5)
                .map(|(i, n)| format!("({},{})x{n}", i / 3, i % 3))
                .collect();
            println!("    most critical  : {}", list.join(" "));
        }
        println!(
            "\n  throughput       : sequential {seq_tps:.1} trials/s, parallel {par_tps:.1} trials/s ({threads} threads, {:.2}x)",
            par_tps / seq_tps
        );
        if ens_lanes > 0 {
            println!(
                "  ensemble solver  : width {}, {} lanes, {} lockstep iterations, {} scalar fallbacks",
                args.ensemble_width, ens_lanes, ens_iters, ens_fallbacks
            );
        }
        let sym_new = snap.counter("spice.sparse.symbolic_new");
        let sym_reuse = snap.counter("spice.sparse.symbolic_reuse");
        let sym_miss = snap.counter("spice.sparse.symbolic_miss");
        println!(
            "  sparse solver    : {} factors, {} solves; symbolic analyses {} ({} reuses, {} pattern misses)",
            snap.counter("spice.sparse.factor"),
            snap.counter("spice.sparse.solve"),
            sym_new + sym_miss,
            sym_reuse,
            sym_miss,
        );
        println!("\nJSON summary:");
    }
    println!(
        "{}",
        json_summary(
            &report,
            seq_tps,
            par_tps,
            threads,
            &ensemble_json,
            &tel.phases_json(),
            &solver_json
        )
    );
    tel.finish()?;
    telemetry::solver_stats_done(counters_here);
    Ok(())
}
