//! Regenerates Fig. 2c: the nine products of the 3×3 lattice function,
//! printed in the paper's x1..x9 notation.

use fts_lattice::paths;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("repro_fig2c", &mut argv);
    println!("f_3x3 products (paper Fig. 2c):");
    let mut products: Vec<String> = Vec::new();
    paths::visit(3, 3, |path| {
        let term: String = path
            .iter()
            .map(|&(r, c)| format!("x{}", r * 3 + c + 1))
            .collect();
        products.push(term);
    });
    products.sort_by_key(|p| (p.len(), p.clone()));
    for p in &products {
        println!("  {p}");
    }
    println!("total: {} products (paper: 9)", products.len());
    assert_eq!(products.len(), 9);
    tel.phase_done("run");
    tel.finish().expect("telemetry artifacts");
}
