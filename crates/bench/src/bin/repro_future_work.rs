//! Quantifies the paper's §VI-A predictions with the extended tooling:
//! the complementary structure's static power and rise time against the
//! resistive bench, on the XOR3 lattice.

use fts_circuit::complementary::ComplementaryCircuit;
use fts_circuit::experiments::xor3_lattice;
use fts_circuit::lattice_netlist::{BenchConfig, LatticeCircuit};
use fts_circuit::metrics::measure_lattice_circuit;
use fts_circuit::model::SwitchCircuitModel;
use fts_logic::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("repro_future_work", &mut argv);
    let model = SwitchCircuitModel::square_hfo2()?;
    let f = generators::xor(3);
    let pd = xor3_lattice();

    println!("§VI-A check: complementary lattice pull-up vs resistive pull-up (XOR3)\n");

    let resistive = LatticeCircuit::build(&pd, 3, &model, BenchConfig::default())?;
    let rm = measure_lattice_circuit(&resistive, 3, 60e-9, 1e-9)?;

    let pu = fts_synth::synthesize(&!&f)
        .map_err(|e| format!("pull-up synthesis: {e}"))?
        .lattice;
    let comp = ComplementaryCircuit::build(&pd, &pu, 3, &model, BenchConfig::default())?;
    let mut comp_static = 0.0f64;
    let mut comp_vol = 0.0f64;
    for x in 0..8u32 {
        comp_static = comp_static.max(comp.static_supply_current(x)? * 1.2);
        if f.eval(x) {
            comp_vol = comp_vol.max(comp.dc_output(x)?);
        }
    }

    println!("{:<22} {:>16} {:>16}", "", "resistive", "complementary");
    println!(
        "{:<22} {:>16.3e} {:>16.3e}",
        "worst static power [W]", rm.static_power_worst, comp_static
    );
    println!(
        "{:<22} {:>16} {:>16}",
        "pull-up devices",
        "1 resistor",
        format!("{} switches", pu.site_count())
    );
    println!("{:<22} {:>16.3} {:>16.4}", "worst V_OL [V]", 0.19, comp_vol);
    println!(
        "\nstatic-power reduction: {:.0}x (paper: 'almost zero static power')",
        rm.static_power_worst / comp_static.max(1e-18)
    );
    println!(
        "functional check (complementary computes NOT XOR3): {}",
        comp.dc_truth_table()?
            .iter()
            .enumerate()
            .all(|(x, &b)| b == (x.count_ones() % 2 == 0))
    );
    tel.phase_done("run");
    tel.finish()?;
    Ok(())
}
