//! Server load benchmark: hammers an in-process `fts-server` with
//! op-point job submissions over loopback HTTP and writes
//! `BENCH_server.json` (sustained throughput, submit-latency p50/p99,
//! 429 backpressure count, a bit-identity check against direct engine
//! submission, and a repeated-manifest result-cache replay reporting
//! the hit ratio plus cold-vs-warm mean Newton iteration counts).
//!
//! The load and identity phases submit with `"cache": "bypass"` so they
//! keep measuring real solver throughput and strict cold-path identity;
//! the cache phase is the only one that exercises default mode.
//!
//! Usage: `server_load [--requests N] [--clients N] [--workers N]
//! [--queue-depth N] [--function NAME] [--out PATH]
//! [--telemetry <path.json>]`

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use four_terminal_lattice::batch::PipelineJobBuilder;
use fts_engine::{CacheMode, Engine};
use fts_server::service::build_job;
use fts_server::wire::{outcome_json, AnalysisSpec, JobSource, JobSpec, Json};
use fts_server::{ClientError, Server, ServerConfig, WireClient};

struct Args {
    requests: usize,
    clients: usize,
    workers: usize,
    queue_depth: usize,
    function: String,
    out: String,
}

fn parse_args(argv: Vec<String>) -> Args {
    let mut args = Args {
        requests: 2000,
        clients: 8,
        workers: 0,
        queue_depth: 256,
        function: "and2".to_owned(),
        out: "BENCH_server.json".to_owned(),
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--requests" => args.requests = value("--requests").parse().expect("--requests: int"),
            "--clients" => args.clients = value("--clients").parse().expect("--clients: int"),
            "--workers" => args.workers = value("--workers").parse().expect("--workers: int"),
            "--queue-depth" => {
                args.queue_depth = value("--queue-depth").parse().expect("--queue-depth: int");
            }
            "--function" => args.function = value("--function"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let k = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[k]
}

fn submit_body(function: &str, input: u32, cache: &str) -> String {
    format!(
        r#"{{"jobs":[{{"function":"{function}","analysis":"op","input":{input},"cache":"{cache}"}}]}}"#
    )
}

/// The 4-job manifest (inputs 0..4, default cache mode) the cache phase
/// replays round after round.
fn replay_manifest(function: &str) -> String {
    let jobs: Vec<String> = (0..4)
        .map(|i| format!(r#"{{"function":"{function}","analysis":"op","input":{i}}}"#))
        .collect();
    format!("{{\"jobs\":[{}]}}", jobs.join(","))
}

/// Reads `(hits, misses)` from the server's `GET /v1/cache` document.
fn cache_counters(client: &WireClient) -> (f64, f64) {
    let body = client.cache_stats().expect("GET /v1/cache");
    let doc = Json::parse(&body).expect("cache stats parse");
    let field = |name: &str| doc.get(name).and_then(Json::as_f64).expect("stats field");
    (field("hits"), field("misses"))
}

/// Pulls one `fts_histogram_*{name="…"}` series value out of a scrape.
fn histogram_value(metrics: &str, series: &str, name: &str) -> f64 {
    let needle = format!("fts_histogram_{series}{{name=\"{name}\"}} ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(needle.as_str()))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

/// `(count, sum)` of a cumulative histogram — deltas between two scrapes
/// give a per-phase mean even though the underlying series never resets.
fn histogram_tally(client: &WireClient, name: &str) -> (f64, f64) {
    let metrics = client.metrics().expect("metrics scrape");
    let n = histogram_value(&metrics, "count", name);
    (n, n * histogram_value(&metrics, "mean", name))
}

/// A one-`.op` NMOS-inverter deck with the supply at `vdd` volts: the
/// same concrete topology at every supply, so the warm-start index kicks
/// in for nearby supplies while far ones run cold.
fn inverter_deck(vdd: f64) -> String {
    format!(
        "v1 vdd 0 dc {vdd}\n\
         r1 vdd out 10k\n\
         m1 out vdd 0 sw\n\
         .model sw nmos level=1 kp=2e-5 vto=0.7 lambda=0.01 wol=10\n\
         .op\n\
         .probe v(out)\n"
    )
}

/// The status-poll cadence while waiting for a job to finish.
const POLL: Duration = Duration::from_micros(200);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("server_load", &mut argv);
    let args = parse_args(argv);

    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: args.workers,
        queue_depth: args.queue_depth,
        // Clients poll their results only after submitting their whole
        // share, so every finished row must outlive the run — size the
        // done-row retention to the workload (plus warm-up + identity
        // jobs) instead of the production default.
        cache_entries: args.requests + 16,
        ..ServerConfig::default()
    };
    let server = Server::bind(config, Arc::new(PipelineJobBuilder::new()))?;
    let addr = server.local_addr()?;
    let client = WireClient::new(addr.to_string());
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());
    tel.phase_done("bind");

    // Warm-up: the first submission pays for lattice synthesis and circuit
    // construction; everything after hits the realization cache.
    let warm = client
        .submit_manifest(&submit_body(&args.function, 0, "bypass"))
        .expect("warm-up submit");
    for id in warm {
        client.wait_done(id, POLL).expect("warm-up wait");
    }
    tel.phase_done("warmup");

    println!(
        "server load: {} op-point submissions of {:?} over {} client(s), \
         {} sim worker(s), queue depth {}",
        args.requests, args.function, args.clients, args.workers, args.queue_depth
    );

    // Load phase: each client thread submits its share and polls every job
    // to completion, counting 429 rejections (retried after a short
    // backoff, so the accepted total is exact).
    let rejected = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|_| {
                let rejected = &rejected;
                let next = &next;
                let function = &args.function;
                let client = client.clone();
                scope.spawn(move || {
                    let mut lats = Vec::new();
                    let mut ids = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= args.requests {
                            break;
                        }
                        let body = submit_body(function, (k % 4) as u32, "bypass");
                        loop {
                            let t = Instant::now();
                            match client.submit_manifest(&body) {
                                Ok(new_ids) => {
                                    lats.push(t.elapsed().as_secs_f64());
                                    ids.extend(new_ids);
                                    break;
                                }
                                Err(ClientError::Api(e)) if e.status == 429 => {
                                    rejected.fetch_add(1, Ordering::Relaxed);
                                    std::thread::sleep(std::time::Duration::from_micros(500));
                                }
                                Err(other) => panic!("unexpected submit failure: {other}"),
                            }
                        }
                    }
                    for id in ids {
                        let body = client.wait_done(id, POLL).expect("status poll");
                        assert!(
                            body.contains("\"kind\":\"op\""),
                            "job {id} did not succeed: {body}"
                        );
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    tel.phase_done("load");

    latencies.sort_by(f64::total_cmp);
    let throughput = args.requests as f64 / wall_s;
    let p50_ms = percentile(&latencies, 0.50) * 1e3;
    let p99_ms = percentile(&latencies, 0.99) * 1e3;
    let rejected = rejected.load(Ordering::Relaxed);

    // Bit-identity: the `result` object the server reports must be the
    // exact bytes `outcome_json` renders for a direct engine run of the
    // same spec.
    let builder = PipelineJobBuilder::new();
    let engine = Engine::new().threads(1);
    let mut bit_identical = true;
    for input in 0..4u32 {
        let ids = client
            .submit_manifest(&submit_body(&args.function, input, "bypass"))
            .expect("identity submit");
        let served = client.wait_done(ids[0], POLL).expect("identity wait");

        let spec = JobSpec {
            source: JobSource::Function {
                name: args.function.clone(),
                analysis: AnalysisSpec::Op { input },
            },
            deadline_ms: None,
            ladder: false,
            label: None,
            waveform: false,
            cache: CacheMode::Bypass,
        };
        let built = build_job(&builder, &spec, 0).expect("direct build");
        let report = engine.run(vec![built.job]);
        let direct = format!(
            "\"result\":{}",
            outcome_json(&report.outcomes[0], built.out, false)
        );
        if !served.contains(&direct) {
            bit_identical = false;
            eprintln!(
                "IDENTITY VIOLATION for input {input}:\n  server: {served}\n  direct: {direct}"
            );
        }
    }
    tel.phase_done("identity");

    // Cache phase: a repeated-manifest workload in default mode. The
    // flush makes the phase self-contained; round 0 runs its four jobs
    // sequentially so the warm-start index is deterministically seeded
    // (input 0 solves cold, inputs 1..4 are warm-started misses over the
    // same topology); every later round replays the identical manifest
    // and must be served from the cache.
    const CACHE_ROUNDS: usize = 20;
    client.cache_flush().expect("DELETE /v1/cache");
    let (hits0, misses0) = cache_counters(&client);
    for input in 0..4u32 {
        let ids = client
            .submit_manifest(&submit_body(&args.function, input, "default"))
            .expect("cache round-0 submit");
        for id in ids {
            client.wait_done(id, POLL).expect("cache round-0 wait");
        }
    }
    let manifest = replay_manifest(&args.function);
    for _ in 1..CACHE_ROUNDS {
        let ids = client.submit_manifest(&manifest).expect("replay submit");
        for id in ids {
            client.wait_done(id, POLL).expect("replay wait");
        }
    }
    let (hits1, misses1) = cache_counters(&client);
    let lookups = (hits1 - hits0) + (misses1 - misses0);
    let hit_ratio = if lookups > 0.0 {
        (hits1 - hits0) / lookups
    } else {
        0.0
    };
    tel.phase_done("cache");

    // Warm-start phase: one inverter topology, supplies swept as decks.
    // Far-apart supplies (>10% steps) are rejected by the warm index's
    // nearness guard and solve cold; tightly-stepped supplies around the
    // last cold point are warm-started. Histogram deltas isolate this
    // phase's solves from everything recorded earlier, so the cold/warm
    // means compare the same circuit family.
    const COLD_SUPPLIES: [f64; 4] = [1.0, 1.5, 2.25, 3.4];
    const WARM_STEPS: usize = 16;
    let (cold_n0, cold_s0) = histogram_tally(&client, "cache.cold.newton_iterations");
    let (warm_n0, warm_s0) = histogram_tally(&client, "cache.warm.newton_iterations");
    for vdd in COLD_SUPPLIES {
        let ids = client.submit_deck(&inverter_deck(vdd)).expect("cold deck");
        for id in ids {
            client.wait_done(id, POLL).expect("cold deck wait");
        }
    }
    for k in 1..=WARM_STEPS {
        let vdd = 2.25 + 0.005 * k as f64;
        let ids = client.submit_deck(&inverter_deck(vdd)).expect("warm deck");
        for id in ids {
            client.wait_done(id, POLL).expect("warm deck wait");
        }
    }
    let (cold_n1, cold_s1) = histogram_tally(&client, "cache.cold.newton_iterations");
    let (warm_n1, warm_s1) = histogram_tally(&client, "cache.warm.newton_iterations");
    let phase_mean = |n1: f64, s1: f64, n0: f64, s0: f64| {
        if n1 > n0 {
            (s1 - s0) / (n1 - n0)
        } else {
            0.0
        }
    };
    let cold_iters = phase_mean(cold_n1, cold_s1, cold_n0, cold_s0);
    let warm_iters = phase_mean(warm_n1, warm_s1, warm_n0, warm_s0);
    let warm_runs = warm_n1 - warm_n0;
    let warm_faster = warm_runs > 0.0 && warm_iters < cold_iters;
    tel.phase_done("warm");

    handle.shutdown();
    let report = server_thread.join().expect("server thread")?;

    println!("  wall        : {wall_s:.3} s");
    println!("  throughput  : {throughput:.0} req/s accepted");
    println!("  latency     : p50 {p50_ms:.3} ms, p99 {p99_ms:.3} ms");
    println!("  rejected    : {rejected} (429 backpressure)");
    println!("  identical   : {bit_identical}");
    println!(
        "  cache       : hit ratio {hit_ratio:.3} over {CACHE_ROUNDS} replay rounds; \
         inverter sweep Newton iters cold {cold_iters:.2} vs warm {warm_iters:.2} \
         ({warm_runs:.0} warm-started)"
    );
    println!(
        "  server      : {} jobs completed, {} submissions rejected, {} connections rejected",
        report.jobs_completed, report.submissions_rejected, report.connections_rejected
    );

    let json = format!(
        concat!(
            "{{\"schema\":\"fts-server-bench/1\",\"experiment\":\"server_load\",",
            "\"function\":\"{}\",\"requests\":{},\"clients\":{},\"workers\":{},",
            "\"queue_depth\":{},\"wall_s\":{},\"throughput_rps\":{},",
            "\"latency_p50_ms\":{},\"latency_p99_ms\":{},\"rejected_429\":{},",
            "\"bit_identical\":{},\"cache_rounds\":{},\"hit_ratio\":{},",
            "\"newton_iters_cold_mean\":{},\"newton_iters_warm_mean\":{},",
            "\"warm_faster\":{},\"jobs_completed\":{},\"submissions_rejected\":{},",
            "\"connections_rejected\":{}}}"
        ),
        args.function,
        args.requests,
        args.clients,
        args.workers,
        args.queue_depth,
        wall_s,
        throughput,
        p50_ms,
        p99_ms,
        rejected,
        bit_identical,
        CACHE_ROUNDS,
        hit_ratio,
        cold_iters,
        warm_iters,
        warm_faster,
        report.jobs_completed,
        report.submissions_rejected,
        report.connections_rejected,
    );
    std::fs::write(&args.out, &json)?;
    println!("\nwrote {}:\n{json}", args.out);
    tel.finish()?;

    if !bit_identical {
        std::process::exit(1);
    }
    if hit_ratio < 0.9 {
        eprintln!("CACHE REGRESSION: hit ratio {hit_ratio:.3} < 0.9 on a repeated manifest");
        std::process::exit(1);
    }
    if !warm_faster {
        eprintln!(
            "WARM-START REGRESSION: warm mean {warm_iters:.2} Newton iterations \
             is not below cold mean {cold_iters:.2}"
        );
        std::process::exit(1);
    }
    Ok(())
}
