//! Regenerates Fig. 7: junctionless device curves and summary (see
//! `repro_fig5` for the sweep definitions). The gate sweep extends to
//! negative voltages to show the depletion-mode threshold.

use fts_bench::print_device_figure;
use fts_device::DeviceKind;

fn main() {
    print_device_figure("Fig. 7", DeviceKind::Junctionless);
}
