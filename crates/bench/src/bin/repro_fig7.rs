//! Regenerates Fig. 7: junctionless device curves and summary (see
//! `repro_fig5` for the sweep definitions). The gate sweep extends to
//! negative voltages to show the depletion-mode threshold.

use fts_bench::print_device_figure;
use fts_device::DeviceKind;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("repro_fig7", &mut argv);
    print_device_figure("Fig. 7", DeviceKind::Junctionless);
    tel.phase_done("run");
    tel.finish().expect("telemetry artifacts");
}
