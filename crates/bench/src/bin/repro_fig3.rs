//! Regenerates Fig. 3: XOR3 realized on a 3×4 lattice (column
//! construction) and on the minimal 3×3 lattice (annealing search).

use fts_circuit::experiments::xor3_lattice;
use fts_logic::generators;
use fts_synth::column::column_construction;
use fts_synth::search::{anneal, AnnealOptions};

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("repro_fig3", &mut argv);
    let f = generators::xor(3);

    let col = column_construction(&f)
        .expect("three variables are in range")
        .expect("XOR3 admits a column realization");
    println!(
        "Fig. 3a — XOR3 on a {}x{} lattice (column construction):",
        col.rows(),
        col.cols()
    );
    println!("{col}");
    assert_eq!(col.truth_table(3).expect("tt"), f);

    println!("\nFig. 3b — XOR3 on the minimal 3x3 lattice (fixed search result):");
    let fixed = xor3_lattice();
    println!("{fixed}");
    assert_eq!(fixed.truth_table(3).expect("tt"), f);

    println!("\nre-deriving a 3x3 solution by simulated annealing:");
    match anneal(&f, 3, 3, &AnnealOptions::default()) {
        Some(found) => {
            println!("{found}");
            assert_eq!(found.truth_table(3).expect("tt"), f);
            println!("search re-confirmed the 9-switch realization");
        }
        None => println!("(annealing budget exhausted — fixed lattice above remains verified)"),
    }
    tel.phase_done("run");
    tel.finish().expect("telemetry artifacts");
}
