//! Runs every table/figure reproduction in sequence (Table I in `--fast`
//! mode; invoke `repro_table1` directly for the full 9×9 entry).
//!
//! `--telemetry <path.json>` is forwarded to every child as
//! `<path.json>.<bin>.json`, so each reproduction writes its own report
//! (plus its `BENCH_<bin>.json` summary) without clobbering the others.

use std::process::Command;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut telemetry_base = None;
    if let Some(k) = argv.iter().position(|a| a == "--telemetry") {
        argv.remove(k);
        if k >= argv.len() {
            eprintln!("--telemetry needs a file path");
            std::process::exit(2);
        }
        telemetry_base = Some(argv.remove(k));
    }
    let bins = [
        ("repro_table1", vec!["--fast"]),
        ("repro_table2", vec![]),
        ("repro_fig2c", vec![]),
        ("repro_fig3", vec![]),
        ("repro_fig5", vec![]),
        ("repro_fig6", vec![]),
        ("repro_fig7", vec![]),
        ("repro_fig8", vec![]),
        ("repro_fig10", vec![]),
        ("repro_fig11", vec![]),
        ("repro_fig12", vec![]),
        ("repro_future_work", vec![]),
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failures = 0;
    for (bin, args) in bins {
        println!("\n================ {bin} ================\n");
        let mut cmd = Command::new(exe_dir.join(bin));
        cmd.args(&args);
        if let Some(base) = &telemetry_base {
            cmd.arg("--telemetry").arg(format!("{base}.{bin}.json"));
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} FAILED ({status})");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} reproduction(s) failed");
        std::process::exit(1);
    }
    println!("\nall reproductions completed");
}
