//! Regenerates Fig. 12: (a) current through 1..21 series switches at
//! VDD = 1.2 V; (b) supply voltage needed to hold the two-switch current
//! (the paper's 5.5 µA point) through 2..21 switches.
//!
//! Fig. 12a runs as a batch-engine client: the 21 chain lengths are 21
//! independent [`SimJob`]s submitted together, and the engine returns
//! their operating points in submission order. Fig. 12b stays sequential
//! — each bisection step depends on the previous one.

use fts_circuit::experiments::{series_chain_netlist, series_chain_voltage_for_current};
use fts_circuit::model::SwitchCircuitModel;
use fts_engine::{Engine, SimJob, SimOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("repro_fig12", &mut argv);
    // Collect solver counters even without --telemetry, so the JSON line
    // below always carries factor counts and the symbolic reuse rate.
    let counters_here = fts_bench::telemetry::ensure_counters(&tel);
    let model = SwitchCircuitModel::square_hfo2()?;

    println!("Fig. 12a: current vs number of series switches @ VDD = 1.2 V");
    println!("{:>4} {:>14}", "N", "current [A]");
    let lengths: Vec<usize> = (1..=21).collect();
    let mut netlists = Vec::with_capacity(lengths.len());
    let mut jobs = Vec::with_capacity(lengths.len());
    for &n in &lengths {
        let (nl, _) = series_chain_netlist(&model, n, 1.2)?;
        jobs.push(SimJob::op(nl.clone()).label(&format!("chain-{n}")));
        netlists.push(nl);
    }
    let batch = Engine::new().run(jobs);
    let mut i2 = 0.0;
    for ((&n, nl), outcome) in lengths.iter().zip(&netlists).zip(&batch.outcomes) {
        let op = match outcome {
            SimOutcome::Op(op) => op,
            other => return Err(format!("chain of {n}: {other:?}").into()),
        };
        // The source delivers current, so its branch current is negative.
        let i = -op.vsource_current(nl, "VDRV")?;
        if n == 2 {
            i2 = i;
        }
        println!("{n:>4} {i:>14.4e}");
    }
    println!("paper anchors: 11.12 uA @ N=1, ~2.2 uA @ N=5, 0.52 uA @ N=21\n");

    println!(
        "Fig. 12b: voltage for constant current {:.2} uA (the N=2 current) vs series switches",
        i2 * 1e6
    );
    println!("{:>4} {:>12}", "N", "V req [V]");
    for n in 2..=21usize {
        let v = series_chain_voltage_for_current(&model, n, i2, 12.0)?;
        println!("{n:>4} {v:>12.4}");
    }
    println!("paper anchors: 1.2 V @ N=2, ~2.5 V @ N=21 (near-linear, shallow slope)");
    tel.phase_done("run");
    println!(
        "\nJSON summary:\n{{\"experiment\":\"fig12_series_chain\",\"i2_a\":{},\"solver\":{},\"phases\":{}}}",
        i2,
        fts_bench::telemetry::solver_stats_json(),
        tel.phases_json(),
    );
    tel.finish()?;
    fts_bench::telemetry::solver_stats_done(counters_here);
    Ok(())
}
