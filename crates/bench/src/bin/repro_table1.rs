//! Regenerates Table I: number of products in the m×n lattice function,
//! 2 ≤ m,n ≤ 9, and diffs against the paper's values.
//!
//! The 9×9 entry enumerates 38.9 M irredundant paths; pass `--fast` to
//! stop at 8 columns/rows (seconds instead of ~a minute in debug builds).

use fts_lattice::count::{product_count, PAPER_TABLE1};

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("repro_table1", &mut argv);
    let fast = argv.iter().any(|a| a == "--fast");
    let max = if fast { 8 } else { 9 };
    println!("Table I: number of products in an m x n lattice function");
    print!("{:>4}", "m/n");
    for n in 2..=max {
        print!(" {n:>12}");
    }
    println!();
    let mut mismatches = 0;
    for m in 2..=max {
        print!("{m:>4}");
        for n in 2..=max {
            let got = product_count(m, n);
            let want = PAPER_TABLE1[m - 2][n - 2];
            if got != want {
                mismatches += 1;
                print!(" {:>11}!", got);
            } else {
                print!(" {got:>12}");
            }
        }
        println!();
    }
    tel.phase_done("enumerate");
    tel.finish().expect("telemetry artifacts");
    if mismatches == 0 {
        println!("\nall entries match the paper exactly");
    } else {
        println!("\n{mismatches} MISMATCHES vs the paper (marked with !)");
        std::process::exit(1);
    }
}
