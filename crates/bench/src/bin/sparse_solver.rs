//! Dense-vs-sparse solver scaling on m×m switching lattices (3×3 → 8×8).
//!
//! Each lattice maps its sites to three input variables (cycling
//! row-major), drives all 2³ input combinations as PWL stimulus, and runs
//! the same short transient through both linear-solver engines. Reports
//! wall time per engine, the speedup, and the MNA sparsity statistics
//! (unknowns, pattern nonzeros, L+U fill after minimum-degree ordering).
//!
//! Writes `BENCH_sparse_solver.json` in the working directory.

use std::time::Instant;

use fts_circuit::lattice_netlist::{pwl_from_bits, BenchConfig, LatticeCircuit};
use fts_circuit::model::SwitchCircuitModel;
use fts_lattice::Lattice;
use fts_logic::Literal;
use fts_spice::analysis::TranConfig;
use fts_spice::netlist::SolverKind;
use fts_spice::Simulator;

const VARS: usize = 3;
const PHASE: f64 = 2.0e-9;
const TRANSITION: f64 = 0.2e-9;
const DT: f64 = 8.0e-11;

struct Row {
    m: usize,
    unknowns: usize,
    pattern_nnz: usize,
    factor_nnz: usize,
    steps: usize,
    dense_s: f64,
    sparse_s: f64,
}

fn lattice_circuit(
    m: usize,
    model: &SwitchCircuitModel,
) -> Result<LatticeCircuit, Box<dyn std::error::Error>> {
    let lits: Vec<Literal> = (0..m * m).map(|k| Literal::pos((k % VARS) as u8)).collect();
    let lat = Lattice::from_literals(m, m, lits)?;
    let mut ckt = LatticeCircuit::build(&lat, VARS, model, BenchConfig::default())?;
    let vdd = BenchConfig::default().vdd;
    let combos = 1u32 << VARS;
    for v in 0..VARS {
        let bits: Vec<bool> = (0..combos).map(|x| (x >> v) & 1 == 1).collect();
        let (p, n) = pwl_from_bits(&bits, PHASE, TRANSITION, vdd);
        ckt.set_stimulus(v, p, n)?;
    }
    Ok(ckt)
}

/// Best-of-`reps` transient wall time through the given engine.
fn time_transient(ckt: &LatticeCircuit, kind: SolverKind, cfg: &TranConfig, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let sim = Simulator::new(ckt.netlist()).solver(kind);
        let t0 = Instant::now();
        sim.transient(cfg).expect("transient");
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// L+U nonzeros for the circuit's MNA system, read from the first-factor
/// telemetry record of a single sparse operating point.
fn measure_factor_nnz(ckt: &LatticeCircuit) -> usize {
    fts_telemetry::reset();
    fts_telemetry::set_enabled(true);
    Simulator::new(ckt.netlist())
        .solver(SolverKind::Sparse)
        .op()
        .expect("op");
    let snap = fts_telemetry::snapshot();
    let nnz = snap
        .histogram("spice.sparse.factor_nnz")
        .map_or(0, |h| h.summary.max as usize);
    fts_telemetry::set_enabled(false);
    fts_telemetry::reset();
    nnz
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let started = Instant::now();
    let model = SwitchCircuitModel::square_hfo2()?;
    let cfg = TranConfig::fixed(DT, PHASE * (1u32 << VARS) as f64);
    let steps = (cfg.tstop / DT).round() as usize;

    println!("Dense vs sparse MNA engine: m x m lattice transient, {steps} steps");
    println!(
        "{:>4} {:>9} {:>12} {:>11} {:>11} {:>12} {:>8}",
        "m", "unknowns", "pattern nnz", "L+U nnz", "dense [s]", "sparse [s]", "speedup"
    );

    let mut rows = Vec::new();
    for m in 3..=8usize {
        let ckt = lattice_circuit(m, &model)?;
        let pattern = ckt.netlist().mna_pattern();
        let factor_nnz = measure_factor_nnz(&ckt);
        let reps = if m <= 6 { 3 } else { 2 };
        let dense_s = time_transient(&ckt, SolverKind::Dense, &cfg, reps);
        let sparse_s = time_transient(&ckt, SolverKind::Sparse, &cfg, reps);
        let row = Row {
            m,
            unknowns: ckt.netlist().unknown_count(),
            pattern_nnz: pattern.nnz(),
            factor_nnz,
            steps,
            dense_s,
            sparse_s,
        };
        println!(
            "{:>4} {:>9} {:>12} {:>11} {:>11.4} {:>12.4} {:>7.2}x",
            row.m,
            row.unknowns,
            row.pattern_nnz,
            row.factor_nnz,
            row.dense_s,
            row.sparse_s,
            row.dense_s / row.sparse_s,
        );
        rows.push(row);
    }

    let results: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "{{\"m\":{},\"unknowns\":{},\"pattern_nnz\":{},",
                    "\"factor_nnz\":{},\"steps\":{},\"dense_wall_s\":{},",
                    "\"sparse_wall_s\":{},\"speedup\":{}}}"
                ),
                r.m,
                r.unknowns,
                r.pattern_nnz,
                r.factor_nnz,
                r.steps,
                r.dense_s,
                r.sparse_s,
                r.dense_s / r.sparse_s,
            )
        })
        .collect();
    let bench = format!(
        "{{\"schema\":\"fts-bench/1\",\"bin\":\"sparse_solver\",\"wall_s\":{},\"results\":[{}]}}",
        started.elapsed().as_secs_f64(),
        results.join(","),
    );
    std::fs::write("BENCH_sparse_solver.json", &bench)?;
    println!("\nJSON summary:\n{bench}");
    eprintln!("[bench] wrote BENCH_sparse_solver.json");
    Ok(())
}
