//! Batch-engine stress benchmark: N six-by-six-lattice transients run
//! sequentially and then on the worker pool, with a bit-identity check
//! between the two, written to `BENCH_engine.json`.
//!
//! Usage: `engine_batch [--jobs N] [--threads N] [--phase-ns F]
//! [--dt-ns F] [--out PATH] [--telemetry <path.json>]`
//!
//! The reported speedup is *measured on this machine*: the worker count
//! is clamped to the available cores, the JSON records the requested and
//! effective counts side by side, and on a 1-core machine no speedup is
//! claimed at all — a pool of one cannot scale, and pretending otherwise
//! turns a CI container's core count into a fake scaling regression.

use std::time::Instant;

use fts_circuit::lattice_netlist::{pwl_from_bits, BenchConfig, LatticeCircuit};
use fts_circuit::model::SwitchCircuitModel;
use fts_engine::{executor, Engine, SimJob, SimOutcome};
use fts_lattice::Lattice;
use fts_logic::Literal;
use fts_spice::analysis::TranConfig;

struct Args {
    jobs: usize,
    threads: usize,
    phase_ns: f64,
    dt_ns: f64,
    out: String,
}

fn parse_args(argv: Vec<String>) -> Args {
    let mut args = Args {
        jobs: 64,
        threads: 8,
        phase_ns: 6.0,
        dt_ns: 0.1,
        out: "BENCH_engine.json".to_owned(),
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--jobs" => args.jobs = value("--jobs").parse().expect("--jobs: integer"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads: integer"),
            "--phase-ns" => args.phase_ns = value("--phase-ns").parse().expect("--phase-ns: float"),
            "--dt-ns" => args.dt_ns = value("--dt-ns").parse().expect("--dt-ns: float"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// A 6×6 lattice over three variables: a cyclic literal tiling (the
/// realized Boolean function is irrelevant to the benchmark; what matters
/// is the circuit size and a mix of on/off paths).
fn bench_lattice() -> Lattice {
    let pool = [
        Literal::pos(0),
        Literal::neg(1),
        Literal::pos(2),
        Literal::neg(0),
        Literal::pos(1),
        Literal::neg(2),
        Literal::True,
    ];
    let lits: Vec<Literal> = (0..36).map(|k| pool[k % pool.len()]).collect();
    Lattice::from_literals(6, 6, lits).expect("36 literals form a 6x6 lattice")
}

/// One transient job: the full 8-combination input walk of the 6×6
/// lattice, with a per-job pull-up so the batch is 64 *distinct* circuits
/// sharing one MNA sparsity pattern.
fn make_job(
    k: usize,
    model: &SwitchCircuitModel,
    phase: f64,
    dt: f64,
) -> Result<SimJob, Box<dyn std::error::Error>> {
    let bench = BenchConfig {
        pullup_ohms: 500.0e3 * (1.0 + 0.002 * k as f64),
        ..BenchConfig::default()
    };
    let mut ckt = LatticeCircuit::build(&bench_lattice(), 3, model, bench)?;
    for v in 0..3usize {
        let bits: Vec<bool> = (0..8u32).map(|x| (x >> v) & 1 == 1).collect();
        let (p, n) = pwl_from_bits(&bits, phase, 1e-9, bench.vdd);
        ckt.set_stimulus(v, p, n)?;
    }
    let out = ckt.out();
    Ok(
        SimJob::transient(ckt.netlist().clone(), TranConfig::fixed(dt, phase * 8.0))
            .probes(&[out])
            .label(&format!("lattice6x6-{k}")),
    )
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let k = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[k]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("engine_batch", &mut argv);
    let args = parse_args(argv);
    let model = SwitchCircuitModel::square_hfo2()?;
    let phase = args.phase_ns * 1e-9;
    let dt = args.dt_ns * 1e-9;

    let build = |_| -> Result<Vec<SimJob>, Box<dyn std::error::Error>> {
        (0..args.jobs)
            .map(|k| make_job(k, &model, phase, dt))
            .collect()
    };
    tel.phase_done("build");

    let cores = executor::auto_threads().max(1);
    // More workers than cores measures scheduler churn, not engine
    // scaling; clamp and report both numbers.
    let threads = args.threads.min(cores);
    println!(
        "engine batch: {} transient jobs (6x6 lattice, {} ns x 8 phases, dt {} ns), \
         {} workers ({} requested) on {} core(s)",
        args.jobs, args.phase_ns, args.dt_ns, threads, args.threads, cores
    );

    let t0 = Instant::now();
    let sequential = Engine::new().threads(1).run(build(())?);
    let seq_s = t0.elapsed().as_secs_f64();
    tel.phase_done("sequential");

    let t0 = Instant::now();
    let parallel = Engine::new().threads(threads).run(build(())?);
    let par_s = t0.elapsed().as_secs_f64();
    tel.phase_done("parallel");

    let bit_identical = parallel.outcomes == sequential.outcomes;
    if !bit_identical {
        eprintln!(
            "DETERMINISM VIOLATION: parallel batch differs from sequential \
             ({} jobs, {} threads)",
            args.jobs, threads
        );
    }
    let failed = sequential
        .outcomes
        .iter()
        .filter(|o| !o.is_success())
        .count();
    for (k, o) in sequential.outcomes.iter().enumerate() {
        if !o.is_success() {
            eprintln!("job {k} did not succeed: {}", o.kind());
        }
    }

    let mut walls: Vec<f64> = parallel.stats.iter().map(|s| s.wall_s).collect();
    walls.sort_by(f64::total_cmp);
    let p50 = percentile(&walls, 0.50);
    let p99 = percentile(&walls, 0.99);
    let speedup = seq_s / par_s;

    println!(
        "  sequential : {seq_s:.3} s ({:.3} s/job)",
        seq_s / args.jobs as f64
    );
    if cores > 1 {
        println!("  parallel   : {par_s:.3} s  (speedup {speedup:.2}x on {cores} cores)");
    } else {
        // One core: the pool interleaves, it cannot scale. Print the
        // wall and say why there is no speedup figure.
        println!("  parallel   : {par_s:.3} s  (1 core — no parallel speedup to claim)");
    }
    println!("  job wall   : p50 {p50:.3} s, p99 {p99:.3} s");
    println!("  identical  : {bit_identical}");

    let first = match &sequential.outcomes[0] {
        SimOutcome::Transient(w) => format!(
            "{{\"retained_samples\":{},\"total_samples\":{},\"stride\":{}}}",
            w.len(),
            w.total_samples(),
            w.stride()
        ),
        other => format!("{:?}", other.kind()),
    };
    let json = format!(
        concat!(
            "{{\"schema\":\"fts-engine-bench/1\",\"experiment\":\"engine_batch\",",
            "\"lattice\":\"6x6\",\"jobs\":{},\"threads\":{},",
            "\"threads_requested\":{},\"cores\":{},",
            "\"phase_ns\":{},\"dt_ns\":{},",
            "\"sequential_wall_s\":{},\"parallel_wall_s\":{},\"speedup\":{},",
            "\"bit_identical\":{},\"failed_jobs\":{},",
            "\"job_wall_p50_s\":{},\"job_wall_p99_s\":{},\"waveform\":{}}}"
        ),
        args.jobs,
        threads,
        args.threads,
        cores,
        args.phase_ns,
        args.dt_ns,
        seq_s,
        par_s,
        speedup,
        bit_identical,
        failed,
        p50,
        p99,
        first,
    );
    std::fs::write(&args.out, &json)?;
    println!("\nwrote {}:\n{json}", args.out);
    tel.finish()?;

    if !bit_identical || failed > 0 {
        std::process::exit(1);
    }
    Ok(())
}
