//! Regenerates Fig. 10: the level-1 fit of the square-gate HfO2 device's
//! Id–Vd output curve, printing virtual-TCAD data vs fitted model and the
//! extracted (Kp, Vth, lambda).

use fts_device::{Device, DeviceKind, Dielectric, Terminal, TerminalPair};
use fts_extract::{extract_switch_model, Level1};

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("repro_fig10", &mut argv);
    let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
    let model = extract_switch_model(&dev).expect("extraction");

    println!("Fig. 10: level-1 fit of the square HfO2 output curve (Type A channel)\n");
    println!("extracted parameters:");
    let show = |name: &str, m: &Level1| {
        println!(
            "  {name}: Kp = {:.4e} A/V^2, Vth = {:.4} V, lambda = {:.4} 1/V, W/L = {:.2}",
            m.kp, m.vth, m.lambda, m.w_over_l
        );
    };
    show("Type A (edge, L=0.35um)", &model.type_a);
    show("Type B (diag, L=0.50um)", &model.type_b);
    println!(
        "  fit RMSE: Type A {:.2}% of peak, Type B {:.2}% of peak\n",
        model.fit_a.relative_rmse * 100.0,
        model.fit_b.relative_rmse * 100.0
    );

    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "Vds [V]", "TCAD Ids [A]", "fit Ids [A]", "err [%]"
    );
    let pair = TerminalPair::new(Terminal::T1, Terminal::T2);
    for k in 0..=20 {
        let vds = 5.0 * k as f64 / 20.0;
        let data = dev.channel_current(pair, vds, 0.0, 5.0);
        let fit = model.type_a.ids(5.0, vds);
        let err = if data.abs() > 1e-12 {
            (fit - data) / data * 100.0
        } else {
            0.0
        };
        println!("{vds:>8.2} {data:>14.5e} {fit:>14.5e} {err:>10.2}");
    }
    tel.phase_done("run");
    tel.finish().expect("telemetry artifacts");
}
