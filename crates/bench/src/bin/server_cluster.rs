//! Cluster scaling benchmark: an in-process coordinator fronting N
//! worker servers (N ∈ {1, 2, 4}), hammered with single-job op-point
//! submissions over loopback HTTP. Writes `BENCH_server_cluster.json`
//! with requests/s per fleet size plus a rolling-restart drill at N = 2:
//! one worker is taken down mid-flight and rebound on the *same* port,
//! and the run fails (exit 1) if any job is lost or any served result
//! diverges byte-for-byte from a direct engine run.
//!
//! Scaling caveat recorded in the output: all fleets share one machine,
//! so `rps` scales with worker count only while physical cores remain
//! to absorb them (`cores` is in the JSON; on a 1-core runner the
//! scaling column is expected to be flat).
//!
//! Usage: `server_cluster [--requests N] [--clients N] [--function NAME]
//! [--restart-jobs N] [--out PATH] [--telemetry <path.json>]`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use four_terminal_lattice::batch::PipelineJobBuilder;
use fts_engine::{CacheMode, Engine};
use fts_server::service::build_job;
use fts_server::wire::{outcome_json, AnalysisSpec, JobSource, JobSpec};
use fts_server::{
    Coordinator, CoordinatorConfig, Server, ServerConfig, ServerHandle, ShutdownReport, WireClient,
};

struct Args {
    requests: usize,
    clients: usize,
    restart_jobs: usize,
    function: String,
    out: String,
}

fn parse_args(argv: Vec<String>) -> Args {
    let mut args = Args {
        requests: 800,
        clients: 8,
        restart_jobs: 48,
        function: "and2".to_owned(),
        out: "BENCH_server_cluster.json".to_owned(),
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--requests" => args.requests = value("--requests").parse().expect("--requests: int"),
            "--clients" => args.clients = value("--clients").parse().expect("--clients: int"),
            "--restart-jobs" => {
                args.restart_jobs = value("--restart-jobs")
                    .parse()
                    .expect("--restart-jobs: int");
            }
            "--function" => args.function = value("--function"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

const POLL: Duration = Duration::from_micros(200);

fn submit_body(function: &str, input: u32) -> String {
    format!(r#"{{"jobs":[{{"function":"{function}","analysis":"op","input":{input}}}]}}"#)
}

type ServerThread = std::thread::JoinHandle<std::io::Result<ShutdownReport>>;

struct Fleet {
    client: WireClient,
    coord_handle: ServerHandle,
    coord_thread: ServerThread,
    workers: Vec<(String, ServerHandle, ServerThread)>,
}

fn start_worker(
    builder: &Arc<PipelineJobBuilder>,
    addr: &str,
    capacity: usize,
) -> (String, ServerHandle, ServerThread) {
    let server = Server::bind(
        ServerConfig {
            addr: addr.to_owned(),
            // One sim thread per worker: fleet capacity then grows with
            // worker count instead of every fleet size saturating the
            // machine on its own.
            workers: 1,
            conn_workers: 4,
            queue_depth: capacity + 16,
            cache_entries: capacity + 16,
            ..ServerConfig::default()
        },
        Arc::clone(builder) as Arc<dyn fts_server::service::JobBuilder>,
    )
    .expect("worker bind");
    let addr = server.local_addr().expect("worker addr").to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, handle, thread)
}

fn start_fleet(builder: &Arc<PipelineJobBuilder>, n: usize, capacity: usize) -> Fleet {
    let workers: Vec<_> = (0..n)
        .map(|_| start_worker(builder, "127.0.0.1:0", capacity))
        .collect();
    let coordinator = Coordinator::bind(
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: workers.iter().map(|(a, _, _)| a.clone()).collect(),
            probe_interval: Duration::from_millis(50),
            cache_entries: capacity + 16,
            ..CoordinatorConfig::default()
        },
        Arc::clone(builder) as Arc<dyn fts_server::service::JobBuilder>,
    )
    .expect("coordinator bind");
    let addr = coordinator
        .local_addr()
        .expect("coordinator addr")
        .to_string();
    let coord_handle = coordinator.handle();
    let coord_thread = std::thread::spawn(move || coordinator.run());
    Fleet {
        client: WireClient::new(addr),
        coord_handle,
        coord_thread,
        workers,
    }
}

impl Fleet {
    /// Coordinator shutdown cascades to the workers; returns the
    /// coordinator's completed-job count.
    fn shutdown(self) -> u64 {
        self.coord_handle.shutdown();
        let report = self
            .coord_thread
            .join()
            .expect("coordinator thread")
            .expect("coordinator run");
        for (_, _, thread) in self.workers {
            thread.join().expect("worker thread").expect("worker run");
        }
        report.jobs_completed
    }
}

/// Submits `requests` single-job manifests over `clients` threads and
/// polls every job to completion; returns sustained requests/s.
fn run_load(client: &WireClient, function: &str, requests: usize, clients: usize) -> f64 {
    // Warm-up: first submission pays for lattice synthesis; the builder
    // cache is shared, so the cost vanishes from the timed phase.
    for id in client
        .submit_manifest(&submit_body(function, 0))
        .expect("warm-up submit")
    {
        client.wait_done(id, POLL).expect("warm-up wait");
    }

    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let next = &next;
                let client = client.clone();
                scope.spawn(move || {
                    let mut ids = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= requests {
                            break;
                        }
                        ids.extend(
                            client
                                .submit_manifest(&submit_body(function, (k % 4) as u32))
                                .expect("submit"),
                        );
                    }
                    for id in ids {
                        let body = client.wait_done(id, POLL).expect("status poll");
                        assert!(
                            body.contains("\"kind\":\"op\""),
                            "job {id} did not succeed: {body}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
    requests as f64 / t0.elapsed().as_secs_f64()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("server_cluster_phases", &mut argv);
    let args = parse_args(argv);
    let builder = Arc::new(PipelineJobBuilder::new());
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    println!(
        "server cluster: {} op-point submissions of {:?} over {} client(s), {cores} core(s)",
        args.requests, args.function, args.clients
    );

    // Scaling sweep: identical load against fleets of 1, 2, and 4 workers.
    let mut scaling = Vec::new();
    for n in [1usize, 2, 4] {
        let fleet = start_fleet(&builder, n, args.requests);
        let rps = run_load(&fleet.client, &args.function, args.requests, args.clients);
        let completed = fleet.shutdown();
        assert!(
            completed >= (args.requests + 1) as u64,
            "fleet of {n} completed only {completed} of {} jobs",
            args.requests + 1
        );
        println!("  {n} worker(s): {rps:.0} req/s");
        scaling.push((n, rps));
        tel.phase_done(&format!("fleet_{n}"));
    }

    // Rolling restart at N = 2: submit, take worker 0 down, rebind the
    // SAME port with a fresh (amnesiac) server, and require every job to
    // finish with results byte-identical to a direct engine run.
    let mut fleet = start_fleet(&builder, 2, args.restart_jobs);
    for id in fleet
        .client
        .submit_manifest(&submit_body(&args.function, 0))
        .expect("restart warm-up")
    {
        fleet
            .client
            .wait_done(id, POLL)
            .expect("restart warm-up wait");
    }
    let mut ids = Vec::new();
    for k in 0..args.restart_jobs {
        ids.extend(
            fleet
                .client
                .submit_manifest(&submit_body(&args.function, (k % 4) as u32))
                .expect("restart submit"),
        );
    }
    let (w0_addr, w0_handle, w0_thread) = fleet.workers.remove(0);
    w0_handle.shutdown();
    w0_thread
        .join()
        .expect("worker 0 thread")
        .expect("worker 0 run");
    let restarted = start_worker(&builder, &w0_addr, args.restart_jobs);
    assert_eq!(restarted.0, w0_addr, "restart must reclaim the same port");
    fleet.workers.push(restarted);

    // Direct-engine reference results for the 4 input points.
    let engine = Engine::new().threads(1);
    let direct: Vec<String> = (0..4u32)
        .map(|input| {
            let spec = JobSpec {
                source: JobSource::Function {
                    name: args.function.clone(),
                    analysis: AnalysisSpec::Op { input },
                },
                deadline_ms: None,
                ladder: false,
                label: None,
                waveform: false,
                cache: CacheMode::Default,
            };
            let built = build_job(builder.as_ref(), &spec, 0).expect("direct build");
            let report = engine.run(vec![built.job]);
            format!(
                "\"result\":{}",
                outcome_json(&report.outcomes[0], built.out, false)
            )
        })
        .collect();

    let mut lost = 0usize;
    let mut bit_identical = true;
    for (k, &id) in ids.iter().enumerate() {
        let body = fleet.client.wait_done(id, POLL).expect("restart wait");
        if !body.contains("\"kind\":\"op\"") {
            lost += 1;
            eprintln!("LOST JOB {id}: {body}");
        } else if !body.contains(&direct[k % 4]) {
            bit_identical = false;
            eprintln!(
                "IDENTITY VIOLATION for job {id}:\n  server: {body}\n  direct: {}",
                direct[k % 4]
            );
        }
    }
    let completed = ids.len() - lost;
    fleet.shutdown();
    tel.phase_done("rolling_restart");

    println!(
        "  rolling restart: {} jobs, {completed} completed, {lost} lost, identical {bit_identical}",
        ids.len()
    );

    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(n, rps)| format!("{{\"workers\":{n},\"rps\":{rps}}}"))
        .collect();
    let json = format!(
        concat!(
            "{{\"schema\":\"fts-server-bench/1\",\"experiment\":\"server_cluster\",",
            "\"function\":\"{}\",\"requests\":{},\"clients\":{},\"cores\":{},",
            "\"scaling\":[{}],\"rolling_restart\":{{\"jobs\":{},\"completed\":{},",
            "\"lost\":{},\"bit_identical\":{}}}}}"
        ),
        args.function,
        args.requests,
        args.clients,
        cores,
        scaling_json.join(","),
        ids.len(),
        completed,
        lost,
        bit_identical,
    );
    std::fs::write(&args.out, &json)?;
    println!("\nwrote {}:\n{json}", args.out);
    tel.finish()?;

    if lost > 0 || !bit_identical {
        std::process::exit(1);
    }
    Ok(())
}
