//! Lockstep-ensemble Monte Carlo benchmark: the XOR3 yield analysis run
//! scalar-sequential and ensemble-sequential *in the same process*, with
//! three correctness gates and a throughput comparison, written to
//! `BENCH_montecarlo_ensemble.json`.
//!
//! Usage: `montecarlo_ensemble [--trials N] [--seed S] [--width K]
//! [--defect-prob P] [--out PATH] [--telemetry <path.json>]`
//!
//! Gates (any failure exits non-zero):
//!
//! 1. **Twin agreement** — every ensemble-lane trial is re-solved through
//!    the scalar simulator at every input assignment; the worst absolute
//!    voltage deviation must stay ≤ 1e-9 V.
//! 2. **Report agreement** — the ensemble [`YieldReport`] must match the
//!    scalar run's exactly on every count and within 1e-9 V on every
//!    voltage statistic.
//! 3. **Bit reproducibility** — re-running the ensemble configuration
//!    (sequentially and on all cores) must reproduce the report
//!    bit-for-bit.
//!
//! The measured speedup is recorded, never gated: a loaded or 1-core CI
//! machine must not fail the build over throughput.

use std::time::Instant;

use fts_bench::telemetry;
use fts_circuit::experiments::xor3_lattice;
use fts_circuit::lattice_netlist::{BenchConfig, LatticeCircuit};
use fts_circuit::model::SwitchCircuitModel;
use fts_lattice::defects::inject_all;
use fts_montecarlo::rng::trial_rng;
use fts_montecarlo::{MonteCarlo, VariationModel, YieldReport};
use fts_spice::{LaneOutcome, OpEnsemble, OpOptions, Waveform};

const TOLERANCE: f64 = 1e-9;

struct Args {
    trials: u64,
    seed: u64,
    width: usize,
    defect_prob: f64,
    out: String,
}

fn parse_args(argv: Vec<String>) -> Args {
    let mut args = Args {
        trials: 256,
        seed: 0xD1CE,
        width: 16,
        defect_prob: 0.01,
        out: "BENCH_montecarlo_ensemble.json".to_owned(),
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--trials" => args.trials = value("--trials").parse().expect("--trials: integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--width" => args.width = value("--width").parse().expect("--width: integer"),
            "--defect-prob" => {
                args.defect_prob = value("--defect-prob")
                    .parse()
                    .expect("--defect-prob: float")
            }
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.width >= 1, "--width must be at least 1");
    args
}

/// Worst absolute difference between two reports' voltage statistics.
fn report_stat_deviation(a: &YieldReport, b: &YieldReport) -> f64 {
    [
        (a.v_ol.mean, b.v_ol.mean),
        (a.v_ol.std_dev, b.v_ol.std_dev),
        (a.v_ol.min, b.v_ol.min),
        (a.v_ol.max, b.v_ol.max),
        (a.v_oh.mean, b.v_oh.mean),
        (a.v_oh.std_dev, b.v_oh.std_dev),
        (a.v_oh.min, b.v_oh.min),
        (a.v_oh.max, b.v_oh.max),
    ]
    .iter()
    .map(|&(x, y)| (x - y).abs())
    .fold(0.0, f64::max)
}

fn report_counts_equal(a: &YieldReport, b: &YieldReport) -> bool {
    a.evaluated == b.evaluated
        && a.sim_failures == b.sim_failures
        && a.failure_causes == b.failure_causes
        && a.functional_pass == b.functional_pass
        && a.parametric_pass == b.parametric_pass
        && a.logical_fail == b.logical_fail
        && a.defects_injected == b.defects_injected
        && a.site_criticality == b.site_criticality
        && a.v_ol.n == b.v_ol.n
        && a.v_oh.n == b.v_oh.n
}

/// Per-trial twin check: rebuild every trial exactly as the Monte Carlo
/// engine samples it, push same-topology trials into a lockstep ensemble,
/// and compare each lane's solution against the scalar simulator at every
/// input assignment. Returns `(lane_trials, fallback_trials,
/// max_deviation)`.
fn twin_check(
    args: &Args,
    variation: &VariationModel,
    nominal: &SwitchCircuitModel,
) -> Result<(u64, u64, f64), Box<dyn std::error::Error>> {
    let lat = xor3_lattice();
    let bench = BenchConfig::default();
    let mut reference = LatticeCircuit::build(&lat, 3, nominal, bench)?;
    let sym = reference.mna_symbolic();
    reference.share_symbolic(std::sync::Arc::clone(&sym));
    let out = reference.out();
    let mut ensemble = OpEnsemble::new(reference.netlist());
    let opts = OpOptions::full();

    let mut lane_trials = 0u64;
    let mut fallback_trials = 0u64;
    let mut max_dev = 0.0f64;
    let mut trial = 0u64;
    while trial < args.trials {
        let chunk_end = (trial + args.width as u64).min(args.trials);
        ensemble.clear();
        // (trial circuit, lane index) for admitted lanes only; fallback
        // trials take the scalar path in both runs and are trivially equal.
        let mut lanes: Vec<LatticeCircuit> = Vec::new();
        for t in trial..chunk_end {
            let mut rng = trial_rng(args.seed, t);
            let defects = variation.sample_defects(&lat, &mut rng);
            let faulty = inject_all(&lat, &defects)?;
            let base = variation.sample_base_model(nominal, &mut rng)?;
            let site_models = variation.sample_site_models(&base, &lat, &mut rng);
            let cols = lat.cols();
            let mut ckt =
                LatticeCircuit::build_with(&faulty, 3, bench, |(r, c)| site_models[r * cols + c])?;
            ckt.share_symbolic(std::sync::Arc::clone(&sym));
            match ensemble.try_push(ckt.netlist().clone()) {
                Ok(_) => {
                    lane_trials += 1;
                    lanes.push(ckt);
                }
                Err(_) => fallback_trials += 1,
            }
        }
        for step in 0..8u32 {
            // Same Gray-code sweep order as the engine's chunk path, so
            // the twin exercises the exact warm-start trajectory the
            // Monte Carlo run uses.
            let x = step ^ (step >> 1);
            for lane in 0..ensemble.len() {
                let nl = ensemble.lane_mut(lane);
                for var in 0..3usize {
                    let bit = (x >> var) & 1 == 1;
                    let vdd = bench.vdd;
                    nl.set_vsource(
                        &format!("VIN{var}"),
                        Waveform::Dc(if bit { vdd } else { 0.0 }),
                    )?;
                    nl.set_vsource(
                        &format!("VIN{var}N"),
                        Waveform::Dc(if bit { 0.0 } else { vdd }),
                    )?;
                }
            }
            for (lane, outcome) in ensemble.solve_op(&opts).into_iter().enumerate() {
                let scalar = lanes[lane].dc_output(x)?;
                match outcome {
                    LaneOutcome::Solved(op) | LaneOutcome::Fallback(op) => {
                        max_dev = max_dev.max((op.voltage(out) - scalar).abs());
                    }
                    LaneOutcome::Failed(e) => {
                        // The scalar twin solved what the ensemble could
                        // not even via its own fallback: a real divergence.
                        eprintln!("lane {lane} failed at assignment {x}: {e}");
                        max_dev = f64::INFINITY;
                    }
                }
            }
        }
        trial = chunk_end;
    }
    Ok((lane_trials, fallback_trials, max_dev))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = telemetry::from_args("montecarlo_ensemble", &mut argv);
    let args = parse_args(argv);
    let counters_here = telemetry::ensure_counters(&tel);

    let nominal = SwitchCircuitModel::square_hfo2()?;
    let lat = xor3_lattice();
    let variation = VariationModel::standard().with_defect_prob(args.defect_prob);
    let mc = MonteCarlo::new(args.trials, args.seed).variation(variation);
    let cores = fts_montecarlo::executor::auto_threads();
    println!(
        "montecarlo ensemble: {} XOR3 DC trials, seed {:#x}, width {}, defect prob {}, {} core(s)",
        args.trials, args.seed, args.width, args.defect_prob, cores
    );
    tel.phase_done("build");

    // Scalar sequential baseline and ensemble runs, same process, same
    // inputs.
    let t0 = Instant::now();
    let scalar = mc.threads(1).ensemble_width(1).run(&lat, 3, &nominal)?;
    let scalar_s = t0.elapsed().as_secs_f64();
    tel.phase_done("scalar_sequential");

    let ens_mc = mc.threads(1).ensemble_width(args.width);
    let t0 = Instant::now();
    let ensemble = ens_mc.run(&lat, 3, &nominal)?;
    let ens_s = t0.elapsed().as_secs_f64();
    tel.phase_done("ensemble_sequential");

    let t0 = Instant::now();
    let parallel = mc
        .threads(0)
        .ensemble_width(args.width)
        .run(&lat, 3, &nominal)?;
    let par_s = t0.elapsed().as_secs_f64();
    tel.phase_done("ensemble_parallel");

    // Gate 3: bit reproducibility (sequential rerun and thread invariance).
    let rerun = ens_mc.run(&lat, 3, &nominal)?;
    let repro_ok = rerun == ensemble && parallel == ensemble;
    tel.phase_done("reproducibility");

    // Gate 2: report agreement against the scalar baseline.
    let counts_equal = report_counts_equal(&ensemble, &scalar);
    let stat_dev = report_stat_deviation(&ensemble, &scalar);
    let agreement_ok = counts_equal && stat_dev <= TOLERANCE;

    // Gate 1: per-trial twin agreement.
    let (lane_trials, fallback_trials, twin_dev) = twin_check(&args, &variation, &nominal)?;
    let twin_ok = twin_dev <= TOLERANCE;
    tel.phase_done("twin_check");

    let scalar_tps = args.trials as f64 / scalar_s;
    let ens_tps = args.trials as f64 / ens_s;
    let par_tps = args.trials as f64 / par_s;
    let speedup = ens_tps / scalar_tps;

    let snap = fts_telemetry::snapshot();
    let lane_util = snap
        .histogram("spice.ensemble.lane_utilization")
        .map_or(0.0, |h| h.summary.mean);

    println!("  scalar sequential   : {scalar_s:.3} s ({scalar_tps:.1} trials/s)");
    println!("  ensemble sequential : {ens_s:.3} s ({ens_tps:.1} trials/s, {speedup:.2}x scalar)");
    println!(
        "  ensemble parallel   : {par_s:.3} s ({par_tps:.1} trials/s, {} core(s))",
        cores
    );
    println!(
        "  twin check          : {lane_trials} lane trials, {fallback_trials} scalar fallbacks, \
         max |dV| {twin_dev:.3e} V (tolerance {TOLERANCE:.0e})"
    );
    println!("  report agreement    : counts_equal {counts_equal}, max stat |dV| {stat_dev:.3e} V");
    println!("  bit reproducible    : {repro_ok}");
    println!(
        "  ensemble telemetry  : {} lanes, {} lockstep iterations, {} scalar fallbacks, \
         {} factors, {} solves, mean lane utilization {:.3}",
        snap.counter("spice.ensemble.lanes"),
        snap.counter("spice.ensemble.lockstep_iterations"),
        snap.counter("spice.ensemble.scalar_fallback"),
        snap.counter("spice.ensemble.factor"),
        snap.counter("spice.ensemble.solve"),
        lane_util,
    );

    let json = format!(
        concat!(
            "{{\"schema\":\"fts-mc-ensemble-bench/1\",\"experiment\":\"montecarlo_ensemble\",",
            "\"lattice\":\"xor3\",\"trials\":{},\"master_seed\":{},\"ensemble_width\":{},",
            "\"defect_prob\":{},\"cores\":{},",
            "\"scalar_sequential_wall_s\":{},\"ensemble_sequential_wall_s\":{},",
            "\"ensemble_parallel_wall_s\":{},",
            "\"scalar_trials_per_s\":{},\"ensemble_trials_per_s\":{},",
            "\"ensemble_parallel_trials_per_s\":{},\"speedup\":{},\"speedup_target\":5.0,",
            "\"twin\":{{\"lane_trials\":{},\"fallback_trials\":{},\"max_deviation_v\":{},",
            "\"tolerance_v\":{},\"ok\":{}}},",
            "\"agreement\":{{\"counts_equal\":{},\"max_stat_deviation_v\":{},\"ok\":{}}},",
            "\"bit_reproducible\":{},",
            "\"ensemble_telemetry\":{{\"lanes\":{},\"lockstep_iterations\":{},",
            "\"scalar_fallback\":{},\"factors\":{},\"solves\":{},\"lane_utilization_mean\":{}}}}}"
        ),
        args.trials,
        args.seed,
        args.width,
        args.defect_prob,
        cores,
        scalar_s,
        ens_s,
        par_s,
        scalar_tps,
        ens_tps,
        par_tps,
        speedup,
        lane_trials,
        fallback_trials,
        twin_dev,
        TOLERANCE,
        twin_ok,
        counts_equal,
        stat_dev,
        agreement_ok,
        repro_ok,
        snap.counter("spice.ensemble.lanes"),
        snap.counter("spice.ensemble.lockstep_iterations"),
        snap.counter("spice.ensemble.scalar_fallback"),
        snap.counter("spice.ensemble.factor"),
        snap.counter("spice.ensemble.solve"),
        lane_util,
    );
    std::fs::write(&args.out, &json)?;
    println!("\nwrote {}:\n{json}", args.out);
    tel.finish()?;
    telemetry::solver_stats_done(counters_here);

    if !twin_ok {
        eprintln!("TWIN VIOLATION: ensemble deviates from its scalar twin by {twin_dev:.3e} V");
    }
    if !agreement_ok {
        eprintln!("AGREEMENT VIOLATION: ensemble report deviates from scalar (counts_equal {counts_equal}, stat dev {stat_dev:.3e} V)");
    }
    if !repro_ok {
        eprintln!("DETERMINISM VIOLATION: ensemble rerun or parallel run differs");
    }
    if !(twin_ok && agreement_ok && repro_ok) {
        std::process::exit(1);
    }
    Ok(())
}
