//! Regenerates Fig. 11: SPICE transient analysis of the inverse XOR3
//! lattice circuit — waveform, logic levels, and edge timing.
//!
//! Runs as a batch-engine client: the experiment's *job half*
//! ([`Xor3Experiment::prepare`]) produces the netlist and transient
//! config, `fts-engine` executes it as a [`SimJob`], and the
//! *measurement half* ([`Xor3Experiment::analyze`]) reads the returned
//! waveform.

use fts_circuit::experiments::Xor3Experiment;
use fts_circuit::model::SwitchCircuitModel;
use fts_engine::{Engine, SimJob, SimOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("repro_fig11", &mut argv);
    let model = SwitchCircuitModel::square_hfo2()?;
    tel.phase_done("extract_model");

    let experiment = Xor3Experiment::paper();
    let (ckt, cfg) = experiment.prepare(&model)?;
    let out_node = ckt.out();
    // Cap well above the sample count so the sink keeps every sample —
    // Fig. 11's edge-time measurements need the full-resolution waveform.
    let samples = (cfg.tstop / experiment.dt).ceil() as usize + 2;
    let job = SimJob::transient(ckt.netlist().clone(), cfg)
        .probes(&[out_node])
        .max_samples(samples.next_power_of_two())
        .label("fig11-xor3");
    let mut batch = Engine::new().run(vec![job]);
    let report = match batch.outcomes.pop() {
        Some(SimOutcome::Transient(w)) => {
            let out = w.voltage(out_node).expect("probed node");
            experiment.analyze(w.time(), out)
        }
        other => return Err(format!("engine did not return a transient: {other:?}").into()),
    };
    tel.phase_done("transient");

    println!("Fig. 11: inverse-XOR3 transient (3x3 lattice, VDD = 1.2 V, 500 kOhm pull-up)\n");
    println!("{:>6} {:>12} {:>12}", "abc", "out [V]", "expected");
    for (x, lvl) in report.phase_levels.iter().enumerate() {
        let expect = if (x as u32).count_ones().is_multiple_of(2) {
            "HIGH"
        } else {
            "low"
        };
        println!("{x:>6o} {lvl:>12.3} {expect:>12}");
    }
    println!("\nmeasurements (paper values in brackets):");
    println!("  functional : {}", report.functional);
    println!("  V_OL       : {:.3} V  [0.22 V]", report.v_ol);
    println!("  V_OH       : {:.3} V  [~1.2 V]", report.v_oh);
    if let Some(r) = report.rise_s {
        println!("  rise 10-90 : {:.2} ns  [11.3 ns]", r * 1e9);
    }
    if let Some(f) = report.fall_s {
        println!("  fall 90-10 : {:.2} ns  [4.7 ns]", f * 1e9);
    }

    // Sampled waveform rows for external plotting.
    println!("\nwaveform (t [ns], out [V]) every 8 ns:");
    let step = (report.time.len() / 120).max(1);
    for k in (0..report.time.len()).step_by(step) {
        println!("  {:>8.2} {:>8.4}", report.time[k] * 1e9, report.output[k]);
    }
    tel.finish()?;
    Ok(())
}
