//! Regenerates Fig. 11: SPICE transient analysis of the inverse XOR3
//! lattice circuit — waveform, logic levels, and edge timing.

use fts_circuit::experiments::Xor3Experiment;
use fts_circuit::model::SwitchCircuitModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("repro_fig11", &mut argv);
    let model = SwitchCircuitModel::square_hfo2()?;
    tel.phase_done("extract_model");
    let report = Xor3Experiment::paper().run(&model)?;
    tel.phase_done("transient");

    println!("Fig. 11: inverse-XOR3 transient (3x3 lattice, VDD = 1.2 V, 500 kOhm pull-up)\n");
    println!("{:>6} {:>12} {:>12}", "abc", "out [V]", "expected");
    for (x, lvl) in report.phase_levels.iter().enumerate() {
        let expect = if (x as u32).count_ones().is_multiple_of(2) {
            "HIGH"
        } else {
            "low"
        };
        println!("{x:>6o} {lvl:>12.3} {expect:>12}");
    }
    println!("\nmeasurements (paper values in brackets):");
    println!("  functional : {}", report.functional);
    println!("  V_OL       : {:.3} V  [0.22 V]", report.v_ol);
    println!("  V_OH       : {:.3} V  [~1.2 V]", report.v_oh);
    if let Some(r) = report.rise_s {
        println!("  rise 10-90 : {:.2} ns  [11.3 ns]", r * 1e9);
    }
    if let Some(f) = report.fall_s {
        println!("  fall 90-10 : {:.2} ns  [4.7 ns]", f * 1e9);
    }

    // Sampled waveform rows for external plotting.
    println!("\nwaveform (t [ns], out [V]) every 8 ns:");
    let step = (report.time.len() / 120).max(1);
    for k in (0..report.time.len()).step_by(step) {
        println!("  {:>8.2} {:>8.4}", report.time[k] * 1e9, report.output[k]);
    }
    tel.finish()?;
    Ok(())
}
