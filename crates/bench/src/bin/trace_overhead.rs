//! Flight-recorder overhead benchmark: runs the `server_load` workload
//! twice against an in-process `fts-server` — tracing disabled
//! (`trace_events = 0`) and tracing at the production default — and
//! writes `BENCH_trace.json` with the throughput delta. The budget is
//! ≤5% overhead with tracing on; the process exits nonzero beyond it.
//!
//! Usage: `trace_overhead [--requests N] [--clients N] [--workers N]
//! [--rounds N] [--budget-pct X] [--function NAME] [--out PATH]
//! [--telemetry <path.json>]`

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use four_terminal_lattice::batch::PipelineJobBuilder;
use fts_server::testing::http_call;
use fts_server::wire::Json;
use fts_server::{Server, ServerConfig};

struct Args {
    requests: usize,
    clients: usize,
    workers: usize,
    rounds: usize,
    budget_pct: f64,
    function: String,
    out: String,
}

fn parse_args(argv: Vec<String>) -> Args {
    let mut args = Args {
        requests: 600,
        clients: 4,
        workers: 0,
        rounds: 2,
        budget_pct: 5.0,
        function: "and2".to_owned(),
        out: "BENCH_trace.json".to_owned(),
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--requests" => args.requests = value("--requests").parse().expect("--requests: int"),
            "--clients" => args.clients = value("--clients").parse().expect("--clients: int"),
            "--workers" => args.workers = value("--workers").parse().expect("--workers: int"),
            "--rounds" => args.rounds = value("--rounds").parse().expect("--rounds: int"),
            "--budget-pct" => {
                args.budget_pct = value("--budget-pct").parse().expect("--budget-pct: float");
            }
            "--function" => args.function = value("--function"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn submit_body(function: &str, input: u32) -> String {
    format!(r#"{{"jobs":[{{"function":"{function}","analysis":"op","input":{input}}}]}}"#)
}

fn extract_ids(body: &str) -> Vec<u64> {
    let doc = Json::parse(body).expect("submit response is JSON");
    doc.get("ids")
        .and_then(Json::as_array)
        .expect("ids array")
        .iter()
        .map(|v| v.as_f64().expect("id") as u64)
        .collect()
}

fn wait_done(addr: SocketAddr, id: u64) -> String {
    loop {
        let resp = http_call(addr, "GET", &format!("/v1/jobs/{id}"), None).expect("status call");
        assert_eq!(resp.status, 200, "status poll failed: {}", resp.body);
        if resp.body.contains("\"status\":\"done\"") {
            return resp.body;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

/// One measured pass of the `server_load` workload against a fresh
/// server configured with `trace_events`. Returns the load-phase wall
/// time and, when tracing is on, the event count of one job's journal
/// (proof the recorder actually ran, not just that it was enabled).
fn run_mode(args: &Args, trace_events: usize) -> (f64, usize) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: args.workers,
        cache_entries: args.requests + 16,
        trace_events,
        ..ServerConfig::default()
    };
    let server =
        Server::bind(config, Arc::new(PipelineJobBuilder::new())).expect("bind loopback server");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Warm-up pays for lattice synthesis once per server, so the timed
    // phase compares steady-state submission throughput only.
    let warm = http_call(
        addr,
        "POST",
        "/v1/jobs",
        Some(&submit_body(&args.function, 0)),
    )
    .expect("warm-up submit");
    assert_eq!(warm.status, 202, "warm-up failed: {}", warm.body);
    let mut journal_events = 0usize;
    for id in extract_ids(&warm.body) {
        wait_done(addr, id);
        if trace_events > 0 {
            let resp =
                http_call(addr, "GET", &format!("/v1/jobs/{id}/trace"), None).expect("trace call");
            assert_eq!(resp.status, 200, "trace fetch failed: {}", resp.body);
            let doc = Json::parse(&resp.body).expect("journal is JSON");
            journal_events = doc
                .get("events")
                .and_then(Json::as_array)
                .map_or(0, |events| events.len());
            assert!(journal_events > 0, "tracing on but journal empty");
        }
    }

    let rejected = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..args.clients {
            let rejected = &rejected;
            let next = &next;
            let function = &args.function;
            scope.spawn(move || {
                let mut ids = Vec::new();
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= args.requests {
                        break;
                    }
                    let body = submit_body(function, (k % 4) as u32);
                    loop {
                        let resp =
                            http_call(addr, "POST", "/v1/jobs", Some(&body)).expect("submit call");
                        match resp.status {
                            202 => {
                                ids.extend(extract_ids(&resp.body));
                                break;
                            }
                            429 => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(std::time::Duration::from_micros(500));
                            }
                            other => panic!("unexpected submit status {other}: {}", resp.body),
                        }
                    }
                }
                for id in ids {
                    let body = wait_done(addr, id);
                    assert!(
                        body.contains("\"kind\":\"op\""),
                        "job {id} did not succeed: {body}"
                    );
                }
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();

    handle.shutdown();
    server_thread
        .join()
        .expect("server thread")
        .expect("server exit");
    (wall_s, journal_events)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tel = fts_bench::telemetry::from_args("trace_overhead", &mut argv);
    let args = parse_args(argv);
    let cap = fts_telemetry::trace::DEFAULT_EVENT_CAP;

    println!(
        "trace overhead: {} op submissions of {:?} over {} client(s), \
         {} round(s) per mode, ring capacity {cap}",
        args.requests, args.function, args.clients, args.rounds
    );

    // Alternate off/on rounds and keep each mode's best wall time: the
    // interleave spreads machine noise across both modes instead of
    // letting it land on one, and best-of-N is the standard noise floor.
    let mut wall_off = f64::INFINITY;
    let mut wall_on = f64::INFINITY;
    let mut journal_events = 0;
    for round in 0..args.rounds.max(1) {
        let (off, _) = run_mode(&args, 0);
        wall_off = wall_off.min(off);
        tel.phase_done(&format!("off-{round}"));
        let (on, events) = run_mode(&args, cap);
        wall_on = wall_on.min(on);
        journal_events = journal_events.max(events);
        tel.phase_done(&format!("on-{round}"));
        println!("  round {round}: off {off:.3} s, on {on:.3} s");
    }

    let thr_off = args.requests as f64 / wall_off;
    let thr_on = args.requests as f64 / wall_on;
    let overhead_pct = (thr_off / thr_on - 1.0) * 100.0;
    let within_budget = overhead_pct <= args.budget_pct;

    println!("  tracing off : {wall_off:.3} s best, {thr_off:.0} req/s");
    println!("  tracing on  : {wall_on:.3} s best, {thr_on:.0} req/s");
    println!(
        "  overhead    : {overhead_pct:.2}% (budget {:.1}%) -> {}",
        args.budget_pct,
        if within_budget { "PASS" } else { "FAIL" }
    );

    let json = format!(
        concat!(
            "{{\"schema\":\"fts-server-bench/1\",\"experiment\":\"trace_overhead\",",
            "\"function\":\"{}\",\"requests\":{},\"clients\":{},\"workers\":{},",
            "\"rounds\":{},\"trace_events\":{},\"journal_events\":{},",
            "\"wall_off_s\":{},\"wall_on_s\":{},\"throughput_off_rps\":{},",
            "\"throughput_on_rps\":{},\"overhead_pct\":{},\"budget_pct\":{},",
            "\"within_budget\":{}}}"
        ),
        args.function,
        args.requests,
        args.clients,
        args.workers,
        args.rounds,
        cap,
        journal_events,
        wall_off,
        wall_on,
        thr_off,
        thr_on,
        overhead_pct,
        args.budget_pct,
        within_budget,
    );
    std::fs::write(&args.out, &json)?;
    println!("\nwrote {}:\n{json}", args.out);
    tel.finish()?;

    if !within_budget {
        std::process::exit(1);
    }
    Ok(())
}
