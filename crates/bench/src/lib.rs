//! Shared helpers for the table/figure regeneration binaries and the
//! criterion benches.

pub mod telemetry;

/// Formats a row of f64 values with a label for aligned console tables.
pub fn format_row(label: &str, values: &[f64], width: usize, precision: usize) -> String {
    let mut s = format!("{label:<8}");
    for v in values {
        s.push_str(&format!(" {v:>width$.precision$e}"));
    }
    s
}

/// Formats a row of integers.
pub fn format_int_row(label: &str, values: &[u64], width: usize) -> String {
    let mut s = format!("{label:<8}");
    for v in values {
        s.push_str(&format!(" {v:>width$}"));
    }
    s
}

/// Writes series data as CSV to the given writer.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_csv<W: std::io::Write>(
    mut w: W,
    headers: &[&str],
    columns: &[&[f64]],
) -> std::io::Result<()> {
    writeln!(w, "{}", headers.join(","))?;
    let rows = columns.iter().map(|c| c.len()).min().unwrap_or(0);
    for r in 0..rows {
        let row: Vec<String> = columns.iter().map(|c| format!("{:.6e}", c[r])).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

/// Prints a Figs. 5–7-style device figure: the three §III-B sweeps of the
/// HfO2 variant (per terminal) and the Vth / on-off summary for both
/// dielectrics, with paper values alongside.
pub fn print_device_figure(figure: &str, kind: fts_device::DeviceKind) {
    use fts_device::characterize::{characterize, id_vd, id_vg};
    use fts_device::{BiasCase, Device, Dielectric};

    let dev = Device::new(kind, Dielectric::HfO2);
    let vg_min = if kind == fts_device::DeviceKind::Junctionless {
        -6.0
    } else {
        0.0
    };
    println!("{figure}: {} device, DSSS case, HfO2 gate\n", kind.name());

    let print_sweep = |title: &str, sweep_name: &str, s: &fts_device::characterize::SweepResult| {
        println!("{title}");
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12}",
            sweep_name, "I(T1) [A]", "I(T2) [A]", "I(T3) [A]", "I(T4) [A]"
        );
        let step = (s.sweep.len() / 11).max(1);
        for k in (0..s.sweep.len()).step_by(step) {
            println!(
                "{:>8.2} {:>12.4e} {:>12.4e} {:>12.4e} {:>12.4e}",
                s.sweep[k], s.currents[0][k], s.currents[1][k], s.currents[2][k], s.currents[3][k]
            );
        }
        println!();
    };

    print_sweep(
        "(a) Id-Vg at Vds = 10 mV",
        "Vgs [V]",
        &id_vg(&dev, BiasCase::DSSS, 0.01, vg_min, 5.0, 101),
    );
    print_sweep(
        "(b) Id-Vg at Vds = 5 V",
        "Vgs [V]",
        &id_vg(&dev, BiasCase::DSSS, 5.0, vg_min, 5.0, 101),
    );
    print_sweep(
        "(c) Id-Vd at Vgs = 5 V",
        "Vds [V]",
        &id_vd(&dev, BiasCase::DSSS, 5.0, 0.0, 5.0, 101),
    );

    println!("summary (paper values in brackets):");
    for d in Dielectric::all() {
        let r = characterize(&Device::new(kind, d));
        let t = fts_device::calibration::paper_targets(kind, d);
        println!(
            "  {:<5} Vth = {:>7.3} V [{:>5.2} V]   Ion/Ioff = {:>9.2e} [{:>7.0e}]   SS = {:>5.1} mV/dec",
            d.name(),
            r.vth,
            t.vth_v,
            r.on_off_ratio,
            t.on_off_ratio,
            r.swing_mv_per_dec
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_format() {
        assert!(format_row("x", &[1.0, 2.0], 10, 2).contains("1.00e0"));
        assert!(format_int_row("y", &[42], 6).contains("42"));
    }

    #[test]
    fn csv_round() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &["t", "v"], &[&[0.0, 1.0], &[5.0, 6.0]]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("t,v\n"));
        assert_eq!(s.lines().count(), 3);
    }
}
