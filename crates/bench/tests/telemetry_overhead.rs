//! Acceptance check: telemetry compiled into the Monte Carlo path must be
//! no-op cheap while disabled.
//!
//! Timing a <5% difference between two full ensemble runs is hopelessly
//! noisy in CI, so the bound is computed instead of raced: measure (a) the
//! real wall time of a disabled-telemetry ensemble, (b) how many telemetry
//! operations one trial actually performs (from an enabled run's own
//! report, counting conservatively high), and (c) the measured per-call
//! cost of the disabled fast path. The product (b)·(c) is the worst-case
//! time instrumentation can add to a trial; it must stay under 5% of (a).
//! On typical hardware the margin is two to three orders of magnitude.

use std::time::Instant;

use fts_circuit::experiments::xor3_lattice;
use fts_circuit::model::SwitchCircuitModel;
use fts_montecarlo::{EvalMode, MonteCarlo, VariationModel};

const TRIALS: u64 = 24;

#[test]
fn disabled_telemetry_costs_under_five_percent_of_a_trial() {
    let nominal = SwitchCircuitModel::square_hfo2().expect("model");
    let lat = xor3_lattice();
    let mc = MonteCarlo::new(TRIALS, 0xBEEF)
        .variation(VariationModel::standard().with_defect_prob(0.01))
        .eval(EvalMode::Dc)
        .threads(1);

    // (a) Real per-trial wall time with collection disabled (min of 2 to
    // shave warm-up effects).
    fts_telemetry::set_enabled(false);
    let mut trial_s = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        mc.run(&lat, 3, &nominal).expect("ensemble");
        trial_s = trial_s.min(t0.elapsed().as_secs_f64() / TRIALS as f64);
    }

    // (b) Telemetry operations per trial, counted conservatively high from
    // an enabled run: every span does one begin and one end, every counter
    // delta is >= 1 per call, every histogram sample is one record call.
    fts_telemetry::set_enabled(true);
    fts_telemetry::reset();
    mc.run(&lat, 3, &nominal).expect("ensemble");
    let report = fts_telemetry::snapshot();
    fts_telemetry::set_enabled(false);
    fts_telemetry::reset();
    let span_ops: u64 = report.spans.iter().map(|s| 2 * s.count).sum();
    let counter_ops: u64 = report.counters.iter().map(|c| c.value).sum();
    let record_ops: u64 = report.histograms.iter().map(|h| h.summary.n).sum();
    let ops_per_trial = (span_ops + counter_ops + record_ops) as f64 / TRIALS as f64;
    assert!(ops_per_trial > 0.0, "instrumentation must actually fire");

    // (c) Measured per-call cost of the disabled fast path.
    const CALLS: u32 = 300_000;
    let t0 = Instant::now();
    for k in 0..CALLS {
        let _g = fts_telemetry::span("overhead.probe");
        fts_telemetry::counter("overhead.probe.count", 1);
        fts_telemetry::record("overhead.probe.value", f64::from(k));
    }
    let per_op_s = t0.elapsed().as_secs_f64() / (f64::from(CALLS) * 3.0);

    let overhead_per_trial = ops_per_trial * per_op_s;
    let ratio = overhead_per_trial / trial_s;
    assert!(
        ratio < 0.05,
        "disabled telemetry adds {:.3e}s to a {:.3e}s trial ({:.2}% > 5%): \
         {ops_per_trial:.0} ops/trial at {per_op_s:.2e}s each",
        overhead_per_trial,
        trial_s,
        ratio * 100.0
    );
}
