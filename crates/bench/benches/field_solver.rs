//! Fig. 8 kernel: the 2-D current-continuity SOR solve per device.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fts_device::DeviceKind;
use fts_field::{device_plan, SolveOptions};

fn bench_field(c: &mut Criterion) {
    let mut g = c.benchmark_group("field_solve_48x48");
    g.sample_size(20);
    for kind in DeviceKind::all() {
        let p = device_plan(kind, true);
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &p, |b, p| {
            b.iter(|| p.solve(&SolveOptions::default()))
        });
    }
    g.finish();
}

/// Shared bench configuration: no plot generation, short but stable
/// measurement windows (the repro binaries are the accuracy artifacts;
/// these benches track performance regressions).
fn quick_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {name = benches;config = quick_config();targets = bench_field}
criterion_main!(benches);
