//! Fig. 3 kernels: the three synthesis engines on XOR3.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use fts_logic::generators;
use fts_synth::search::{anneal, AnnealOptions};
use fts_synth::{column, dual};

fn bench_synthesis(c: &mut Criterion) {
    let f = generators::xor(3);
    c.bench_function("altun_riedel_xor3", |b| {
        b.iter(|| dual::altun_riedel(std::hint::black_box(&f)))
    });
    c.bench_function("column_construction_xor3", |b| {
        b.iter(|| column::column_construction(std::hint::black_box(&f)))
    });
    let mut g = c.benchmark_group("anneal_xor3_3x3");
    g.sample_size(10);
    g.bench_function("default_budget", |b| {
        b.iter(|| anneal(std::hint::black_box(&f), 3, 3, &AnnealOptions::default()))
    });
    g.finish();
}

/// Shared bench configuration: no plot generation, short but stable
/// measurement windows (the repro binaries are the accuracy artifacts;
/// these benches track performance regressions).
fn quick_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {name = benches;config = quick_config();targets = bench_synthesis}
criterion_main!(benches);
