//! Fig. 10 kernel and optimizer ablation: Nelder–Mead vs
//! Levenberg–Marquardt on the level-1 fitting problem.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use fts_device::{Device, DeviceKind, Dielectric, Terminal, TerminalPair};
use fts_extract::fit::{channel_iv_data, fit_level1};
use fts_extract::optim::{levenberg_marquardt, nelder_mead, LmOptions, NelderMeadOptions};
use fts_extract::Level1;

fn bench_fit(c: &mut Criterion) {
    let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
    let pair = TerminalPair::new(Terminal::T1, Terminal::T2);
    let data = channel_iv_data(&dev, pair, 41);
    let w_over_l = dev.geometry().channel(pair).aspect();

    c.bench_function("fit_level1_full", |b| {
        b.iter(|| fit_level1(std::hint::black_box(&data), w_over_l))
    });

    // Ablation: each optimizer alone on the same residuals.
    let residuals = |p: &[f64]| -> Vec<f64> {
        let m = Level1::new(p[0].abs(), p[1], p[2].abs(), w_over_l);
        data.vgs
            .iter()
            .zip(&data.vds)
            .zip(&data.ids)
            .map(|((&vgs, &vds), &ids)| m.ids(vgs, vds) - ids)
            .collect()
    };
    c.bench_function("lm_only", |b| {
        b.iter(|| levenberg_marquardt(residuals, &[1e-5, 0.3, 0.05], &LmOptions::default()))
    });
    c.bench_function("nelder_mead_only", |b| {
        b.iter(|| {
            nelder_mead(
                |p| residuals(p).iter().map(|r| r * r).sum::<f64>(),
                &[1e-5, 0.3, 0.05],
                &NelderMeadOptions::default(),
            )
        })
    });
}

/// Shared bench configuration: no plot generation, short but stable
/// measurement windows (the repro binaries are the accuracy artifacts;
/// these benches track performance regressions).
fn quick_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {name = benches;config = quick_config();targets = bench_fit}
criterion_main!(benches);
