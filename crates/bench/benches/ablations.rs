//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. irredundancy-aware path counting vs brute-force enumeration with
//!    absorption (what makes Table I feasible);
//! 2. backward-Euler vs trapezoidal integration on the XOR3 transient;
//! 3. plain vs homotopy-assisted operating points (warm vs cold sweeps).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fts_circuit::experiments::Xor3Experiment;
use fts_circuit::model::SwitchCircuitModel;
use fts_lattice::{bruteforce, count};
use fts_spice::analysis::Integrator;
use fts_spice::Simulator;

fn ablation_path_counting(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_path_counting");
    for (m, n) in [(3usize, 3usize), (4, 4), (4, 5)] {
        g.bench_with_input(
            BenchmarkId::new("pruned", format!("{m}x{n}")),
            &(m, n),
            |b, &(m, n)| b.iter(|| count::product_count(m, n)),
        );
        g.bench_with_input(
            BenchmarkId::new("bruteforce_absorb", format!("{m}x{n}")),
            &(m, n),
            |b, &(m, n)| b.iter(|| bruteforce::product_count(m, n)),
        );
    }
    g.finish();
}

fn ablation_integrator(c: &mut Criterion) {
    let model = SwitchCircuitModel::square_hfo2().expect("model");
    let mut g = c.benchmark_group("ablation_integrator_xor3");
    g.sample_size(10);
    for (name, integ) in [
        ("backward_euler", Integrator::BackwardEuler),
        ("trapezoidal", Integrator::Trapezoidal),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &integ, |b, &integ| {
            let mut exp = Xor3Experiment::quick();
            exp.integrator = integ;
            b.iter(|| exp.run(std::hint::black_box(&model)).expect("run"))
        });
    }
    g.finish();
}

fn ablation_warm_start(c: &mut Criterion) {
    // DC sweep with warm starts vs independent cold operating points.
    use fts_spice::{MosParams, Netlist, Waveform};
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let g_ = nl.node("g");
    let out = nl.node("out");
    nl.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(1.2))
        .unwrap();
    nl.vsource("VG", g_, Netlist::GROUND, Waveform::Dc(0.0))
        .unwrap();
    nl.resistor("RL", vdd, out, 5.0e5).unwrap();
    nl.nmos(
        "M1",
        out,
        g_,
        Netlist::GROUND,
        MosParams {
            kp: 2e-5,
            vth: 0.3,
            lambda: 0.05,
            w_over_l: 2.0,
        },
    )
    .unwrap();
    let values: Vec<f64> = (0..=40).map(|k| k as f64 * 0.03).collect();

    let mut group = c.benchmark_group("ablation_dc_sweep");
    group.bench_function("warm_started", |b| {
        b.iter_batched(
            || nl.clone(),
            |nl| {
                Simulator::from_owned(nl)
                    .dc_sweep("VG", &values)
                    .expect("sweep")
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("cold_per_point", |b| {
        b.iter_batched(
            || nl.clone(),
            |mut nl| {
                values
                    .iter()
                    .map(|&v| {
                        nl.set_vsource("VG", Waveform::Dc(v)).expect("source");
                        Simulator::new(&nl).op().expect("op")
                    })
                    .count()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn ablation_field_relaxation(c: &mut Criterion) {
    // SOR (omega = 1.8) vs plain Gauss-Seidel (omega = 1.0) on the Fig. 8
    // solve — over-relaxation is what keeps the 48×48 grid interactive.
    use fts_field::{device_plan, SolveOptions};
    let p = device_plan(fts_device::DeviceKind::Square, true);
    let mut g = c.benchmark_group("ablation_field_relaxation");
    g.sample_size(10);
    for (name, omega) in [("sor_1.8", 1.8), ("gauss_seidel", 1.0)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &omega, |b, &omega| {
            b.iter(|| {
                p.solve(&SolveOptions {
                    omega,
                    ..Default::default()
                })
            })
        });
    }
    g.finish();
}

/// Shared bench configuration: no plot generation, short but stable
/// measurement windows (the repro binaries are the accuracy artifacts;
/// these benches track performance regressions).
fn quick_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets =
    ablation_path_counting,
    ablation_integrator,
    ablation_warm_start,
    ablation_field_relaxation
}
criterion_main!(benches);
