//! Scaling study: DC operating points of full canonical lattice circuits
//! (every switch its own input, all gates ON) as the grid grows — the
//! simulator-capacity question behind the paper's "considerably large
//! lattice" remark.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fts_circuit::lattice_netlist::{BenchConfig, LatticeCircuit};
use fts_circuit::model::SwitchCircuitModel;
use fts_lattice::Lattice;
use fts_spice::analysis::TranConfig;
use fts_spice::Simulator;

fn bench_scale(c: &mut Criterion) {
    let model = SwitchCircuitModel::square_hfo2().expect("model");
    let mut g = c.benchmark_group("lattice_op_scaling");
    g.sample_size(10);
    for n in [2usize, 3, 4, 5] {
        // n×n lattice over n² distinct inputs is too many rails; use the
        // all-ON worst case with a single shared input variable.
        let lat = Lattice::filled(n, n, fts_logic::Literal::pos(0)).expect("grid");
        let ckt = LatticeCircuit::build(&lat, 1, &model, BenchConfig::default()).expect("build");
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &ckt,
            |b, ckt| b.iter(|| ckt.dc_output(0b1).expect("op")),
        );
    }
    g.finish();

    // Transient scaling on the 3×3 all-ON lattice.
    let lat = Lattice::filled(3, 3, fts_logic::Literal::pos(0)).expect("grid");
    let ckt = LatticeCircuit::build(&lat, 1, &model, BenchConfig::default()).expect("build");
    c.bench_function("lattice_3x3_transient_100steps", |b| {
        b.iter(|| {
            Simulator::new(ckt.netlist())
                .transient(&TranConfig::fixed(1e-9, 100e-9))
                .expect("transient")
        })
    });
}

/// Shared bench configuration: no plot generation, short but stable
/// measurement windows (the repro binaries are the accuracy artifacts;
/// these benches track performance regressions).
fn quick_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {name = benches;config = quick_config();targets = bench_scale}
criterion_main!(benches);
