//! Table I kernel: irredundant-path counting across lattice sizes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fts_lattice::count::product_count;

fn bench_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_product_count");
    for (m, n) in [(4usize, 4usize), (5, 5), (6, 6), (7, 7)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &(m, n),
            |b, &(m, n)| b.iter(|| product_count(std::hint::black_box(m), std::hint::black_box(n))),
        );
    }
    g.finish();
}

/// Shared bench configuration: no plot generation, short but stable
/// measurement windows (the repro binaries are the accuracy artifacts;
/// these benches track performance regressions).
fn quick_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {name = benches;config = quick_config();targets = bench_counts}
criterion_main!(benches);
