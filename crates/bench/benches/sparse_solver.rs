//! Dense-vs-sparse crossover: factor+solve wall time of both engines on
//! the same diagonally dominant banded system as the order grows. The
//! dense LU is O(n³); the sparse LU on a banded pattern is O(n·b²) — this
//! bench locates the crossover that motivates `SPARSE_THRESHOLD`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fts_spice::linalg::Matrix;
use fts_spice::{SparseLu, SparseMatrix, Symbolic};

/// Bandwidth of the test systems; MNA matrices of switching lattices are
/// similarly narrow-banded after minimum-degree ordering.
const BAND: usize = 4;

fn band_entries(n: usize) -> Vec<(usize, usize)> {
    let mut e = Vec::new();
    for i in 0..n {
        for j in i.saturating_sub(BAND)..(i + BAND + 1).min(n) {
            e.push((i, j));
        }
    }
    e
}

/// Deterministic off-diagonal value; the diagonal dominates the row sum.
fn value(i: usize, j: usize) -> f64 {
    if i == j {
        4.0 * BAND as f64
    } else {
        -1.0 + 0.1 * ((i * 31 + j * 17) % 7) as f64 / 7.0
    }
}

fn bench_crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve_crossover");
    for n in [8usize, 16, 24, 32, 48, 64, 96] {
        let rhs: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();

        let mut dense = Matrix::zeros(n);
        for (i, j) in band_entries(n) {
            dense.add(i, j, value(i, j));
        }
        g.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| {
                let mut m = dense.clone();
                m.solve(&rhs).expect("solve")
            })
        });

        let mut sparse = SparseMatrix::from_entries(n, band_entries(n));
        for (i, j) in band_entries(n) {
            sparse.add(i, j, value(i, j));
        }
        let symbolic = std::sync::Arc::new(Symbolic::analyze(&sparse));
        let mut lu = SparseLu::new(symbolic);
        g.bench_with_input(BenchmarkId::new("sparse", n), &n, |b, _| {
            b.iter(|| {
                lu.factor(&sparse).expect("factor");
                let mut x = rhs.clone();
                lu.solve_in_place(&mut x);
                x
            })
        });
    }
    g.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {name = benches;config = quick_config();targets = bench_crossover}
criterion_main!(benches);
