//! Fig. 11 kernel: the full inverse-XOR3 transient.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use fts_circuit::experiments::Xor3Experiment;
use fts_circuit::model::SwitchCircuitModel;

fn bench_xor3(c: &mut Criterion) {
    let model = SwitchCircuitModel::square_hfo2().expect("model");
    let mut g = c.benchmark_group("xor3_transient");
    g.sample_size(10);
    g.bench_function("quick_profile", |b| {
        b.iter(|| {
            Xor3Experiment::quick()
                .run(std::hint::black_box(&model))
                .expect("run")
        })
    });
    g.finish();
}

/// Shared bench configuration: no plot generation, short but stable
/// measurement windows (the repro binaries are the accuracy artifacts;
/// these benches track performance regressions).
fn quick_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {name = benches;config = quick_config();targets = bench_xor3}
criterion_main!(benches);
