//! Figs. 5–7 kernels: virtual-TCAD bias solves and characterization.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fts_device::characterize::{characterize, id_vg};
use fts_device::{BiasCase, Device, DeviceKind, Dielectric};

fn bench_device(c: &mut Criterion) {
    let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
    c.bench_function("solve_bias_dsss", |b| {
        b.iter(|| dev.solve_bias(BiasCase::DSSS, std::hint::black_box(5.0), 5.0))
    });
    c.bench_function("solve_bias_dsff_floats", |b| {
        b.iter(|| dev.solve_bias(BiasCase::DSFF, std::hint::black_box(5.0), 5.0))
    });
    c.bench_function("idvg_101pts", |b| {
        b.iter(|| {
            id_vg(
                &dev,
                BiasCase::DSSS,
                5.0,
                0.0,
                5.0,
                std::hint::black_box(101),
            )
        })
    });
    let mut g = c.benchmark_group("characterize");
    for kind in DeviceKind::all() {
        let d = Device::new(kind, Dielectric::HfO2);
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &d, |b, d| {
            b.iter(|| characterize(d))
        });
    }
    g.finish();
}

/// Shared bench configuration: no plot generation, short but stable
/// measurement windows (the repro binaries are the accuracy artifacts;
/// these benches track performance regressions).
fn quick_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {name = benches;config = quick_config();targets = bench_device}
criterion_main!(benches);
