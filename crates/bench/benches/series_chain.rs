//! Fig. 12 kernel: DC operating points of series switch chains (this is
//! also the Newton-homotopy stress test — long chains start far from
//! their solution).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fts_circuit::experiments::series_chain_current;
use fts_circuit::model::SwitchCircuitModel;

fn bench_chain(c: &mut Criterion) {
    let model = SwitchCircuitModel::square_hfo2().expect("model");
    let mut g = c.benchmark_group("series_chain_op");
    for n in [1usize, 5, 11, 21] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| series_chain_current(std::hint::black_box(&model), n, 1.2).expect("op"))
        });
    }
    g.finish();
}

/// Shared bench configuration: no plot generation, short but stable
/// measurement windows (the repro binaries are the accuracy artifacts;
/// these benches track performance regressions).
fn quick_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {name = benches;config = quick_config();targets = bench_chain}
criterion_main!(benches);
