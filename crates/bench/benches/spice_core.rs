//! Simulator kernels: dense LU scaling, operating points, RC transients.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fts_spice::analysis::{Integrator, TranConfig};
use fts_spice::linalg::Matrix;
use fts_spice::{MosParams, Netlist, Simulator, Waveform};

fn lu_matrix(n: usize) -> (Matrix, Vec<f64>) {
    let mut m = Matrix::zeros(n);
    let mut state = 7u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    for r in 0..n {
        for c in 0..n {
            m.add(r, c, next());
        }
        m.add(r, r, 4.0);
    }
    let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
    (m, b)
}

fn rc_ladder(stages: usize) -> Netlist {
    let mut nl = Netlist::new();
    let mut prev = nl.node("in");
    nl.vsource("V1", prev, Netlist::GROUND, Waveform::Dc(1.0))
        .unwrap();
    for k in 0..stages {
        let n = nl.node(&format!("n{k}"));
        nl.resistor(&format!("R{k}"), prev, n, 1.0e3).unwrap();
        nl.capacitor(&format!("C{k}"), n, Netlist::GROUND, 1.0e-9)
            .unwrap();
        prev = n;
    }
    nl
}

fn mos_ring(stages: usize) -> Netlist {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    nl.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(1.2))
        .unwrap();
    let gate = nl.node("g");
    nl.vsource("VG", gate, Netlist::GROUND, Waveform::Dc(1.2))
        .unwrap();
    let params = MosParams {
        kp: 2.0e-5,
        vth: 0.3,
        lambda: 0.05,
        w_over_l: 2.0,
    };
    let mut prev = vdd;
    for k in 0..stages {
        let n = nl.node(&format!("m{k}"));
        nl.nmos(&format!("M{k}"), prev, gate, n, params).unwrap();
        prev = n;
    }
    nl.resistor("RT", prev, Netlist::GROUND, 1.0e5).unwrap();
    nl
}

fn bench_spice(c: &mut Criterion) {
    let mut g = c.benchmark_group("dense_lu");
    for n in [16usize, 64, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || lu_matrix(n),
                |(mut m, rhs)| m.solve(&rhs).expect("well conditioned"),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();

    c.bench_function("op_mos_chain_10", |b| {
        let nl = mos_ring(10);
        b.iter(|| {
            Simulator::new(std::hint::black_box(&nl))
                .op()
                .expect("converges")
        })
    });

    let mut g = c.benchmark_group("transient_rc_ladder_20");
    g.sample_size(20);
    let nl = rc_ladder(20);
    for (name, integ) in [
        ("be", Integrator::BackwardEuler),
        ("trap", Integrator::Trapezoidal),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &integ, |b, &integ| {
            b.iter(|| {
                Simulator::new(&nl)
                    .transient(&TranConfig::fixed(1e-7, 2e-5).integrator(integ).uic(true))
                    .expect("converges")
            })
        });
    }
    g.finish();
}

/// Shared bench configuration: no plot generation, short but stable
/// measurement windows (the repro binaries are the accuracy artifacts;
/// these benches track performance regressions).
fn quick_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {name = benches;config = quick_config();targets = bench_spice}
criterion_main!(benches);
