//! Monte Carlo engine scaling: sequential vs work-stealing parallel
//! throughput on the XOR3 DC-yield ensemble. The parallel run must beat
//! sequential by well over 1.5× on any multi-core machine — the reports
//! are bit-identical either way, so the speedup is free.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fts_circuit::experiments::xor3_lattice;
use fts_circuit::model::SwitchCircuitModel;
use fts_montecarlo::{EvalMode, MonteCarlo, VariationModel};

const TRIALS: u64 = 128;

fn bench_scale(c: &mut Criterion) {
    let nominal = SwitchCircuitModel::square_hfo2().expect("model");
    let lat = xor3_lattice();
    let mc = MonteCarlo::new(TRIALS, 0xBEEF)
        .variation(VariationModel::standard().with_defect_prob(0.01))
        .eval(EvalMode::Dc);

    let mut g = c.benchmark_group("montecarlo_scale");
    g.sample_size(10);
    let cores = fts_montecarlo::executor::auto_threads();
    for threads in [1usize, 2, cores.max(4)] {
        g.bench_with_input(
            BenchmarkId::new("xor3_dc_128_trials", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    mc.threads(threads)
                        .run(std::hint::black_box(&lat), 3, &nominal)
                        .expect("ensemble")
                })
            },
        );
    }
    g.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5))
}

criterion_group! {name = benches;config = quick_config();targets = bench_scale}
criterion_main!(benches);
