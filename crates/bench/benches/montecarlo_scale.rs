//! Monte Carlo engine scaling: sequential vs work-stealing parallel
//! throughput on the XOR3 DC-yield ensemble. The parallel run must beat
//! sequential by well over 1.5× on any multi-core machine — the reports
//! are bit-identical either way, so the speedup is free.
//!
//! The `telemetry_overhead` group runs the same sequential ensemble with
//! collection disabled (the default atomic fast path) and enabled; the
//! disabled variant must sit within noise of the pre-telemetry engine,
//! and the enabled one bounds the cost of full span/metric collection.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fts_circuit::experiments::xor3_lattice;
use fts_circuit::model::SwitchCircuitModel;
use fts_montecarlo::{EvalMode, MonteCarlo, VariationModel};

const TRIALS: u64 = 128;

fn bench_scale(c: &mut Criterion) {
    let nominal = SwitchCircuitModel::square_hfo2().expect("model");
    let lat = xor3_lattice();
    let mc = MonteCarlo::new(TRIALS, 0xBEEF)
        .variation(VariationModel::standard().with_defect_prob(0.01))
        .eval(EvalMode::Dc);

    let mut g = c.benchmark_group("montecarlo_scale");
    g.sample_size(10);
    let cores = fts_montecarlo::executor::auto_threads();
    for threads in [1usize, 2, cores.max(4)] {
        g.bench_with_input(
            BenchmarkId::new("xor3_dc_128_trials", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    mc.threads(threads)
                        .run(std::hint::black_box(&lat), 3, &nominal)
                        .expect("ensemble")
                })
            },
        );
    }
    g.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let nominal = SwitchCircuitModel::square_hfo2().expect("model");
    let lat = xor3_lattice();
    let mc = MonteCarlo::new(TRIALS, 0xBEEF)
        .variation(VariationModel::standard().with_defect_prob(0.01))
        .eval(EvalMode::Dc)
        .threads(1);

    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(10);
    for enabled in [false, true] {
        let id = if enabled { "enabled" } else { "disabled" };
        g.bench_function(BenchmarkId::new("xor3_dc_128_trials", id), |b| {
            fts_telemetry::set_enabled(enabled);
            fts_telemetry::reset();
            b.iter(|| {
                mc.run(std::hint::black_box(&lat), 3, &nominal)
                    .expect("ensemble")
            });
            fts_telemetry::set_enabled(false);
            fts_telemetry::reset();
        });
    }
    g.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5))
}

criterion_group! {name = benches;config = quick_config();targets = bench_scale, bench_telemetry_overhead}
criterion_main!(benches);
