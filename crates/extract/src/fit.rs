//! Fitting the level-1 model to virtual-TCAD data (§IV, Fig. 10).
//!
//! The paper's two scenarios, both in the DSSS case on the square HfO2
//! device:
//!
//! 1. Vgs swept 0→5 V with 5 V on T1 (transfer data);
//! 2. Vds swept 0→5 V with Vgs = 5 V (output data — Fig. 10).
//!
//! Both data sets are fitted jointly for (Kp, Vth, λ) with the smallest
//! root-mean-square error, exactly the objective the paper states.

use fts_device::{Device, Terminal, TerminalPair};

use crate::level1::Level1;
use crate::optim::{self, LmOptions, NelderMeadOptions};
use crate::ExtractError;

/// A set of I-V samples at known bias: `(vgs, vds) → ids`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IvData {
    /// Gate-source voltages \[V\].
    pub vgs: Vec<f64>,
    /// Drain-source voltages \[V\].
    pub vds: Vec<f64>,
    /// Measured drain currents \[A\].
    pub ids: Vec<f64>,
}

impl IvData {
    /// Appends one sample.
    pub fn push(&mut self, vgs: f64, vds: f64, ids: f64) {
        self.vgs.push(vgs);
        self.vds.push(vds);
        self.ids.push(ids);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn validate(&self) -> Result<(), ExtractError> {
        if self.vgs.len() != self.ids.len() || self.vds.len() != self.ids.len() {
            return Err(ExtractError::LengthMismatch {
                voltages: self.vgs.len().min(self.vds.len()),
                currents: self.ids.len(),
            });
        }
        if self.len() < 4 {
            return Err(ExtractError::TooFewPoints {
                got: self.len(),
                needed: 4,
            });
        }
        Ok(())
    }
}

/// Result of [`fit_level1`].
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// The fitted model.
    pub model: Level1,
    /// Root-mean-square error of the fit \[A\].
    pub rmse: f64,
    /// RMSE relative to the peak measured current.
    pub relative_rmse: f64,
    /// Levenberg–Marquardt iterations used.
    pub iterations: usize,
}

/// Fits (Kp, Vth, λ) of a level-1 model with fixed `w_over_l` to `data`.
///
/// Runs Levenberg–Marquardt from a Nelder-Mead-refined start so the result
/// does not depend on a lucky initial guess.
///
/// # Errors
///
/// Returns [`ExtractError`] for inconsistent or insufficient data, or when
/// the final cost is not finite.
pub fn fit_level1(data: &IvData, w_over_l: f64) -> Result<FitResult, ExtractError> {
    data.validate()?;
    let peak = data.ids.iter().cloned().fold(0.0f64, f64::max).max(1e-30);

    // Mixed absolute/relative weighting: the relative term makes the
    // cutoff region (where the measured current collapses) pin Vth, while
    // the absolute floor keeps the strong-inversion region dominant enough
    // to set Kp and λ.
    let weight = |ids: f64| ids.abs() + 0.0005 * peak;
    let residuals = |p: &[f64]| -> Vec<f64> {
        let m = Level1::new(p[0].abs(), p[1], p[2].abs(), w_over_l);
        data.vgs
            .iter()
            .zip(&data.vds)
            .zip(&data.ids)
            .map(|((&vgs, &vds), &ids)| (m.ids(vgs, vds) - ids) / weight(ids))
            .collect()
    };

    // Coarse global start via Nelder–Mead on the summed squares.
    let start = optim::nelder_mead(
        |p| residuals(p).iter().map(|r| r * r).sum::<f64>(),
        &[peak / 10.0, 0.5, 0.05],
        &NelderMeadOptions {
            max_iterations: 800,
            ..Default::default()
        },
    );
    let lm = optim::levenberg_marquardt(residuals, &start.x, &LmOptions::default());
    if !lm.cost.is_finite() {
        return Err(ExtractError::DidNotConverge {
            final_cost: lm.cost,
        });
    }
    let model = Level1::new(lm.x[0].abs(), lm.x[1], lm.x[2].abs(), w_over_l);
    let sse: f64 = data
        .vgs
        .iter()
        .zip(&data.vds)
        .zip(&data.ids)
        .map(|((&vgs, &vds), &ids)| (model.ids(vgs, vds) - ids).powi(2))
        .sum();
    let rmse = (sse / data.len() as f64).sqrt();
    Ok(FitResult {
        model,
        rmse,
        relative_rmse: rmse / peak,
        iterations: lm.iterations,
    })
}

/// The two transistor flavours of the paper's six-MOSFET switch model
/// (Fig. 9): Type A for the four edge channels (L = 0.35 µm in the square
/// device), Type B for the two diagonals (L = 0.5 µm).
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchModel {
    /// Edge-channel transistor model.
    pub type_a: Level1,
    /// Diagonal-channel transistor model.
    pub type_b: Level1,
    /// Fit quality for Type A.
    pub fit_a: FitResult,
    /// Fit quality for Type B.
    pub fit_b: FitResult,
    /// Grounded terminal capacitance \[F\] (1 fF in the paper).
    pub terminal_capacitance: f64,
}

/// Generates the paper's two fitting scenarios for one channel of
/// `device` and returns the sampled data.
pub fn channel_iv_data(device: &Device, pair: TerminalPair, points: usize) -> IvData {
    let mut data = IvData::default();
    // Scenario 1: Vds = 5 V, sweep Vgs — with extra resolution below
    // 1.2 V, where the switch operates in the §V circuits and where the
    // fitted threshold must be accurate.
    for k in 0..points {
        let vgs = 5.0 * k as f64 / (points - 1) as f64;
        let ids = device.channel_current(pair, 5.0, 0.0, vgs);
        data.push(vgs, 5.0, ids);
    }
    for k in 0..points {
        let vgs = 1.2 * k as f64 / (points - 1) as f64;
        let ids = device.channel_current(pair, 5.0, 0.0, vgs);
        data.push(vgs, 5.0, ids);
    }
    // Scenario 2: Vgs = 5 V, sweep Vds (Fig. 10's axis).
    for k in 0..points {
        let vds = 5.0 * k as f64 / (points - 1) as f64;
        let ids = device.channel_current(pair, vds, 0.0, 5.0);
        data.push(5.0, vds, ids);
    }
    data
}

/// Extracts the full six-MOSFET switch model from a device: fits Type A on
/// an edge channel and Type B on a diagonal channel.
///
/// # Errors
///
/// Propagates [`ExtractError`] from the underlying fits.
pub fn extract_switch_model(device: &Device) -> Result<SwitchModel, ExtractError> {
    let edge = TerminalPair::new(Terminal::T1, Terminal::T2);
    let diag = TerminalPair::new(Terminal::T1, Terminal::T3);
    let g = device.geometry();
    let data_a = channel_iv_data(device, edge, 41);
    let data_b = channel_iv_data(device, diag, 41);
    let fit_a = fit_level1(&data_a, g.channel(edge).aspect())?;
    let fit_b = fit_level1(&data_b, g.channel(diag).aspect())?;
    Ok(SwitchModel {
        type_a: fit_a.model,
        type_b: fit_b.model,
        fit_a: fit_a.clone(),
        fit_b: fit_b.clone(),
        terminal_capacitance: device.terminal_capacitance(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fts_device::{DeviceKind, Dielectric};

    #[test]
    fn fit_recovers_synthetic_level1_exactly() {
        let truth = Level1::new(2.0e-5, 0.45, 0.07, 2.0);
        let mut data = IvData::default();
        for k in 0..=20 {
            let vgs = k as f64 * 0.25;
            data.push(vgs, 5.0, truth.ids(vgs, 5.0));
            let vds = k as f64 * 0.25;
            data.push(5.0, vds, truth.ids(5.0, vds));
        }
        let fit = fit_level1(&data, 2.0).unwrap();
        assert!(
            (fit.model.kp - truth.kp).abs() / truth.kp < 1e-3,
            "kp {}",
            fit.model.kp
        );
        assert!(
            (fit.model.vth - truth.vth).abs() < 1e-3,
            "vth {}",
            fit.model.vth
        );
        assert!(
            (fit.model.lambda - truth.lambda).abs() < 1e-3,
            "lambda {}",
            fit.model.lambda
        );
        assert!(fit.relative_rmse < 1e-6);
    }

    #[test]
    fn fit_square_hfo2_fig10_quality() {
        // The paper's Fig. 10 fit: level-1 vs the virtual-TCAD output curve.
        let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
        let model = extract_switch_model(&dev).unwrap();
        // ~10% relative RMSE: level-1 vs a mobility-degraded curve, the same
        // visible-but-acceptable mismatch as the paper's Fig. 10.
        assert!(
            model.fit_a.relative_rmse < 0.16,
            "A rmse {}",
            model.fit_a.relative_rmse
        );
        assert!(
            model.fit_b.relative_rmse < 0.16,
            "B rmse {}",
            model.fit_b.relative_rmse
        );
        // Extracted threshold should sit near the electrostatic one.
        assert!(
            (model.type_a.vth - dev.vth()).abs() < 0.4,
            "vth {}",
            model.type_a.vth
        );
        assert!(model.type_a.kp > 0.0 && model.type_a.lambda >= 0.0);
    }

    #[test]
    fn type_a_is_stronger_than_type_b() {
        let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
        let m = extract_switch_model(&dev).unwrap();
        assert!(m.type_a.kp_w_over_l() > m.type_b.kp_w_over_l());
        assert!((m.terminal_capacitance - 1e-15).abs() < 1e-20);
    }

    #[test]
    fn data_validation_errors() {
        let mut bad = IvData::default();
        bad.vgs.push(1.0);
        assert!(matches!(
            fit_level1(&bad, 1.0),
            Err(ExtractError::LengthMismatch { .. })
        ));
        let mut few = IvData::default();
        few.push(1.0, 1.0, 1e-6);
        assert!(matches!(
            fit_level1(&few, 1.0),
            Err(ExtractError::TooFewPoints { .. })
        ));
    }

    #[test]
    fn channel_iv_data_shapes() {
        let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
        let pair = TerminalPair::new(Terminal::T1, Terminal::T2);
        let data = channel_iv_data(&dev, pair, 21);
        assert_eq!(data.len(), 63);
        // Currents are nonnegative and grow along each scenario.
        assert!(data.ids.iter().all(|&i| i >= -1e-15));
        assert!(data.ids[20] > data.ids[1]);
    }
}
