use std::error::Error;
use std::fmt;

/// Errors produced during model fitting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExtractError {
    /// Voltage and current vectors have different lengths.
    LengthMismatch {
        /// Voltage sample count.
        voltages: usize,
        /// Current sample count.
        currents: usize,
    },
    /// Not enough data points to constrain the parameters.
    TooFewPoints {
        /// Points supplied.
        got: usize,
        /// Minimum required.
        needed: usize,
    },
    /// The optimizer failed to reduce the residual to a finite value.
    DidNotConverge {
        /// Final objective value.
        final_cost: f64,
    },
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::LengthMismatch { voltages, currents } => {
                write!(
                    f,
                    "voltage and current vectors differ in length ({voltages} vs {currents})"
                )
            }
            ExtractError::TooFewPoints { got, needed } => {
                write!(f, "need at least {needed} data points, got {got}")
            }
            ExtractError::DidNotConverge { final_cost } => {
                write!(f, "fit did not converge (final cost {final_cost:.3e})")
            }
        }
    }
}

impl Error for ExtractError {}
