//! The SPICE level-1 MOSFET model used in §IV of the paper.
//!
//! ```text
//! Ids = 0                                                  Vgs ≤ Vth
//! Ids = Kp·(W/L)·[(Vgs−Vth)·Vds − Vds²/2]·(1+λVds)         triode
//! Ids = (Kp/2)·(W/L)·(Vgs−Vth)²·(1+λVds)                   saturation
//! ```

/// Level-1 MOSFET parameters (n-channel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Level1 {
    /// Transconductance parameter `Kp = µn·Cox` \[A/V²\].
    pub kp: f64,
    /// Threshold voltage \[V\].
    pub vth: f64,
    /// Channel-length modulation \[1/V\].
    pub lambda: f64,
    /// Geometric aspect ratio W/L.
    pub w_over_l: f64,
}

impl Level1 {
    /// Creates a model; use [`Level1::ids`] to evaluate it.
    pub fn new(kp: f64, vth: f64, lambda: f64, w_over_l: f64) -> Level1 {
        Level1 {
            kp,
            vth,
            lambda,
            w_over_l,
        }
    }

    /// Effective strength `Kp·(W/L)` \[A/V²\].
    pub fn kp_w_over_l(&self) -> f64 {
        self.kp * self.w_over_l
    }

    /// Drain current \[A\] for terminal voltages referenced to the source.
    ///
    /// Negative `vds` is handled by the symmetry `Ids(vgs, −vds) =
    /// −Ids(vgd, vds)` so the model can serve as a pass-switch element.
    ///
    /// # Example
    ///
    /// ```
    /// use fts_extract::Level1;
    ///
    /// let m = Level1::new(2.0e-5, 0.5, 0.05, 2.0);
    /// assert_eq!(m.ids(0.3, 1.0), 0.0);          // below threshold
    /// assert!(m.ids(2.0, 5.0) > m.ids(2.0, 0.1)); // saturation above triode
    /// ```
    pub fn ids(&self, vgs: f64, vds: f64) -> f64 {
        if vds < 0.0 {
            return -self.ids(vgs - vds, -vds);
        }
        let vov = vgs - self.vth;
        if vov <= 0.0 {
            return 0.0;
        }
        let beta = self.kp * self.w_over_l;
        let clm = 1.0 + self.lambda * vds;
        if vds <= vov {
            beta * (vov * vds - 0.5 * vds * vds) * clm
        } else {
            0.5 * beta * vov * vov * clm
        }
    }

    /// Saturation boundary `Vds,sat = Vgs − Vth` (0 below threshold).
    pub fn vdsat(&self, vgs: f64) -> f64 {
        (vgs - self.vth).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Level1 {
        Level1::new(1.6e-5, 0.4, 0.06, 2.0)
    }

    #[test]
    fn cutoff_region_is_zero() {
        let m = model();
        assert_eq!(m.ids(0.0, 5.0), 0.0);
        assert_eq!(m.ids(0.4, 5.0), 0.0);
    }

    #[test]
    fn triode_matches_closed_form() {
        let m = model();
        let (vgs, vds) = (2.0, 0.5);
        let expect = m.kp * 2.0 * ((vgs - 0.4) * vds - vds * vds / 2.0) * (1.0 + 0.06 * vds);
        assert!((m.ids(vgs, vds) - expect).abs() < 1e-18);
    }

    #[test]
    fn saturation_matches_closed_form() {
        let m = model();
        let (vgs, vds) = (2.0, 4.0);
        let expect = 0.5 * m.kp * 2.0 * (vgs - 0.4) * (vgs - 0.4) * (1.0 + 0.06 * vds);
        assert!((m.ids(vgs, vds) - expect).abs() < 1e-18);
    }

    #[test]
    fn continuous_at_saturation_boundary() {
        let m = model();
        let vgs = 1.5;
        let vdsat = m.vdsat(vgs);
        let below = m.ids(vgs, vdsat - 1e-9);
        let above = m.ids(vgs, vdsat + 1e-9);
        assert!((below - above).abs() < 1e-12);
    }

    #[test]
    fn negative_vds_antisymmetry() {
        // A pass switch sees either polarity: with the drain/source roles
        // swapped, Ids(Vg→old drain, −v) = −Ids(Vg→new source, +v).
        let m = model();
        assert!((m.ids(2.0, -1.0) + m.ids(3.0, 1.0)).abs() < 1e-18);
        // And the reverse current is nonzero when the "new source" is on.
        assert!(m.ids(2.0, -1.0) < 0.0);
    }

    #[test]
    fn monotone_in_gate_voltage() {
        let m = model();
        let mut last = 0.0;
        for k in 0..=50 {
            let vgs = k as f64 * 0.1;
            let i = m.ids(vgs, 5.0);
            assert!(i >= last);
            last = i;
        }
    }
}
