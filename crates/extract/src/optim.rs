//! Derivative-free and least-squares optimizers.
//!
//! Replacements for the MATLAB Curve Fitting Toolbox the paper used:
//! a [Nelder–Mead](nelder_mead) downhill simplex for arbitrary scalar
//! objectives and a [Levenberg–Marquardt](levenberg_marquardt) solver with
//! numerical Jacobians for residual vectors. The fitting workflow runs
//! both and cross-checks them.

/// Result of an optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective at `x` (for LM: half the sum of squared residuals).
    pub cost: f64,
    /// Iterations executed.
    pub iterations: usize,
}

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Terminate when the simplex spread falls below this.
    pub tolerance: f64,
    /// Relative initial simplex size.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_iterations: 4000,
            tolerance: 1e-14,
            initial_step: 0.25,
        }
    }
}

/// Minimizes `f` by the Nelder–Mead downhill simplex from `x0`.
///
/// # Panics
///
/// Panics if `x0` is empty.
///
/// # Example
///
/// ```
/// use fts_extract::optim::{nelder_mead, NelderMeadOptions};
///
/// // Rosenbrock valley.
/// let r = nelder_mead(
///     |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
///     &[-1.2, 1.0],
///     &NelderMeadOptions::default(),
/// );
/// assert!((r.x[0] - 1.0).abs() < 1e-4 && (r.x[1] - 1.0).abs() < 1e-4);
/// ```
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    opts: &NelderMeadOptions,
) -> OptimResult {
    assert!(!x0.is_empty(), "need at least one parameter");
    let n = x0.len();
    // Build initial simplex.
    let mut simplex: Vec<Vec<f64>> = vec![x0.to_vec()];
    for i in 0..n {
        let mut v = x0.to_vec();
        let step = if v[i] != 0.0 {
            v[i].abs() * opts.initial_step
        } else {
            opts.initial_step
        };
        v[i] += step;
        simplex.push(v);
    }
    let mut costs: Vec<f64> = simplex.iter().map(|v| f(v)).collect();

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut iterations = 0;
    for _ in 0..opts.max_iterations {
        iterations += 1;
        // Order simplex.
        let mut idx: Vec<usize> = (0..=n).collect();
        idx.sort_by(|&a, &b| costs[a].total_cmp(&costs[b]));
        let reorder_s: Vec<Vec<f64>> = idx.iter().map(|&i| simplex[i].clone()).collect();
        let reorder_c: Vec<f64> = idx.iter().map(|&i| costs[i]).collect();
        simplex = reorder_s;
        costs = reorder_c;

        if (costs[n] - costs[0]).abs() <= opts.tolerance * (1.0 + costs[0].abs()) {
            break;
        }

        // Centroid of all but worst.
        let centroid: Vec<f64> = (0..n)
            .map(|d| simplex[..n].iter().map(|v| v[d]).sum::<f64>() / n as f64)
            .collect();
        let worst = simplex[n].clone();
        let blend = |t: f64| -> Vec<f64> {
            (0..n)
                .map(|d| centroid[d] + t * (centroid[d] - worst[d]))
                .collect()
        };

        let reflected = blend(alpha);
        let fr = f(&reflected);
        if fr < costs[0] {
            let expanded = blend(gamma);
            let fe = f(&expanded);
            if fe < fr {
                simplex[n] = expanded;
                costs[n] = fe;
            } else {
                simplex[n] = reflected;
                costs[n] = fr;
            }
        } else if fr < costs[n - 1] {
            simplex[n] = reflected;
            costs[n] = fr;
        } else {
            let contracted = blend(-rho);
            let fc = f(&contracted);
            if fc < costs[n] {
                simplex[n] = contracted;
                costs[n] = fc;
            } else {
                // Shrink toward best.
                #[allow(clippy::needless_range_loop)] // reads simplex[0] while writing simplex[i]
                for i in 1..=n {
                    for d in 0..n {
                        simplex[i][d] = simplex[0][d] + sigma * (simplex[i][d] - simplex[0][d]);
                    }
                    costs[i] = f(&simplex[i]);
                }
            }
        }
    }
    let best = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("simplex non-empty");
    OptimResult {
        x: simplex[best].clone(),
        cost: costs[best],
        iterations,
    }
}

/// Options for [`levenberg_marquardt`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmOptions {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Terminate on relative cost improvement below this.
    pub tolerance: f64,
    /// Initial damping factor.
    pub initial_damping: f64,
}

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions {
            max_iterations: 200,
            tolerance: 1e-12,
            initial_damping: 1e-3,
        }
    }
}

/// Minimizes `½‖r(x)‖²` by Levenberg–Marquardt with a forward-difference
/// Jacobian.
///
/// # Panics
///
/// Panics if `x0` is empty or `residuals(x0)` is empty.
///
/// # Example
///
/// ```
/// use fts_extract::optim::{levenberg_marquardt, LmOptions};
///
/// // Fit y = a·x + b to exact data.
/// let data = [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)];
/// let r = levenberg_marquardt(
///     |p| data.iter().map(|(x, y)| p[0] * x + p[1] - y).collect(),
///     &[0.0, 0.0],
///     &LmOptions::default(),
/// );
/// assert!((r.x[0] - 2.0).abs() < 1e-8 && (r.x[1] - 1.0).abs() < 1e-8);
/// ```
pub fn levenberg_marquardt<F: FnMut(&[f64]) -> Vec<f64>>(
    mut residuals: F,
    x0: &[f64],
    opts: &LmOptions,
) -> OptimResult {
    assert!(!x0.is_empty(), "need at least one parameter");
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut r = residuals(&x);
    assert!(!r.is_empty(), "need at least one residual");
    let mut cost = 0.5 * r.iter().map(|v| v * v).sum::<f64>();
    let mut damping = opts.initial_damping;
    let mut iterations = 0;

    for _ in 0..opts.max_iterations {
        iterations += 1;
        // Numerical Jacobian m×n.
        let m = r.len();
        let mut jac = vec![vec![0.0f64; n]; m];
        for j in 0..n {
            let h = 1e-7 * (1.0 + x[j].abs());
            let mut xp = x.clone();
            xp[j] += h;
            let rp = residuals(&xp);
            for i in 0..m {
                jac[i][j] = (rp[i] - r[i]) / h;
            }
        }
        // Normal equations (JᵀJ + µ·diag(JᵀJ)) δ = −Jᵀr.
        let mut jtj = vec![vec![0.0f64; n]; n];
        let mut jtr = vec![0.0f64; n];
        for i in 0..m {
            for a in 0..n {
                jtr[a] += jac[i][a] * r[i];
                for b in 0..n {
                    jtj[a][b] += jac[i][a] * jac[i][b];
                }
            }
        }
        let mut improved = false;
        for _ in 0..20 {
            let mut a = jtj.clone();
            for d in 0..n {
                a[d][d] += damping * jtj[d][d].max(1e-30);
            }
            let rhs: Vec<f64> = jtr.iter().map(|v| -v).collect();
            let Some(delta) = solve_spd(&mut a, &rhs) else {
                damping *= 10.0;
                continue;
            };
            let xt: Vec<f64> = x.iter().zip(&delta).map(|(xi, di)| xi + di).collect();
            let rt = residuals(&xt);
            let ct = 0.5 * rt.iter().map(|v| v * v).sum::<f64>();
            if ct < cost {
                let rel = (cost - ct) / cost.max(1e-300);
                x = xt;
                r = rt;
                cost = ct;
                damping = (damping * 0.3).max(1e-12);
                improved = true;
                if rel < opts.tolerance {
                    return OptimResult {
                        x,
                        cost,
                        iterations,
                    };
                }
                break;
            }
            damping *= 10.0;
            if damping > 1e12 {
                break;
            }
        }
        if !improved {
            break;
        }
    }
    OptimResult {
        x,
        cost,
        iterations,
    }
}

/// Gaussian elimination with partial pivoting for the (small, symmetric
/// positive-definite-ish) normal equations.
#[allow(clippy::needless_range_loop)] // in-place elimination indexes two rows at once
fn solve_spd(a: &mut [Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    let mut x = b.to_vec();
    for col in 0..n {
        let piv = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[piv][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, piv);
        x.swap(col, piv);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            x[row] -= f * x[col];
        }
    }
    for col in (0..n).rev() {
        x[col] /= a[col][col];
        for row in 0..col {
            x[row] -= a[row][col] * x[col];
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nelder_mead_minimizes_quadratic_bowl() {
        let r = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 2.0).powi(2) + 5.0,
            &[0.0, 0.0],
            &NelderMeadOptions::default(),
        );
        assert!((r.x[0] - 3.0).abs() < 1e-5);
        assert!((r.x[1] + 2.0).abs() < 1e-5);
        assert!((r.cost - 5.0).abs() < 1e-9);
    }

    #[test]
    fn nelder_mead_handles_zero_start() {
        let r = nelder_mead(|x| x[0] * x[0], &[0.0], &NelderMeadOptions::default());
        assert!(r.x[0].abs() < 1e-6);
    }

    #[test]
    fn lm_recovers_exponential_decay() {
        // y = a·exp(−b·t), noiseless.
        let (a_true, b_true) = (2.5, 0.7);
        let ts: Vec<f64> = (0..30).map(|k| k as f64 * 0.2).collect();
        let ys: Vec<f64> = ts.iter().map(|t| a_true * (-b_true * t).exp()).collect();
        let r = levenberg_marquardt(
            |p| {
                ts.iter()
                    .zip(&ys)
                    .map(|(t, y)| p[0] * (-p[1] * t).exp() - y)
                    .collect()
            },
            &[1.0, 0.1],
            &LmOptions::default(),
        );
        assert!((r.x[0] - a_true).abs() < 1e-6, "a = {}", r.x[0]);
        assert!((r.x[1] - b_true).abs() < 1e-6, "b = {}", r.x[1]);
    }

    #[test]
    fn lm_and_nelder_mead_agree() {
        let data: Vec<(f64, f64)> = (0..20)
            .map(|k| (k as f64 * 0.5, 3.0 * (k as f64 * 0.5) + 1.5))
            .collect();
        let lm = levenberg_marquardt(
            |p| data.iter().map(|(x, y)| p[0] * x + p[1] - y).collect(),
            &[0.5, 0.0],
            &LmOptions::default(),
        );
        let nm = nelder_mead(
            |p| {
                data.iter()
                    .map(|(x, y)| (p[0] * x + p[1] - y).powi(2))
                    .sum()
            },
            &[0.5, 0.0],
            &NelderMeadOptions::default(),
        );
        assert!((lm.x[0] - nm.x[0]).abs() < 1e-3);
        assert!((lm.x[1] - nm.x[1]).abs() < 1e-3);
    }

    #[test]
    fn spd_solver_roundtrip() {
        let mut a = vec![vec![4.0, 1.0], vec![1.0, 3.0]];
        let x = solve_spd(&mut a, &[1.0, 2.0]).unwrap();
        // Verify A·x = b with the original matrix.
        let ax0 = 4.0 * x[0] + 1.0 * x[1];
        let ax1 = 1.0 * x[0] + 3.0 * x[1];
        assert!((ax0 - 1.0).abs() < 1e-12 && (ax1 - 2.0).abs() < 1e-12);
    }
}
