//! Compact-model parameter extraction (§IV of the DATE 2019 paper).
//!
//! The paper fits its TCAD I-V data to the level-1 MOSFET equations with
//! the MATLAB Curve Fitting Toolbox, extracting `Kp`, `Vth`, and `λ` for
//! the two transistor types of the six-MOSFET switch model (Fig. 9) and
//! showing the fit quality in Fig. 10. This crate replaces the toolbox with
//! two from-scratch least-squares engines — [Nelder–Mead](optim::nelder_mead)
//! and [Levenberg–Marquardt](optim::levenberg_marquardt) — plus the
//! [level-1 model](level1::Level1) itself and the
//! [fitting workflow](fit) that joins the paper's two sweep scenarios.
//!
//! # Example
//!
//! ```
//! use fts_device::{Device, DeviceKind, Dielectric};
//! use fts_extract::{extract_switch_model};
//!
//! let dev = Device::new(DeviceKind::Square, Dielectric::HfO2);
//! let model = extract_switch_model(&dev)?;
//! // Type A (edge) channels are shorter, hence stronger, than Type B.
//! assert!(model.type_a.kp_w_over_l() > model.type_b.kp_w_over_l());
//! # Ok::<(), fts_extract::ExtractError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fit;
pub mod level1;
pub mod optim;

pub use error::ExtractError;
pub use fit::{extract_switch_model, fit_level1, FitResult, IvData, SwitchModel};
pub use level1::Level1;
