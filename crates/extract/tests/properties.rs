//! Property tests for the extraction flow: the fitters must recover
//! arbitrary ground-truth level-1 models from their own noiseless data.

use proptest::prelude::*;

use fts_extract::fit::{fit_level1, IvData};
use fts_extract::optim::{levenberg_marquardt, LmOptions};
use fts_extract::Level1;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fit_recovers_random_level1_models(
        kp in 1.0e-6f64..1.0e-4,
        vth in 0.1f64..1.5,
        lambda in 0.0f64..0.15,
        w_over_l in 0.5f64..4.0,
    ) {
        let truth = Level1::new(kp, vth, lambda, w_over_l);
        let mut data = IvData::default();
        for k in 0..=24 {
            let v = 5.0 * k as f64 / 24.0;
            data.push(v, 5.0, truth.ids(v, 5.0));
            data.push(5.0, v, truth.ids(5.0, v));
        }
        let fit = fit_level1(&data, w_over_l).unwrap();
        prop_assert!((fit.model.kp - kp).abs() < 0.02 * kp, "kp {} vs {kp}", fit.model.kp);
        prop_assert!((fit.model.vth - vth).abs() < 0.02, "vth {} vs {vth}", fit.model.vth);
        prop_assert!((fit.model.lambda - lambda).abs() < 0.02, "λ {} vs {lambda}", fit.model.lambda);
        prop_assert!(fit.relative_rmse < 1e-3);
    }

    #[test]
    fn lm_solves_random_linear_least_squares(
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        xs in prop::collection::vec(-10.0f64..10.0, 3..20),
    ) {
        // Distinct abscissae guaranteed by adding the index.
        let pts: Vec<(f64, f64)> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let xx = x + i as f64 * 25.0;
                (xx, a * xx + b)
            })
            .collect();
        let r = levenberg_marquardt(
            |p| pts.iter().map(|(x, y)| p[0] * x + p[1] - y).collect(),
            &[0.0, 0.0],
            &LmOptions::default(),
        );
        prop_assert!((r.x[0] - a).abs() < 1e-6, "slope {} vs {a}", r.x[0]);
        prop_assert!((r.x[1] - b).abs() < 1e-5, "intercept {} vs {b}", r.x[1]);
    }

    #[test]
    fn level1_regions_are_consistent(
        kp in 1.0e-6f64..1.0e-4,
        vth in 0.1f64..1.5,
        lambda in 0.0f64..0.2,
        vgs in 0.0f64..5.0,
        vds in 0.0f64..5.0,
    ) {
        let m = Level1::new(kp, vth, lambda, 2.0);
        let i = m.ids(vgs, vds);
        prop_assert!(i >= 0.0);
        // Saturation clamps triode: Ids(vgs, vds) ≤ Ids at vdsat scaled by CLM growth.
        let vdsat = m.vdsat(vgs);
        if vds > vdsat && vdsat > 0.0 {
            let at_sat = m.ids(vgs, vdsat);
            prop_assert!(i >= at_sat - 1e-18, "CLM can only grow current past vdsat");
        }
        // Monotone in vds.
        let i2 = m.ids(vgs, vds + 0.1);
        prop_assert!(i2 >= i - 1e-18);
    }
}
