//! Boolean-function substrate for four-terminal switching-lattice synthesis.
//!
//! This crate provides the logic-level machinery that the DATE 2019 paper
//! "Realization of Four-Terminal Switching Lattices" (Safaltin et al.)
//! assumes from its synthesis references: bit-packed [truth tables](TruthTable),
//! [cube](Cube) covers with absorption, the Minato–Morreale
//! [irredundant sum-of-products](isop::isop) algorithm, Boolean
//! [dualization](TruthTable::dual), and a Quine–McCluskey
//! [prime-implicant](qm::prime_implicants) generator for small functions.
//!
//! # Example
//!
//! Compute an irredundant SOP cover of the 3-input XOR used throughout the
//! paper and check that it represents the same function:
//!
//! ```
//! use fts_logic::{generators, isop};
//!
//! let f = generators::xor(3);
//! let cover = isop::isop(&f);
//! assert_eq!(cover.len(), 4); // abc + ab'c' + a'bc' + a'b'c
//! assert_eq!(cover.to_truth_table(3), f);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
mod error;
pub mod generators;
pub mod isop;
pub mod qm;
mod truth_table;

pub use cube::{Cover, Cube, Literal};
pub use error::LogicError;
pub use truth_table::TruthTable;

/// Maximum supported number of input variables for [`TruthTable`].
///
/// 2^20 bits (128 KiB per table) keeps every operation laptop-scale while
/// comfortably exceeding the function sizes handled in the paper.
pub const MAX_VARS: usize = 20;
