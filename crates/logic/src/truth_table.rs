use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

use crate::{LogicError, MAX_VARS};

/// A completely specified Boolean function over `vars` inputs, stored as a
/// bit-packed truth table.
///
/// Bit `i` of the table is the function value on the assignment whose `k`-th
/// input equals bit `k` of `i` (variable 0 is the least-significant index
/// bit). Tables with fewer than 64 rows keep the unused high bits of the
/// single storage word zeroed; all operations preserve that invariant.
///
/// # Example
///
/// ```
/// use fts_logic::TruthTable;
///
/// let a = TruthTable::var(3, 0)?;
/// let b = TruthTable::var(3, 1)?;
/// let f = &a & &b; // two-input AND lifted over three variables
/// assert!(f.eval(0b011));
/// assert!(!f.eval(0b101));
/// # Ok::<(), fts_logic::LogicError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    vars: usize,
    words: Vec<u64>,
}

impl TruthTable {
    /// Creates the constant-`value` function of `vars` inputs.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::VarCountOutOfRange`] when `vars` is zero or
    /// exceeds [`MAX_VARS`].
    pub fn constant(vars: usize, value: bool) -> Result<Self, LogicError> {
        Self::check_vars(vars)?;
        let nwords = Self::word_count(vars);
        let mut words = vec![if value { u64::MAX } else { 0 }; nwords];
        if value {
            Self::mask_tail(vars, &mut words);
        }
        Ok(TruthTable { vars, words })
    }

    /// Creates the projection function returning input `index`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::VarCountOutOfRange`] for a bad `vars`, and
    /// [`LogicError::VarIndexOutOfRange`] when `index >= vars`.
    pub fn var(vars: usize, index: usize) -> Result<Self, LogicError> {
        Self::check_vars(vars)?;
        if index >= vars {
            return Err(LogicError::VarIndexOutOfRange { index, vars });
        }
        let mut tt = Self::constant(vars, false)?;
        if index < 6 {
            // The pattern repeats within every word.
            let stride = 1u32 << index;
            let mut pattern = 0u64;
            let mut bit = 0;
            while bit < 64 {
                for b in bit + stride as usize..(bit + 2 * stride as usize).min(64) {
                    pattern |= 1 << b;
                }
                bit += 2 * stride as usize;
            }
            for w in &mut tt.words {
                *w = pattern;
            }
        } else {
            // Whole words alternate in blocks of 2^(index-6).
            let block = 1usize << (index - 6);
            for (i, w) in tt.words.iter_mut().enumerate() {
                if (i / block) % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        Self::mask_tail(vars, &mut tt.words);
        Ok(tt)
    }

    /// Builds a function from a predicate over input assignments.
    ///
    /// The predicate receives the packed assignment (bit `k` = variable `k`).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::VarCountOutOfRange`] for a bad `vars`.
    ///
    /// # Example
    ///
    /// ```
    /// use fts_logic::TruthTable;
    ///
    /// // Majority of three inputs.
    /// let maj = TruthTable::from_fn(3, |x| (x.count_ones() >= 2))?;
    /// assert!(maj.eval(0b110));
    /// assert!(!maj.eval(0b100));
    /// # Ok::<(), fts_logic::LogicError>(())
    /// ```
    pub fn from_fn<F: FnMut(u32) -> bool>(vars: usize, mut f: F) -> Result<Self, LogicError> {
        Self::check_vars(vars)?;
        let mut tt = Self::constant(vars, false)?;
        for i in 0..(1u32 << vars) {
            if f(i) {
                tt.words[(i >> 6) as usize] |= 1u64 << (i & 63);
            }
        }
        Ok(tt)
    }

    /// Builds a function from the set of minterm indices where it is 1.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::VarCountOutOfRange`] for a bad `vars`, and
    /// [`LogicError::VarIndexOutOfRange`] if a minterm exceeds `2^vars - 1`.
    pub fn from_minterms(vars: usize, minterms: &[u32]) -> Result<Self, LogicError> {
        Self::check_vars(vars)?;
        let mut tt = Self::constant(vars, false)?;
        for &m in minterms {
            if m as usize >= (1usize << vars) {
                return Err(LogicError::VarIndexOutOfRange {
                    index: m as usize,
                    vars,
                });
            }
            tt.words[(m >> 6) as usize] |= 1u64 << (m & 63);
        }
        Ok(tt)
    }

    /// Number of input variables.
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Number of rows (`2^vars`).
    pub fn len(&self) -> usize {
        1usize << self.vars
    }

    /// Always false: a truth table has at least two rows.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluates the function on a packed assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment >= 2^vars`.
    pub fn eval(&self, assignment: u32) -> bool {
        assert!(
            (assignment as usize) < self.len(),
            "assignment {assignment} out of range for {} variables",
            self.vars
        );
        (self.words[(assignment >> 6) as usize] >> (assignment & 63)) & 1 == 1
    }

    /// Number of satisfying assignments.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// True if the function is constant 0.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if the function is constant 1.
    pub fn is_one(&self) -> bool {
        self.count_ones() == self.len() as u64
    }

    /// True if `self` implies `other` (`self ≤ other` pointwise).
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn implies(&self, other: &TruthTable) -> bool {
        self.assert_same_vars(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Positive cofactor: the function with variable `index` fixed to 1.
    ///
    /// The result keeps the same variable count (the fixed variable becomes
    /// a don't-care in the index).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::VarIndexOutOfRange`] when `index >= vars`.
    pub fn cofactor1(&self, index: usize) -> Result<Self, LogicError> {
        self.cofactor(index, true)
    }

    /// Negative cofactor: the function with variable `index` fixed to 0.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::VarIndexOutOfRange`] when `index >= vars`.
    pub fn cofactor0(&self, index: usize) -> Result<Self, LogicError> {
        self.cofactor(index, false)
    }

    fn cofactor(&self, index: usize, value: bool) -> Result<Self, LogicError> {
        if index >= self.vars {
            return Err(LogicError::VarIndexOutOfRange {
                index,
                vars: self.vars,
            });
        }
        let mut out = self.clone();
        if index < 6 {
            let stride = 1usize << index;
            for w in &mut out.words {
                let half = if value { *w >> stride } else { *w };
                // Broadcast the selected half into both halves of each block.
                let mask = Self::low_stride_mask(stride);
                let kept = half & mask;
                *w = kept | (kept << stride);
            }
        } else {
            let block = 1usize << (index - 6);
            let n = out.words.len();
            let mut i = 0;
            while i < n {
                for b in 0..block {
                    let src = if value { i + block + b } else { i + b };
                    let v = out.words[src];
                    out.words[i + b] = v;
                    out.words[i + block + b] = v;
                }
                i += 2 * block;
            }
        }
        Self::mask_tail(out.vars, &mut out.words);
        Ok(out)
    }

    /// True if the function depends on variable `index`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::VarIndexOutOfRange`] when `index >= vars`.
    pub fn depends_on(&self, index: usize) -> Result<bool, LogicError> {
        Ok(self.cofactor0(index)? != self.cofactor1(index)?)
    }

    /// The Boolean dual `f^D(x) = ¬f(¬x)`.
    ///
    /// Duality is the backbone of the Altun–Riedel lattice construction: the
    /// products of `f^D` become the rows of the synthesized lattice.
    ///
    /// # Example
    ///
    /// ```
    /// use fts_logic::generators;
    ///
    /// // XOR of an odd number of inputs is self-dual.
    /// let f = generators::xor(3);
    /// assert_eq!(f.dual(), f);
    /// ```
    pub fn dual(&self) -> Self {
        let mut out = Self::constant(self.vars, false).expect("vars already validated");
        let all = (self.len() - 1) as u32;
        for i in 0..self.len() as u32 {
            if !self.eval(all ^ i) {
                out.words[(i >> 6) as usize] |= 1u64 << (i & 63);
            }
        }
        out
    }

    /// True if the function equals its own dual.
    pub fn is_self_dual(&self) -> bool {
        self.dual() == *self
    }

    /// Iterator over the minterm indices where the function is 1.
    pub fn minterms(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len() as u32).filter(move |&i| self.eval(i))
    }

    fn check_vars(vars: usize) -> Result<(), LogicError> {
        if vars == 0 || vars > MAX_VARS {
            Err(LogicError::VarCountOutOfRange { requested: vars })
        } else {
            Ok(())
        }
    }

    fn word_count(vars: usize) -> usize {
        (1usize << vars).div_ceil(64)
    }

    fn mask_tail(vars: usize, words: &mut [u64]) {
        if vars < 6 {
            let bits = 1usize << vars;
            words[0] &= (1u64 << bits) - 1;
        }
    }

    fn low_stride_mask(stride: usize) -> u64 {
        // Bits where the `stride` bit of the index is 0, e.g. stride=1 →
        // 0x5555..., stride=2 → 0x3333..., stride=4 → 0x0f0f...
        let mut mask = 0u64;
        let mut bit = 0;
        while bit < 64 {
            for b in bit..bit + stride {
                mask |= 1 << b;
            }
            bit += 2 * stride;
        }
        mask
    }

    fn assert_same_vars(&self, other: &TruthTable) {
        assert_eq!(
            self.vars, other.vars,
            "truth tables must have the same variable count"
        );
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars, ", self.vars)?;
        if self.vars <= 6 {
            // Print as a binary string, row 0 first.
            for i in 0..self.len() as u32 {
                write!(f, "{}", if self.eval(i) { '1' } else { '0' })?;
            }
        } else {
            write!(f, "{} ones of {}", self.count_ones(), self.len())?;
        }
        write!(f, ")")
    }
}

impl BitAnd for &TruthTable {
    type Output = TruthTable;
    fn bitand(self, rhs: &TruthTable) -> TruthTable {
        self.assert_same_vars(rhs);
        TruthTable {
            vars: self.vars,
            words: self
                .words
                .iter()
                .zip(&rhs.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }
}

impl BitOr for &TruthTable {
    type Output = TruthTable;
    fn bitor(self, rhs: &TruthTable) -> TruthTable {
        self.assert_same_vars(rhs);
        TruthTable {
            vars: self.vars,
            words: self
                .words
                .iter()
                .zip(&rhs.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }
}

impl BitXor for &TruthTable {
    type Output = TruthTable;
    fn bitxor(self, rhs: &TruthTable) -> TruthTable {
        self.assert_same_vars(rhs);
        TruthTable {
            vars: self.vars,
            words: self
                .words
                .iter()
                .zip(&rhs.words)
                .map(|(a, b)| a ^ b)
                .collect(),
        }
    }
}

impl Not for &TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        TruthTable::mask_tail(self.vars, &mut words);
        TruthTable {
            vars: self.vars,
            words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_tables() {
        let zero = TruthTable::constant(3, false).unwrap();
        let one = TruthTable::constant(3, true).unwrap();
        assert!(zero.is_zero());
        assert!(one.is_one());
        assert_eq!(one.count_ones(), 8);
    }

    #[test]
    fn var_projection_small_and_large() {
        for vars in [1, 3, 6, 7, 8] {
            for v in 0..vars {
                let tt = TruthTable::var(vars, v).unwrap();
                for i in 0..(1u32 << vars) {
                    assert_eq!(tt.eval(i), (i >> v) & 1 == 1, "vars={vars} v={v} i={i}");
                }
            }
        }
    }

    #[test]
    fn var_rejects_out_of_range() {
        assert!(matches!(
            TruthTable::var(3, 3),
            Err(LogicError::VarIndexOutOfRange { .. })
        ));
        assert!(matches!(
            TruthTable::var(0, 0),
            Err(LogicError::VarCountOutOfRange { .. })
        ));
        assert!(TruthTable::var(MAX_VARS + 1, 0).is_err());
    }

    #[test]
    fn boolean_ops_match_pointwise() {
        let a = TruthTable::var(4, 0).unwrap();
        let b = TruthTable::var(4, 2).unwrap();
        let and = &a & &b;
        let or = &a | &b;
        let xor = &a ^ &b;
        let na = !&a;
        for i in 0..16u32 {
            let (va, vb) = ((i & 1) == 1, (i >> 2) & 1 == 1);
            assert_eq!(and.eval(i), va && vb);
            assert_eq!(or.eval(i), va || vb);
            assert_eq!(xor.eval(i), va ^ vb);
            assert_eq!(na.eval(i), !va);
        }
    }

    #[test]
    fn complement_keeps_tail_bits_clean() {
        let a = TruthTable::var(2, 0).unwrap();
        let na = !&a;
        assert_eq!(na.count_ones(), 2);
        assert!((&na | &a).is_one());
    }

    #[test]
    fn cofactors_shannon_expansion() {
        // f = x0 x2 + x1' : check f = x_i' f0 + x_i f1 for every variable.
        let x0 = TruthTable::var(3, 0).unwrap();
        let x1 = TruthTable::var(3, 1).unwrap();
        let x2 = TruthTable::var(3, 2).unwrap();
        let f = &(&x0 & &x2) | &!&x1;
        for v in 0..3 {
            let f0 = f.cofactor0(v).unwrap();
            let f1 = f.cofactor1(v).unwrap();
            let xv = TruthTable::var(3, v).unwrap();
            let rebuilt = &(&!&xv & &f0) | &(&xv & &f1);
            assert_eq!(rebuilt, f, "variable {v}");
            assert!(!f0.depends_on(v).unwrap());
        }
    }

    #[test]
    fn cofactors_on_word_boundary_vars() {
        // vars = 8 exercises the index >= 6 code path.
        let f = TruthTable::from_fn(8, |x| x.count_ones() % 3 == 0).unwrap();
        for v in 0..8 {
            let f0 = f.cofactor0(v).unwrap();
            let f1 = f.cofactor1(v).unwrap();
            for i in 0..256u32 {
                let i0 = i & !(1 << v);
                let i1 = i | (1 << v);
                assert_eq!(f0.eval(i), f.eval(i0));
                assert_eq!(f1.eval(i), f.eval(i1));
            }
        }
    }

    #[test]
    fn dual_of_and_is_or() {
        let a = TruthTable::var(2, 0).unwrap();
        let b = TruthTable::var(2, 1).unwrap();
        let and = &a & &b;
        let or = &a | &b;
        assert_eq!(and.dual(), or);
        assert_eq!(or.dual(), and);
    }

    #[test]
    fn dual_is_involution() {
        let f = TruthTable::from_fn(5, |x| x.wrapping_mul(2654435761).wrapping_add(x) & 8 != 0)
            .unwrap();
        assert_eq!(f.dual().dual(), f);
    }

    #[test]
    fn implies_partial_order() {
        let a = TruthTable::var(3, 0).unwrap();
        let b = TruthTable::var(3, 1).unwrap();
        let ab = &a & &b;
        assert!(ab.implies(&a));
        assert!(!a.implies(&ab));
        assert!(a.implies(&a));
    }

    #[test]
    fn minterms_roundtrip() {
        let f = TruthTable::from_minterms(4, &[0, 3, 7, 12, 15]).unwrap();
        let ms: Vec<u32> = f.minterms().collect();
        assert_eq!(ms, vec![0, 3, 7, 12, 15]);
        let g = TruthTable::from_minterms(4, &ms).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn from_minterms_rejects_out_of_range() {
        assert!(TruthTable::from_minterms(3, &[8]).is_err());
    }

    #[test]
    fn debug_is_never_empty() {
        let f = TruthTable::constant(2, false).unwrap();
        assert!(!format!("{f:?}").is_empty());
        let g = TruthTable::constant(10, true).unwrap();
        assert!(format!("{g:?}").contains("1024"));
    }
}
