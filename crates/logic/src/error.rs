use std::error::Error;
use std::fmt;

/// Errors produced by logic-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// The requested variable count exceeds [`crate::MAX_VARS`] or is zero
    /// where at least one variable is required.
    VarCountOutOfRange {
        /// The variable count that was requested.
        requested: usize,
    },
    /// Two operands have different variable counts.
    VarCountMismatch {
        /// Variable count of the left operand.
        left: usize,
        /// Variable count of the right operand.
        right: usize,
    },
    /// A variable index was outside the function's support.
    VarIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The function's variable count.
        vars: usize,
    },
    /// A cube referenced both polarities of the same variable.
    ContradictoryCube,
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::VarCountOutOfRange { requested } => {
                write!(
                    f,
                    "variable count {requested} is outside 1..={}",
                    crate::MAX_VARS
                )
            }
            LogicError::VarCountMismatch { left, right } => {
                write!(
                    f,
                    "operands have different variable counts ({left} vs {right})"
                )
            }
            LogicError::VarIndexOutOfRange { index, vars } => {
                write!(
                    f,
                    "variable index {index} is out of range for {vars} variables"
                )
            }
            LogicError::ContradictoryCube => {
                write!(f, "cube contains a variable in both polarities")
            }
        }
    }
}

impl Error for LogicError {}
