//! Quine–McCluskey prime-implicant generation and a Petrick-style exact
//! cover for small functions.
//!
//! The exhaustive-lattice-search and synthesis crates use these as
//! ground-truth oracles: the ISOP cover of a function must consist of prime
//! implicants, and the minimum SOP size lower-bounds lattice dimensions.

use std::collections::HashSet;

use crate::{Cover, Cube, TruthTable};

/// Maximum variable count accepted by the exhaustive routines here.
pub const MAX_QM_VARS: usize = 12;

/// Computes all prime implicants of `f`.
///
/// # Panics
///
/// Panics if `f` has more than [`MAX_QM_VARS`] variables (the implicant
/// lattice is enumerated exhaustively).
///
/// # Example
///
/// ```
/// use fts_logic::{generators, qm};
///
/// let primes = qm::prime_implicants(&generators::majority(3));
/// assert_eq!(primes.len(), 3); // ab, ac, bc
/// ```
pub fn prime_implicants(f: &TruthTable) -> Cover {
    let vars = f.vars();
    assert!(
        vars <= MAX_QM_VARS,
        "quine-mccluskey limited to {MAX_QM_VARS} variables"
    );

    // Enumerate all implicants by breadth-first merging, starting from
    // minterms. An implicant is a cube fully contained in f.
    let mut current: HashSet<Cube> = f
        .minterms()
        .map(|m| {
            Cube::from_masks(m, !m & ((1u32 << vars) - 1)).expect("disjoint masks by construction")
        })
        .collect();
    let mut primes: Vec<Cube> = Vec::new();

    while !current.is_empty() {
        let mut next: HashSet<Cube> = HashSet::new();
        let mut merged: HashSet<Cube> = HashSet::new();
        let cubes: Vec<Cube> = current.iter().copied().collect();
        for (i, &a) in cubes.iter().enumerate() {
            for &b in &cubes[i + 1..] {
                if let Some(m) = merge(a, b) {
                    next.insert(m);
                    merged.insert(a);
                    merged.insert(b);
                }
            }
        }
        for &c in &cubes {
            if !merged.contains(&c) {
                primes.push(c);
            }
        }
        current = next;
    }

    primes.sort();
    primes.dedup();
    Cover::from_cubes(primes)
}

/// Merges two cubes differing in exactly one variable's polarity.
fn merge(a: Cube, b: Cube) -> Option<Cube> {
    let support_a = a.pos_mask() | a.neg_mask();
    let support_b = b.pos_mask() | b.neg_mask();
    if support_a != support_b {
        return None;
    }
    let diff = a.pos_mask() ^ b.pos_mask();
    if diff.count_ones() != 1 || (a.neg_mask() ^ b.neg_mask()) != diff {
        return None;
    }
    Cube::from_masks(a.pos_mask() & !diff, a.neg_mask() & !diff).ok()
}

/// Finds a minimum-cardinality prime cover of `f` by branch-and-bound over
/// the prime implicants.
///
/// Returns the minimum cover; for a constant-0 function the cover is empty.
///
/// # Panics
///
/// Panics under the same conditions as [`prime_implicants`]. Intended for
/// small functions (≤ ~8 variables); the search is exponential.
///
/// # Example
///
/// ```
/// use fts_logic::{generators, qm};
///
/// let cover = qm::minimum_cover(&generators::xor(3));
/// assert_eq!(cover.len(), 4); // parity needs all four products
/// ```
pub fn minimum_cover(f: &TruthTable) -> Cover {
    let primes = prime_implicants(f);
    let minterms: Vec<u32> = f.minterms().collect();
    if minterms.is_empty() {
        return Cover::new();
    }

    // column[j] = primes covering minterm j.
    let columns: Vec<Vec<usize>> = minterms
        .iter()
        .map(|&m| {
            primes
                .iter()
                .enumerate()
                .filter(|(_, c)| c.covers_minterm(m))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    let mut best: Option<Vec<usize>> = None;
    let mut chosen: Vec<usize> = Vec::new();
    let mut covered = vec![false; minterms.len()];
    branch(&columns, &mut covered, &mut chosen, &mut best);

    let selection = best.expect("non-empty function always has a cover");
    Cover::from_cubes(selection.iter().map(|&i| primes.cubes()[i]).collect())
}

fn branch(
    columns: &[Vec<usize>],
    covered: &mut [bool],
    chosen: &mut Vec<usize>,
    best: &mut Option<Vec<usize>>,
) {
    if let Some(b) = best {
        if chosen.len() >= b.len() {
            return; // cannot improve
        }
    }
    // Pick the uncovered minterm with the fewest candidate primes.
    let target = (0..columns.len())
        .filter(|&j| !covered[j])
        .min_by_key(|&j| columns[j].len());
    let Some(j) = target else {
        *best = Some(chosen.clone());
        return;
    };
    for &p in &columns[j] {
        let newly: Vec<usize> = (0..columns.len())
            .filter(|&k| !covered[k] && columns[k].contains(&p))
            .collect();
        for &k in &newly {
            covered[k] = true;
        }
        chosen.push(p);
        branch(columns, covered, chosen, best);
        chosen.pop();
        for &k in &newly {
            covered[k] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, isop};

    #[test]
    fn primes_of_majority3() {
        let primes = prime_implicants(&generators::majority(3));
        let strings: Vec<String> = primes.iter().map(|c| c.to_string()).collect();
        assert_eq!(strings, vec!["ab", "ac", "bc"]);
    }

    #[test]
    fn primes_cover_exactly_the_function() {
        for vars in 2..=5 {
            let f = generators::threshold(vars, 2);
            let primes = prime_implicants(&f);
            assert_eq!(primes.to_truth_table(vars), f);
        }
    }

    #[test]
    fn every_isop_cube_is_prime() {
        let mut state = 0x9E3779B97F4A7C15u64;
        for vars in 2..=5 {
            for _ in 0..10 {
                let f = TruthTable::from_fn(vars, |_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 40) & 1 == 1
                })
                .unwrap();
                let primes = prime_implicants(&f);
                let cover = isop::isop(&f);
                for c in cover.iter() {
                    assert!(
                        primes.cubes().contains(c),
                        "ISOP cube {c} of {f:?} is not prime"
                    );
                }
            }
        }
    }

    #[test]
    fn minimum_cover_of_xor_is_full() {
        for vars in 2..=4 {
            let f = generators::xor(vars);
            let cover = minimum_cover(&f);
            assert_eq!(cover.len(), 1usize << (vars - 1));
            assert_eq!(cover.to_truth_table(vars), f);
        }
    }

    #[test]
    fn minimum_cover_never_larger_than_isop() {
        let mut state = 0xDEADBEEFu64;
        for _ in 0..10 {
            let f = TruthTable::from_fn(4, |_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                (state >> 35) & 1 == 1
            })
            .unwrap();
            let min = minimum_cover(&f);
            let cover = isop::isop(&f);
            assert!(min.len() <= cover.len());
            assert_eq!(min.to_truth_table(4), f);
        }
    }

    #[test]
    fn constant_functions() {
        let zero = TruthTable::constant(3, false).unwrap();
        assert!(prime_implicants(&zero).is_empty());
        assert!(minimum_cover(&zero).is_empty());
        let one = TruthTable::constant(3, true).unwrap();
        let primes = prime_implicants(&one);
        assert_eq!(primes.len(), 1);
        assert!(primes.cubes()[0].is_top());
    }
}
