//! Irredundant sum-of-products computation (Minato–Morreale).
//!
//! The Altun–Riedel lattice construction consumes an irredundant SOP of the
//! target function *and* of its dual; this module provides both through the
//! classic interval-based recursion of Minato and Morreale, operating
//! directly on bit-packed truth tables.

use crate::{Cover, Cube, TruthTable};

/// Computes an irredundant sum-of-products cover of the completely
/// specified function `f`.
///
/// The returned cover represents exactly `f` and no cube can be dropped
/// without changing the function.
///
/// # Example
///
/// ```
/// use fts_logic::{generators, isop};
///
/// let maj = generators::majority(3);
/// let cover = isop::isop(&maj);
/// assert_eq!(cover.len(), 3); // ab + ac + bc
/// assert_eq!(cover.to_truth_table(3), maj);
/// ```
pub fn isop(f: &TruthTable) -> Cover {
    let mut cover = isop_interval(f, f);
    cover.absorb();
    cover
}

/// Computes an irredundant SOP for the incompletely specified function
/// bounded below by `lower` and above by `upper` (`lower ⇒ cover ⇒ upper`).
///
/// # Panics
///
/// Panics if `lower` does not imply `upper` or the variable counts differ.
pub fn isop_interval(lower: &TruthTable, upper: &TruthTable) -> Cover {
    assert_eq!(
        lower.vars(),
        upper.vars(),
        "interval bounds must share variables"
    );
    assert!(lower.implies(upper), "lower bound must imply upper bound");
    let mut cover = Cover::new();
    recurse(lower, upper, lower.vars(), Cube::top(), &mut cover);
    cover
}

fn recurse(lower: &TruthTable, upper: &TruthTable, vars: usize, prefix: Cube, out: &mut Cover) {
    if lower.is_zero() {
        return;
    }
    if upper.is_one() {
        out.push(prefix);
        return;
    }
    // Split on the lowest-index variable either bound depends on.
    let var = (0..vars)
        .find(|&v| {
            lower.depends_on(v).expect("index in range")
                || upper.depends_on(v).expect("index in range")
        })
        .expect("non-constant interval must depend on some variable");

    let l0 = lower.cofactor0(var).expect("index in range");
    let l1 = lower.cofactor1(var).expect("index in range");
    let u0 = upper.cofactor0(var).expect("index in range");
    let u1 = upper.cofactor1(var).expect("index in range");

    // Minterms of the 0-branch that the 1-branch can never cover must get a
    // negative literal, and symmetrically for the positive literal.
    let need0 = &l0 & &!&u1;
    let need1 = &l1 & &!&u0;

    let before = out.len();
    recurse(
        &need0,
        &u0,
        vars,
        prefix.with_neg(var as u8).expect("fresh variable"),
        out,
    );
    let mid = out.len();
    recurse(
        &need1,
        &u1,
        vars,
        prefix.with_pos(var as u8).expect("fresh variable"),
        out,
    );
    let after = out.len();

    // What the emitted branch covers, relative to this recursion level: the
    // shared prefix literals and the split literal are stripped so the
    // result lives in the same cofactor space as l0/l1.
    let strip_pos = prefix.pos_mask() | (1 << var);
    let strip_neg = prefix.neg_mask() | (1 << var);
    let covered0 = branch_table(&out.cubes()[before..mid], vars, strip_pos, strip_neg);
    let covered1 = branch_table(&out.cubes()[mid..after], vars, strip_pos, strip_neg);

    let rest0 = &l0 & &!&covered0;
    let rest1 = &l1 & &!&covered1;
    let rest = &rest0 | &rest1;
    let both = &u0 & &u1;
    recurse(&rest, &both, vars, prefix, out);
}

/// Truth table covered by `cubes` after stripping the literals in the given
/// masks (the shared prefix and the split variable), so the caller can
/// compare against cofactor-space bounds.
fn branch_table(cubes: &[Cube], vars: usize, strip_pos: u32, strip_neg: u32) -> TruthTable {
    let mut acc = TruthTable::constant(vars, false).expect("vars validated");
    for c in cubes {
        let stripped = Cube::from_masks(c.pos_mask() & !strip_pos, c.neg_mask() & !strip_neg)
            .expect("removing literals cannot create contradiction");
        acc = &acc | &stripped.to_truth_table(vars);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn check_exact(f: &TruthTable) {
        let cover = isop(f);
        assert_eq!(
            cover.to_truth_table(f.vars()),
            *f,
            "cover must equal function"
        );
        assert!(
            cover.is_irredundant(f.vars()),
            "cover must be irredundant: {cover}"
        );
    }

    #[test]
    fn isop_constants() {
        let zero = TruthTable::constant(3, false).unwrap();
        let one = TruthTable::constant(3, true).unwrap();
        assert!(isop(&zero).is_empty());
        let c1 = isop(&one);
        assert_eq!(c1.len(), 1);
        assert!(c1.cubes()[0].is_top());
    }

    #[test]
    fn isop_single_variable() {
        let f = TruthTable::var(4, 2).unwrap();
        let cover = isop(&f);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.cubes()[0], Cube::top().with_pos(2).unwrap());
    }

    #[test]
    fn isop_xor3_has_four_products() {
        let f = generators::xor(3);
        let cover = isop(&f);
        assert_eq!(cover.len(), 4);
        check_exact(&f);
    }

    #[test]
    fn isop_majority() {
        check_exact(&generators::majority(3));
        check_exact(&generators::majority(5));
    }

    #[test]
    fn isop_of_dual_xor3() {
        let f = generators::xor(3).dual();
        let cover = isop(&f);
        assert_eq!(cover.to_truth_table(3), f);
        assert_eq!(cover.len(), 4, "XOR3 is self-dual");
    }

    #[test]
    fn isop_random_functions_exact_and_irredundant() {
        // Deterministic pseudo-random functions across several sizes.
        let mut state = 0x243F6A8885A308D3u64;
        for vars in 2..=6 {
            for _ in 0..20 {
                let f = TruthTable::from_fn(vars, |_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) & 1 == 1
                })
                .unwrap();
                check_exact(&f);
            }
        }
    }

    #[test]
    fn isop_interval_respects_bounds() {
        let lower = generators::and(3);
        let upper = generators::or(3);
        let cover = isop_interval(&lower, &upper);
        let tt = cover.to_truth_table(3);
        assert!(lower.implies(&tt));
        assert!(tt.implies(&upper));
        // With this much freedom the cover should be a single literal.
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.literal_count(), 1);
    }

    #[test]
    #[should_panic(expected = "lower bound must imply upper")]
    fn isop_interval_panics_on_bad_bounds() {
        let lower = generators::or(2);
        let upper = generators::and(2);
        let _ = isop_interval(&lower, &upper);
    }
}
