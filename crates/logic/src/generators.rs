//! Generators for the benchmark functions used throughout the paper and its
//! synthesis references: parity (XOR), AND/OR, majority, thresholds, and
//! seeded random functions for stress testing.

use rand::Rng;

use crate::TruthTable;

/// XOR (odd parity) of `vars` inputs.
///
/// # Panics
///
/// Panics if `vars` is zero or exceeds [`crate::MAX_VARS`].
///
/// # Example
///
/// ```
/// use fts_logic::generators;
///
/// let f = generators::xor(3);
/// assert!(f.eval(0b001));
/// assert!(!f.eval(0b011));
/// ```
pub fn xor(vars: usize) -> TruthTable {
    TruthTable::from_fn(vars, |x| x.count_ones() % 2 == 1).expect("valid var count")
}

/// XNOR (even parity) of `vars` inputs — the inverse XOR3 of the paper's
/// Fig. 11 is `xnor(3)`.
///
/// # Panics
///
/// Panics if `vars` is zero or exceeds [`crate::MAX_VARS`].
pub fn xnor(vars: usize) -> TruthTable {
    TruthTable::from_fn(vars, |x| x.count_ones() % 2 == 0).expect("valid var count")
}

/// AND of `vars` inputs.
///
/// # Panics
///
/// Panics if `vars` is zero or exceeds [`crate::MAX_VARS`].
pub fn and(vars: usize) -> TruthTable {
    let all = (1u32 << vars) - 1;
    TruthTable::from_fn(vars, |x| x == all).expect("valid var count")
}

/// OR of `vars` inputs.
///
/// # Panics
///
/// Panics if `vars` is zero or exceeds [`crate::MAX_VARS`].
pub fn or(vars: usize) -> TruthTable {
    TruthTable::from_fn(vars, |x| x != 0).expect("valid var count")
}

/// Majority of `vars` inputs (strict majority; `vars` is usually odd).
///
/// # Panics
///
/// Panics if `vars` is zero or exceeds [`crate::MAX_VARS`].
pub fn majority(vars: usize) -> TruthTable {
    threshold(vars, vars as u32 / 2 + 1)
}

/// Threshold function: 1 when at least `k` inputs are 1.
///
/// # Panics
///
/// Panics if `vars` is zero or exceeds [`crate::MAX_VARS`].
pub fn threshold(vars: usize, k: u32) -> TruthTable {
    TruthTable::from_fn(vars, |x| x.count_ones() >= k).expect("valid var count")
}

/// A uniformly random function of `vars` inputs drawn from `rng`.
///
/// # Panics
///
/// Panics if `vars` is zero or exceeds [`crate::MAX_VARS`].
///
/// # Example
///
/// ```
/// use fts_logic::generators;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let f = generators::random(4, &mut rng);
/// assert_eq!(f.vars(), 4);
/// ```
pub fn random<R: Rng + ?Sized>(vars: usize, rng: &mut R) -> TruthTable {
    TruthTable::from_fn(vars, |_| rng.gen_bool(0.5)).expect("valid var count")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xor_xnor_are_complements() {
        for vars in 1..=5 {
            let f = xor(vars);
            let g = xnor(vars);
            assert_eq!(!&f, g, "vars={vars}");
        }
    }

    #[test]
    fn odd_parity_is_self_dual() {
        assert!(xor(3).is_self_dual());
        assert!(xor(5).is_self_dual());
        assert!(!xor(2).is_self_dual());
    }

    #[test]
    fn and_or_duality() {
        for vars in 1..=5 {
            assert_eq!(and(vars).dual(), or(vars));
        }
    }

    #[test]
    fn majority_is_self_dual_for_odd_inputs() {
        assert!(majority(3).is_self_dual());
        assert!(majority(5).is_self_dual());
    }

    #[test]
    fn threshold_counts() {
        let f = threshold(4, 2);
        assert_eq!(f.count_ones(), 11); // C(4,2)+C(4,3)+C(4,4) = 6+4+1
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        assert_eq!(random(5, &mut r1), random(5, &mut r2));
    }
}
