use std::fmt;

use crate::{LogicError, TruthTable};

/// A literal as placed on a lattice site or inside a cube: a variable in one
/// of its polarities, or a Boolean constant.
///
/// Constants are what the synthesis algorithms of the paper map onto "always
/// on" / "always off" switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Literal {
    /// Constant 0 (switch permanently OFF).
    False,
    /// Constant 1 (switch permanently ON).
    True,
    /// Variable `index`, complemented when `negated` is true.
    Var {
        /// Variable index (0-based).
        index: u8,
        /// True for the complemented literal.
        negated: bool,
    },
}

impl Literal {
    /// Positive literal of variable `index`.
    pub fn pos(index: u8) -> Self {
        Literal::Var {
            index,
            negated: false,
        }
    }

    /// Negative literal of variable `index`.
    pub fn neg(index: u8) -> Self {
        Literal::Var {
            index,
            negated: true,
        }
    }

    /// Evaluates the literal under a packed input assignment.
    pub fn eval(self, assignment: u32) -> bool {
        match self {
            Literal::False => false,
            Literal::True => true,
            Literal::Var { index, negated } => ((assignment >> index) & 1 == 1) != negated,
        }
    }

    /// The complement literal.
    pub fn complement(self) -> Self {
        match self {
            Literal::False => Literal::True,
            Literal::True => Literal::False,
            Literal::Var { index, negated } => Literal::Var {
                index,
                negated: !negated,
            },
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Literal::False => write!(f, "0"),
            Literal::True => write!(f, "1"),
            Literal::Var { index, negated } => {
                if index < 26 {
                    write!(f, "{}", (b'a' + index) as char)?;
                } else {
                    write!(f, "x{index}")?;
                }
                if negated {
                    write!(f, "'")?;
                }
                Ok(())
            }
        }
    }
}

/// A product term: a conjunction of literals stored as positive/negative
/// variable masks.
///
/// The empty cube (no literals) is the constant-1 product. A cube never
/// contains both polarities of a variable.
///
/// # Example
///
/// ```
/// use fts_logic::Cube;
///
/// let c = Cube::top().with_pos(0)?.with_neg(2)?; // a c'
/// assert!(c.covers_minterm(0b001));
/// assert!(!c.covers_minterm(0b101));
/// # Ok::<(), fts_logic::LogicError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    pos: u32,
    neg: u32,
}

impl Cube {
    /// The empty product (constant 1).
    pub fn top() -> Self {
        Cube { pos: 0, neg: 0 }
    }

    /// Builds a cube from positive and negative literal masks.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ContradictoryCube`] when the masks overlap.
    pub fn from_masks(pos: u32, neg: u32) -> Result<Self, LogicError> {
        if pos & neg != 0 {
            return Err(LogicError::ContradictoryCube);
        }
        Ok(Cube { pos, neg })
    }

    /// Adds the positive literal of variable `index`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ContradictoryCube`] if the negative literal is
    /// already present.
    pub fn with_pos(mut self, index: u8) -> Result<Self, LogicError> {
        if self.neg >> index & 1 == 1 {
            return Err(LogicError::ContradictoryCube);
        }
        self.pos |= 1 << index;
        Ok(self)
    }

    /// Adds the negative literal of variable `index`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ContradictoryCube`] if the positive literal is
    /// already present.
    pub fn with_neg(mut self, index: u8) -> Result<Self, LogicError> {
        if self.pos >> index & 1 == 1 {
            return Err(LogicError::ContradictoryCube);
        }
        self.neg |= 1 << index;
        Ok(self)
    }

    /// Adds a literal; constants are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ContradictoryCube`] on polarity clash or when
    /// `literal` is [`Literal::False`] (which would annihilate the product).
    /// [`Literal::True`] is a no-op.
    pub fn with_literal(self, literal: Literal) -> Result<Self, LogicError> {
        match literal {
            Literal::True => Ok(self),
            Literal::False => Err(LogicError::ContradictoryCube),
            Literal::Var {
                index,
                negated: false,
            } => self.with_pos(index),
            Literal::Var {
                index,
                negated: true,
            } => self.with_neg(index),
        }
    }

    /// Positive-literal mask.
    pub fn pos_mask(self) -> u32 {
        self.pos
    }

    /// Negative-literal mask.
    pub fn neg_mask(self) -> u32 {
        self.neg
    }

    /// Number of literals.
    pub fn literal_count(self) -> u32 {
        (self.pos | self.neg).count_ones()
    }

    /// True for the empty product (constant 1).
    pub fn is_top(self) -> bool {
        self.pos == 0 && self.neg == 0
    }

    /// Iterator over the literals of the cube, in ascending variable order.
    pub fn literals(self) -> impl Iterator<Item = Literal> {
        (0..32u8).filter_map(move |i| {
            if self.pos >> i & 1 == 1 {
                Some(Literal::pos(i))
            } else if self.neg >> i & 1 == 1 {
                Some(Literal::neg(i))
            } else {
                None
            }
        })
    }

    /// True if the product evaluates to 1 on a packed assignment.
    pub fn covers_minterm(self, assignment: u32) -> bool {
        (assignment & self.pos) == self.pos && (assignment & self.neg) == 0
    }

    /// True if every minterm of `other` is covered by `self`
    /// (i.e. `self`'s literal set is a subset of `other`'s).
    pub fn contains(self, other: Cube) -> bool {
        self.pos & other.pos == self.pos && self.neg & other.neg == self.neg
    }

    /// The truth table of the product over `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if a literal index is `>= vars`.
    pub fn to_truth_table(self, vars: usize) -> TruthTable {
        assert!(
            (self.pos | self.neg) < (1u32 << vars),
            "cube references variables beyond {vars}"
        );
        TruthTable::from_fn(vars, |x| self.covers_minterm(x)).expect("vars validated by caller")
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({self})")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_top() {
            return write!(f, "1");
        }
        for lit in self.literals() {
            write!(f, "{lit}")?;
        }
        Ok(())
    }
}

/// A sum-of-products: a disjunction of [`Cube`]s.
///
/// # Example
///
/// ```
/// use fts_logic::{Cover, Cube};
///
/// let mut cover = Cover::new();
/// cover.push(Cube::top().with_pos(0)?); // a
/// cover.push(Cube::top().with_pos(0)?.with_pos(1)?); // ab, absorbed by a
/// cover.absorb();
/// assert_eq!(cover.len(), 1);
/// # Ok::<(), fts_logic::LogicError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Cover {
    cubes: Vec<Cube>,
}

impl Cover {
    /// Creates an empty cover (constant 0).
    pub fn new() -> Self {
        Cover { cubes: Vec::new() }
    }

    /// Creates a cover from existing cubes.
    pub fn from_cubes(cubes: Vec<Cube>) -> Self {
        Cover { cubes }
    }

    /// Appends a cube.
    pub fn push(&mut self, cube: Cube) {
        self.cubes.push(cube);
    }

    /// Number of cubes (products).
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// True when the cover has no cubes (constant 0).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Iterator over the cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, Cube> {
        self.cubes.iter()
    }

    /// Total literal count over all cubes.
    pub fn literal_count(&self) -> u32 {
        self.cubes.iter().map(|c| c.literal_count()).sum()
    }

    /// Evaluates the disjunction on a packed assignment.
    pub fn eval(&self, assignment: u32) -> bool {
        self.cubes.iter().any(|c| c.covers_minterm(assignment))
    }

    /// Removes duplicate cubes and cubes absorbed by another cube
    /// (single-cube containment: `a + ab = a`).
    pub fn absorb(&mut self) {
        self.cubes.sort_by_key(|c| c.literal_count());
        self.cubes.dedup();
        let mut kept: Vec<Cube> = Vec::with_capacity(self.cubes.len());
        'outer: for &c in &self.cubes {
            for &k in &kept {
                if k.contains(c) {
                    continue 'outer;
                }
            }
            kept.push(c);
        }
        self.cubes = kept;
    }

    /// The truth table of the disjunction over `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if any cube references a variable `>= vars`.
    pub fn to_truth_table(&self, vars: usize) -> TruthTable {
        TruthTable::from_fn(vars, |x| self.eval(x)).expect("vars validated by TruthTable")
    }

    /// True if the cover is irredundant: removing any single cube changes
    /// the represented function over `vars` variables.
    pub fn is_irredundant(&self, vars: usize) -> bool {
        let full = self.to_truth_table(vars);
        for skip in 0..self.cubes.len() {
            let reduced = Cover {
                cubes: self
                    .cubes
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, c)| *c)
                    .collect(),
            };
            if reduced.to_truth_table(vars) == full {
                return false;
            }
        }
        true
    }
}

impl FromIterator<Cube> for Cover {
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        Cover {
            cubes: iter.into_iter().collect(),
        }
    }
}

impl Extend<Cube> for Cover {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        self.cubes.extend(iter);
    }
}

impl IntoIterator for Cover {
    type Item = Cube;
    type IntoIter = std::vec::IntoIter<Cube>;
    fn into_iter(self) -> Self::IntoIter {
        self.cubes.into_iter()
    }
}

impl<'a> IntoIterator for &'a Cover {
    type Item = &'a Cube;
    type IntoIter = std::slice::Iter<'a, Cube>;
    fn into_iter(self) -> Self::IntoIter {
        self.cubes.iter()
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cover({self})")
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_eval_and_complement() {
        let a = Literal::pos(0);
        assert!(a.eval(0b1));
        assert!(!a.eval(0b0));
        assert!(a.complement().eval(0b0));
        assert_eq!(Literal::True.complement(), Literal::False);
        assert!(Literal::True.eval(0));
        assert!(!Literal::False.eval(0));
    }

    #[test]
    fn literal_display() {
        assert_eq!(Literal::pos(0).to_string(), "a");
        assert_eq!(Literal::neg(2).to_string(), "c'");
        assert_eq!(Literal::True.to_string(), "1");
        assert_eq!(Literal::pos(30).to_string(), "x30");
    }

    #[test]
    fn cube_contradiction_rejected() {
        let c = Cube::top().with_pos(1).unwrap();
        assert!(matches!(c.with_neg(1), Err(LogicError::ContradictoryCube)));
        assert!(Cube::from_masks(0b10, 0b10).is_err());
    }

    #[test]
    fn cube_false_literal_rejected() {
        assert!(Cube::top().with_literal(Literal::False).is_err());
        assert_eq!(
            Cube::top().with_literal(Literal::True).unwrap(),
            Cube::top()
        );
    }

    #[test]
    fn cube_cover_semantics() {
        // a b' over 3 vars covers minterms {0b001, 0b101}.
        let c = Cube::top().with_pos(0).unwrap().with_neg(1).unwrap();
        let tt = c.to_truth_table(3);
        let ms: Vec<u32> = tt.minterms().collect();
        assert_eq!(ms, vec![0b001, 0b101]);
    }

    #[test]
    fn cube_containment() {
        let a = Cube::top().with_pos(0).unwrap();
        let ab = a.with_pos(1).unwrap();
        assert!(a.contains(ab));
        assert!(!ab.contains(a));
        assert!(Cube::top().contains(a));
    }

    #[test]
    fn top_cube_is_tautology() {
        let tt = Cube::top().to_truth_table(4);
        assert!(tt.is_one());
        assert_eq!(Cube::top().to_string(), "1");
    }

    #[test]
    fn cover_absorption() {
        let a = Cube::top().with_pos(0).unwrap();
        let ab = a.with_pos(1).unwrap();
        let abc = ab.with_pos(2).unwrap();
        let bn = Cube::top().with_neg(1).unwrap();
        let mut cover = Cover::from_cubes(vec![abc, ab, a, bn, a]);
        cover.absorb();
        assert_eq!(cover.len(), 2);
        assert!(cover.cubes().contains(&a));
        assert!(cover.cubes().contains(&bn));
    }

    #[test]
    fn cover_eval_matches_tt() {
        let a = Cube::top().with_pos(0).unwrap();
        let bc = Cube::top().with_pos(1).unwrap().with_pos(2).unwrap();
        let cover = Cover::from_cubes(vec![a, bc]);
        let tt = cover.to_truth_table(3);
        for i in 0..8 {
            assert_eq!(cover.eval(i), tt.eval(i));
        }
    }

    #[test]
    fn empty_cover_is_zero() {
        let cover = Cover::new();
        assert!(cover.to_truth_table(2).is_zero());
        assert_eq!(cover.to_string(), "0");
    }

    #[test]
    fn irredundancy_check() {
        let a = Cube::top().with_pos(0).unwrap();
        let ab = a.with_pos(1).unwrap();
        let redundant = Cover::from_cubes(vec![a, ab]);
        assert!(!redundant.is_irredundant(2));
        let irredundant = Cover::from_cubes(vec![a]);
        assert!(irredundant.is_irredundant(2));
    }

    #[test]
    fn cover_collects_from_iterator() {
        let cover: Cover = (0..3u8).map(|i| Cube::top().with_pos(i).unwrap()).collect();
        assert_eq!(cover.len(), 3);
        let mut extended = cover.clone();
        extended.extend([Cube::top()]);
        assert_eq!(extended.len(), 4);
    }
}
