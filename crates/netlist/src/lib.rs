//! SPICE-deck frontend for the four-terminal-switch toolkit.
//!
//! This crate turns untrusted deck text into [`fts_spice::Netlist`]s and
//! [`fts_engine::SimJob`]s, and back:
//!
//! ```text
//! text ──lex──► cards ──parse──► Deck AST ──elaborate──► Netlist + SimJobs
//!                                   ▲                          │
//!                                   └────────── export_job ────┘
//! ```
//!
//! * [`lex`] — comment/continuation handling, tokenization, `.include`
//!   splicing. Every resource a hostile deck controls (bytes, depth,
//!   token and card counts) is capped here.
//! * [`parse`] / [`ast`] — the grammar subset: `R C V I M X` element
//!   cards, `.model` (n-MOS level 1/3), `.subckt`/`.ends`, `.param`,
//!   `.nodeorder`, `.probe`, and the `.op .dc .tran .ac` analyses.
//! * [`elaborate`] — flattening, parameter substitution, and lowering
//!   into labelled [`SimJob`](fts_engine::SimJob)s, again fully capped.
//! * [`print`] / [`export`] — the inverse direction; exported decks
//!   re-elaborate to byte-identical results.
//! * [`number`] — the one shared, overflow-rejecting number parser (also
//!   used by `fts-server`'s JSON reader).
//!
//! Every failure path returns a structured [`DeckError`] with a stable
//! code and a 1-based line/column — nothing in this crate panics on
//! malformed input (the `netlist_fuzz` harness holds it to that).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it also
// rejects NaN inputs, which must never reach the solvers.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod ast;
pub mod elaborate;
mod error;
pub mod export;
pub mod lex;
pub mod number;
pub mod parse;
pub mod print;

pub use ast::Deck;
pub use elaborate::{elaborate, ElabOptions, Elaborated};
pub use error::DeckError;
pub use export::export_job;
pub use lex::{DenyIncludes, FsIncludes, IncludeLoader};
pub use print::render;

/// Parses deck text with `.include` disabled (the right default for
/// network-supplied decks).
///
/// # Errors
///
/// A structured [`DeckError`] with a 1-based line/column.
pub fn parse_str(text: &str) -> Result<Deck, DeckError> {
    parse_with_includes(text, &mut DenyIncludes)
}

/// Parses deck text, resolving `.include` through `loader`.
///
/// # Errors
///
/// A structured [`DeckError`] with a 1-based line/column.
pub fn parse_with_includes(text: &str, loader: &mut dyn IncludeLoader) -> Result<Deck, DeckError> {
    parse::parse_cards(lex::read_deck(text, loader)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_str_denies_includes() {
        let e = parse_str(".include \"other.cir\"\n").unwrap_err();
        assert_eq!(e.code, "include_failed");
    }

    #[test]
    fn end_to_end_smoke() {
        let e = elaborate(
            &parse_str("v1 in 0 dc 1\nr1 in out 1k\nr2 out 0 1k\n.op\n").unwrap(),
            &ElabOptions::default(),
        )
        .unwrap();
        assert_eq!(e.jobs.len(), 1);
        assert_eq!(e.netlist.node_name(e.out), "out");
    }
}
