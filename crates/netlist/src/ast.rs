//! The deck AST produced by the parser and consumed by the printer and
//! elaborator.
//!
//! The AST is fully lowercased (the grammar is case-insensitive) and
//! position-tagged per card. It is also the contract of the round-trip
//! property: `parse(print(deck))` must reproduce every [`Card`] exactly
//! (source positions excluded — see [`Deck::cards_only`]).

/// A numeric field: a literal or a `{param}` reference.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A literal, already scaled by its SI suffix.
    Lit(f64),
    /// A `{name}` reference resolved against `.param` definitions.
    Ref(String),
}

/// The waveform half of a `V`/`I` card.
#[derive(Debug, Clone, PartialEq)]
pub enum WaveSpec {
    /// `dc <v>` (or a bare value).
    Dc(Value),
    /// `pulse(v0 v1 delay rise fall width period)`.
    Pulse([Value; 7]),
    /// `pwl(t1 v1 t2 v2 …)` — an even number of values, at least one pair.
    Pwl(Vec<Value>),
}

/// An independent-source card (`V…` or `I…`).
#[derive(Debug, Clone, PartialEq)]
pub struct SourceCardBody {
    /// Device name (lowercased, keeps its leading element letter).
    pub name: String,
    /// Positive node.
    pub plus: String,
    /// Negative node.
    pub minus: String,
    /// The transient waveform.
    pub wave: WaveSpec,
    /// Small-signal magnitude from a trailing `ac [mag]` clause; the
    /// `.ac` analysis drives this source.
    pub ac_mag: Option<Value>,
}

/// An `M…` MOSFET instance card.
#[derive(Debug, Clone, PartialEq)]
pub struct MosCard {
    /// Device name.
    pub name: String,
    /// Drain node.
    pub d: String,
    /// Gate node.
    pub g: String,
    /// Source node.
    pub s: String,
    /// Optional bulk node (must elaborate to ground).
    pub bulk: Option<String>,
    /// `.model` name.
    pub model: String,
    /// `w=` override \[m-like units; only the ratio matters\].
    pub w: Option<Value>,
    /// `l=` override.
    pub l: Option<Value>,
    /// `wol=` override (direct W/L ratio; wins over `w`/`l`).
    pub wol: Option<Value>,
}

/// One element card.
#[derive(Debug, Clone, PartialEq)]
pub enum ElementCard {
    /// `R… a b value`.
    Res {
        /// Device name.
        name: String,
        /// First node.
        a: String,
        /// Second node.
        b: String,
        /// Resistance \[Ω\].
        value: Value,
    },
    /// `C… a b value`.
    Cap {
        /// Device name.
        name: String,
        /// First node.
        a: String,
        /// Second node.
        b: String,
        /// Capacitance \[F\].
        value: Value,
    },
    /// `V… n+ n- <wave> [ac mag]`.
    V(SourceCardBody),
    /// `I… n+ n- <wave>` (current flows through the source from `n+` to
    /// `n-`).
    I(SourceCardBody),
    /// `M… d g s [b] model [w=…] [l=…] [wol=…]`.
    Mos(MosCard),
    /// `X… node… subcktname` — a subcircuit instance.
    Instance {
        /// Instance name.
        name: String,
        /// Port connections, in `.subckt` port order.
        nodes: Vec<String>,
        /// Subcircuit name.
        subckt: String,
    },
}

impl ElementCard {
    /// The device/instance name.
    pub fn name(&self) -> &str {
        match self {
            ElementCard::Res { name, .. }
            | ElementCard::Cap { name, .. }
            | ElementCard::Instance { name, .. } => name,
            ElementCard::V(b) | ElementCard::I(b) => &b.name,
            ElementCard::Mos(m) => &m.name,
        }
    }
}

/// A `.model <name> nmos …` card. Only n-MOS models exist in this
/// dialect; `level` selects the fts-spice device (1 or 3).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCard {
    /// Model name.
    pub name: String,
    /// `level=1` (square-law) or `level=3` (short-channel + Meyer caps).
    pub level: u8,
    /// Remaining parameters in source order. Keys are from the fixed set
    /// `kp vto lambda wol theta esatl cgs cgd`, each at most once.
    pub params: Vec<(String, Value)>,
}

/// `.ac` frequency spacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcScale {
    /// `dec n` — n points per decade, logarithmic.
    Dec,
    /// `lin n` — n points total, linear.
    Lin,
}

/// An analysis card.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisCard {
    /// `.op`.
    Op,
    /// `.dc <vsource> <start> <stop> <step>`.
    Dc {
        /// Swept voltage-source name.
        source: String,
        /// First value \[V\].
        start: Value,
        /// Last value \[V\] (inclusive bound).
        stop: Value,
        /// Step \[V\] (sign must match the sweep direction).
        step: Value,
    },
    /// `.tran <dt> <tstop>` — fixed-step trapezoidal from a DC operating
    /// point.
    Tran {
        /// Time step \[s\].
        dt: Value,
        /// Stop time \[s\].
        tstop: Value,
    },
    /// `.ac dec|lin <n> <fstart> <fstop>`.
    Ac {
        /// Frequency spacing.
        scale: AcScale,
        /// Points (per decade for `dec`, total for `lin`).
        n: Value,
        /// First frequency \[Hz\].
        fstart: Value,
        /// Last frequency \[Hz\].
        fstop: Value,
    },
}

/// A `.subckt` definition: ports plus a body of element cards.
#[derive(Debug, Clone, PartialEq)]
pub struct SubcktDef {
    /// Subcircuit name.
    pub name: String,
    /// Port node names, in declaration order.
    pub ports: Vec<String>,
    /// Body element cards with their source lines.
    pub body: Vec<(u32, ElementCard)>,
}

/// One parsed card.
#[derive(Debug, Clone, PartialEq)]
pub enum Card {
    /// An element instantiation.
    Element(ElementCard),
    /// A `.model` definition.
    Model(ModelCard),
    /// A `.param <name>=<value>` definition.
    Param {
        /// Parameter name.
        name: String,
        /// Parameter value (literal, or a reference to an earlier param).
        value: Value,
    },
    /// `.nodeorder <n1> <n2> …` — an fts dialect extension that pre-creates
    /// nodes in the given order before any element card runs. Exported
    /// decks always carry it: node creation order determines MNA row
    /// order, hence pivoting, hence the last bits of every result.
    NodeOrder(Vec<String>),
    /// A `.subckt` … `.ends` definition.
    Subckt(SubcktDef),
    /// An analysis card.
    Analysis(AnalysisCard),
    /// `.probe v(<node>)` — a node to record (and the report node).
    Probe {
        /// Probed node name.
        node: String,
    },
}

/// A card tagged with the 1-based source line of its first token.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceCard {
    /// 1-based line of the card's first token.
    pub line: u32,
    /// The card.
    pub card: Card,
}

/// A parsed deck.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Deck {
    /// Cards in source order (includes already spliced, `.end` and
    /// everything after it dropped).
    pub cards: Vec<SourceCard>,
}

impl Deck {
    /// The cards without their source positions — the equality the
    /// print→parse round-trip property is stated over (printing
    /// renumbers lines).
    pub fn cards_only(&self) -> Vec<&Card> {
        self.cards.iter().map(|c| &c.card).collect()
    }
}
