//! The structured deck error: machine code + source position.

use std::fmt;

/// A structured deck error.
///
/// Every failure in the lexer, parser, and elaborator carries a stable
/// machine-readable `code`, a 1-based source `line`/`col`, and a human
/// message. The HTTP layer maps these onto its `WireError` shape (a `400`
/// with line/column diagnostics); the CLI prints the
/// [`Display`](fmt::Display) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeckError {
    /// Stable machine-readable error code (e.g. `bad_number`,
    /// `unknown_model`, `include_depth`).
    pub code: &'static str,
    /// 1-based line of the offending token (within its own file for
    /// included decks).
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Human-readable detail.
    pub message: String,
}

impl DeckError {
    /// A new error at `line:col`.
    pub fn new(code: &'static str, line: u32, col: u32, message: impl Into<String>) -> DeckError {
        DeckError {
            code,
            // Positions are 1-based by contract — clamp so synthetic
            // errors (e.g. "empty deck") still satisfy it.
            line: line.max(1),
            col: col.max(1),
            message: message.into(),
        }
    }
}

impl fmt::Display for DeckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}:{}: {} ({})",
            self.line, self.col, self.message, self.code
        )
    }
}

impl std::error::Error for DeckError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_clamped_to_one_based() {
        let e = DeckError::new("x", 0, 0, "boom");
        assert_eq!((e.line, e.col), (1, 1));
        assert_eq!(e.to_string(), "line 1:1: boom (x)");
    }
}
