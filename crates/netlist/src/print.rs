//! [`Deck`] AST → deck text.
//!
//! The printer is the exact inverse of the parser on the AST:
//! `parse(render(deck))` reproduces every card
//! (see [`Deck::cards_only`]) — the property the round-trip tests
//! enforce. Literals render via Rust's `{}` float `Display`, which
//! round-trips bitwise through [`crate::number::parse_spice`].

use std::fmt::Write as _;

use crate::ast::{
    AcScale, AnalysisCard, Card, Deck, ElementCard, ModelCard, MosCard, SourceCardBody, Value,
    WaveSpec,
};

/// Wrap rendered cards at this many columns using `+` continuations.
const WRAP_COLS: usize = 96;

/// Renders a deck back to text. The output always parses (assuming the
/// AST came from the parser or respects its invariants) and reproduces
/// the cards exactly.
pub fn render(deck: &Deck) -> String {
    let mut out = String::new();
    for sc in &deck.cards {
        match &sc.card {
            Card::Element(e) => push_card(&mut out, &element_tokens(e)),
            Card::Model(m) => push_card(&mut out, &model_tokens(m)),
            Card::Param { name, value } => {
                push_card(
                    &mut out,
                    &[".param".into(), format!("{name}={}", val(value))],
                );
            }
            Card::NodeOrder(nodes) => {
                let mut toks = vec![".nodeorder".to_owned()];
                toks.extend(nodes.iter().cloned());
                push_card(&mut out, &toks);
            }
            Card::Subckt(def) => {
                let mut toks = vec![".subckt".to_owned(), def.name.clone()];
                toks.extend(def.ports.iter().cloned());
                push_card(&mut out, &toks);
                for (_, e) in &def.body {
                    push_card(&mut out, &element_tokens(e));
                }
                push_card(&mut out, &[".ends".to_owned(), def.name.clone()]);
            }
            Card::Analysis(a) => push_card(&mut out, &analysis_tokens(a)),
            Card::Probe { node } => push_card(&mut out, &[".probe".into(), format!("v({node})")]),
        }
    }
    out
}

fn val(v: &Value) -> String {
    match v {
        Value::Lit(x) => format!("{x}"),
        Value::Ref(name) => format!("{{{name}}}"),
    }
}

fn element_tokens(e: &ElementCard) -> Vec<String> {
    match e {
        ElementCard::Res { name, a, b, value } | ElementCard::Cap { name, a, b, value } => {
            vec![name.clone(), a.clone(), b.clone(), val(value)]
        }
        ElementCard::V(body) | ElementCard::I(body) => source_tokens(body),
        ElementCard::Mos(m) => mos_tokens(m),
        ElementCard::Instance {
            name,
            nodes,
            subckt,
        } => {
            let mut toks = vec![name.clone()];
            toks.extend(nodes.iter().cloned());
            toks.push(subckt.clone());
            toks
        }
    }
}

fn source_tokens(body: &SourceCardBody) -> Vec<String> {
    let mut toks = vec![body.name.clone(), body.plus.clone(), body.minus.clone()];
    match &body.wave {
        WaveSpec::Dc(v) => {
            toks.push("dc".to_owned());
            toks.push(val(v));
        }
        WaveSpec::Pulse(vals) => {
            toks.push("pulse".to_owned());
            toks.push("(".to_owned());
            toks.extend(vals.iter().map(val));
            toks.push(")".to_owned());
        }
        WaveSpec::Pwl(vals) => {
            toks.push("pwl".to_owned());
            toks.push("(".to_owned());
            toks.extend(vals.iter().map(val));
            toks.push(")".to_owned());
        }
    }
    if let Some(mag) = &body.ac_mag {
        toks.push("ac".to_owned());
        toks.push(val(mag));
    }
    toks
}

fn mos_tokens(m: &MosCard) -> Vec<String> {
    let mut toks = vec![m.name.clone(), m.d.clone(), m.g.clone(), m.s.clone()];
    if let Some(b) = &m.bulk {
        toks.push(b.clone());
    }
    toks.push(m.model.clone());
    for (key, v) in [("w", &m.w), ("l", &m.l), ("wol", &m.wol)] {
        if let Some(v) = v {
            toks.push(format!("{key}={}", val(v)));
        }
    }
    toks
}

fn model_tokens(m: &ModelCard) -> Vec<String> {
    let mut toks = vec![
        ".model".to_owned(),
        m.name.clone(),
        "nmos".to_owned(),
        format!("level={}", m.level),
    ];
    for (key, v) in &m.params {
        toks.push(format!("{key}={}", val(v)));
    }
    toks
}

fn analysis_tokens(a: &AnalysisCard) -> Vec<String> {
    match a {
        AnalysisCard::Op => vec![".op".to_owned()],
        AnalysisCard::Dc {
            source,
            start,
            stop,
            step,
        } => vec![
            ".dc".to_owned(),
            source.clone(),
            val(start),
            val(stop),
            val(step),
        ],
        AnalysisCard::Tran { dt, tstop } => vec![".tran".to_owned(), val(dt), val(tstop)],
        AnalysisCard::Ac {
            scale,
            n,
            fstart,
            fstop,
        } => vec![
            ".ac".to_owned(),
            match scale {
                AcScale::Dec => "dec",
                AcScale::Lin => "lin",
            }
            .to_owned(),
            val(n),
            val(fstart),
            val(fstop),
        ],
    }
}

/// Writes one card, wrapping at token boundaries with `+` continuations.
fn push_card(out: &mut String, tokens: &[String]) {
    let mut col = 0usize;
    for (i, tok) in tokens.iter().enumerate() {
        if i == 0 {
            out.push_str(tok);
            col = tok.len();
        } else if col + 1 + tok.len() > WRAP_COLS && col > 1 {
            out.push_str("\n+ ");
            out.push_str(tok);
            col = 2 + tok.len();
        } else {
            out.push(' ');
            out.push_str(tok);
            col += 1 + tok.len();
        }
    }
    let _ = writeln!(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{read_deck, DenyIncludes};
    use crate::parse::parse_cards;

    fn reparse(text: &str) -> Deck {
        parse_cards(read_deck(text, &mut DenyIncludes).unwrap()).unwrap()
    }

    #[test]
    fn render_reparse_identity_on_a_kitchen_sink_deck() {
        let deck = reparse(concat!(
            ".param vdd = 1.2\n",
            ".nodeorder in out mid\n",
            ".model swa nmos level=3 kp=2e-4 vto=0.7 cgs=1f cgd=1f\n",
            ".subckt rc a b\n",
            "r1 a b 1k\n",
            "c1 b 0 1p\n",
            ".ends rc\n",
            "v1 in 0 pulse ( 0 {vdd} 1n 1n 1n 10n 20n ) ac 1\n",
            "v2 mid 0 dc 0.6\n",
            "i1 0 out pwl ( 0 0 1n 1u )\n",
            "m1 out in 0 swa wol=4\n",
            "x1 in out rc\n",
            ".probe v(out)\n",
            ".op\n",
            ".dc v2 0 1.2 0.1\n",
            ".tran 1n 100n\n",
            ".ac dec 10 1k 1meg\n",
        ));
        let text = render(&deck);
        let again = reparse(&text);
        assert_eq!(deck.cards_only(), again.cards_only(), "rendered:\n{text}");
    }

    #[test]
    fn long_cards_wrap_with_continuations() {
        let pairs: Vec<String> = (0..40)
            .flat_map(|i| {
                [
                    format!("{}", i as f64 * 1e-9),
                    format!("{}", (i % 2) as f64),
                ]
            })
            .collect();
        let text = format!("v1 a 0 pwl ( {} )\n", pairs.join(" "));
        let deck = reparse(&text);
        let rendered = render(&deck);
        assert!(
            rendered.lines().count() > 1 && rendered.contains("\n+ "),
            "expected wrapping:\n{rendered}"
        );
        assert_eq!(deck.cards_only(), reparse(&rendered).cards_only());
    }

    #[test]
    fn negative_and_tiny_literals_survive() {
        let deck = reparse("i1 a 0 dc -1e-15\nr1 a 0 0.000000000000001\n");
        let again = reparse(&render(&deck));
        assert_eq!(deck.cards_only(), again.cards_only());
    }
}
