//! Token cards → [`Deck`] AST.
//!
//! A hand-rolled recursive-descent parser over the lexer's logical cards.
//! Element kind is dispatched on the card name's first letter (the SPICE
//! convention); directives on the full first token. Everything the
//! grammar treats case-insensitively is lowercased into the AST here.

use crate::ast::{
    AcScale, AnalysisCard, Card, Deck, ElementCard, ModelCard, MosCard, SourceCard, SourceCardBody,
    SubcktDef, Value, WaveSpec,
};
use crate::error::DeckError;
use crate::lex::{self, Token};
use crate::number;

/// `.model` parameter keys besides `level`, i.e. what [`ModelCard::params`]
/// may contain.
pub const MODEL_KEYS: [&str; 8] = ["kp", "vto", "lambda", "wol", "theta", "esatl", "cgs", "cgd"];

/// Parses lexed cards into a [`Deck`].
///
/// # Errors
///
/// A structured [`DeckError`] at the offending token.
pub fn parse_cards(cards: Vec<lex::Card>) -> Result<Deck, DeckError> {
    let mut deck = Deck::default();
    let mut open_subckt: Option<SubcktDef> = None;
    'cards: for card in cards {
        let mut p = CardParser::new(&card);
        let head = p.next().expect("lexer yields non-empty cards");
        let head_lower = head.text.to_ascii_lowercase();
        let line = head.line;

        if let Some(directive) = head_lower.strip_prefix('.') {
            match directive {
                "end" => break 'cards,
                "ends" => {
                    let def = open_subckt.take().ok_or_else(|| {
                        p.error(
                            head,
                            "unmatched_ends",
                            "\".ends\" without an open \".subckt\"",
                        )
                    })?;
                    if let Some(tok) = p.peek() {
                        let name = p.name_token("subcircuit name")?;
                        if name != def.name {
                            return Err(p.error(
                                tok,
                                "unmatched_ends",
                                format!("\".ends {name}\" closes \".subckt {}\"", def.name),
                            ));
                        }
                    }
                    p.expect_end()?;
                    deck.cards.push(SourceCard {
                        line,
                        card: Card::Subckt(def),
                    });
                    continue;
                }
                "subckt" => {
                    if open_subckt.is_some() {
                        return Err(p.error(
                            head,
                            "nested_subckt",
                            "\".subckt\" definitions cannot nest",
                        ));
                    }
                    let name = p.name_token("subcircuit name")?;
                    let mut ports = Vec::new();
                    while p.peek().is_some() {
                        ports.push(p.name_token("port node")?);
                    }
                    if ports.is_empty() {
                        return Err(p.error(
                            head,
                            "bad_subckt",
                            "\".subckt\" needs at least one port",
                        ));
                    }
                    open_subckt = Some(SubcktDef {
                        name,
                        ports,
                        body: Vec::new(),
                    });
                    continue;
                }
                _ => {}
            }
            if open_subckt.is_some() {
                return Err(p.error(
                    head,
                    "bad_subckt_body",
                    format!("directive {:?} not allowed inside \".subckt\"", head.text),
                ));
            }
            let parsed = match directive {
                "op" => {
                    p.expect_end()?;
                    Card::Analysis(AnalysisCard::Op)
                }
                "dc" => {
                    let source = p.name_token("swept source name")?;
                    let start = p.value_token()?;
                    let stop = p.value_token()?;
                    let step = p.value_token()?;
                    p.expect_end()?;
                    Card::Analysis(AnalysisCard::Dc {
                        source,
                        start,
                        stop,
                        step,
                    })
                }
                "tran" => {
                    let dt = p.value_token()?;
                    let tstop = p.value_token()?;
                    p.expect_end()?;
                    Card::Analysis(AnalysisCard::Tran { dt, tstop })
                }
                "ac" => {
                    let scale_tok = p
                        .next()
                        .ok_or_else(|| p.end_error("expected \"dec\" or \"lin\""))?;
                    let scale = match scale_tok.text.to_ascii_lowercase().as_str() {
                        "dec" => AcScale::Dec,
                        "lin" => AcScale::Lin,
                        other => {
                            return Err(p.error(
                                scale_tok,
                                "bad_analysis",
                                format!("expected \"dec\" or \"lin\", got {other:?}"),
                            ))
                        }
                    };
                    let n = p.value_token()?;
                    let fstart = p.value_token()?;
                    let fstop = p.value_token()?;
                    p.expect_end()?;
                    Card::Analysis(AnalysisCard::Ac {
                        scale,
                        n,
                        fstart,
                        fstop,
                    })
                }
                "probe" => {
                    let node = p.probe_node()?;
                    p.expect_end()?;
                    Card::Probe { node }
                }
                "param" => {
                    let name = p.name_token("parameter name")?;
                    p.expect_punct("=")?;
                    let value = p.value_token()?;
                    p.expect_end()?;
                    Card::Param { name, value }
                }
                "nodeorder" => {
                    let mut nodes = Vec::new();
                    while p.peek().is_some() {
                        nodes.push(p.name_token("node name")?);
                    }
                    if nodes.is_empty() {
                        return Err(p.error(
                            head,
                            "bad_nodeorder",
                            "\".nodeorder\" needs at least one node",
                        ));
                    }
                    Card::NodeOrder(nodes)
                }
                "model" => Card::Model(p.model_card()?),
                _ => {
                    return Err(p.error(
                        head,
                        "unknown_directive",
                        format!("unknown directive {:?}", head.text),
                    ))
                }
            };
            deck.cards.push(SourceCard { line, card: parsed });
            continue;
        }

        let element = p.element_card(head, &head_lower)?;
        match open_subckt.as_mut() {
            Some(def) => def.body.push((line, element)),
            None => deck.cards.push(SourceCard {
                line,
                card: Card::Element(element),
            }),
        }
    }
    if let Some(def) = open_subckt {
        return Err(DeckError::new(
            "unclosed_subckt",
            u32::MAX,
            1,
            format!("\".subckt {}\" is never closed by \".ends\"", def.name),
        ));
    }
    Ok(deck)
}

/// True when `name` is acceptable as a node/device/model/param name:
/// leading ASCII alphanumeric or `_`, then alphanumerics and `_ . $ -`.
pub fn valid_name(name: &str) -> bool {
    let mut bytes = name.bytes();
    let Some(first) = bytes.next() else {
        return false;
    };
    if !(first.is_ascii_alphanumeric() || first == b'_') {
        return false;
    }
    bytes.all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'$' | b'-'))
}

/// Cursor over one card's tokens.
struct CardParser<'a> {
    card: &'a lex::Card,
    pos: usize,
}

impl<'a> CardParser<'a> {
    fn new(card: &'a lex::Card) -> CardParser<'a> {
        CardParser { card, pos: 0 }
    }

    fn peek(&self) -> Option<&'a Token> {
        self.card.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.card.tokens.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    /// Builds an error at `tok`, annotating cards spliced from includes.
    fn error(&self, tok: &Token, code: &'static str, message: impl Into<String>) -> DeckError {
        let mut message = message.into();
        if let Some(origin) = &self.card.origin {
            message.push_str(&format!(" (in include {origin:?})"));
        }
        DeckError::new(code, tok.line, tok.col, message)
    }

    /// An error positioned just past the card's last token.
    fn end_error(&self, message: impl Into<String>) -> DeckError {
        let last = self.card.tokens.last().expect("non-empty card");
        self.error(
            last,
            "truncated_card",
            format!("{} after {:?}", message.into(), last.text),
        )
    }

    fn expect_end(&mut self) -> Result<(), DeckError> {
        match self.peek() {
            None => Ok(()),
            Some(tok) => Err(self.error(
                tok,
                "trailing_tokens",
                format!("unexpected {:?} at end of card", tok.text),
            )),
        }
    }

    fn expect_punct(&mut self, want: &str) -> Result<(), DeckError> {
        match self.next() {
            Some(tok) if tok.text == want => Ok(()),
            Some(tok) => Err(self.error(
                tok,
                "bad_syntax",
                format!("expected {want:?}, got {:?}", tok.text),
            )),
            None => Err(self.end_error(format!("expected {want:?}"))),
        }
    }

    /// Skips an optional `,` separator.
    fn skip_comma(&mut self) {
        if self.peek().is_some_and(|t| t.text == ",") {
            self.pos += 1;
        }
    }

    /// Reads a lowercased, validated name token.
    fn name_token(&mut self, what: &str) -> Result<String, DeckError> {
        let tok = self
            .next()
            .ok_or_else(|| self.end_error(format!("expected {what}")))?;
        let lower = tok.text.to_ascii_lowercase();
        if tok.quoted || !valid_name(&lower) {
            return Err(self.error(tok, "bad_name", format!("invalid {what} {:?}", tok.text)));
        }
        Ok(lower)
    }

    /// Reads a [`Value`]: a `{param}` reference or a SPICE literal.
    fn value_token(&mut self) -> Result<Value, DeckError> {
        self.skip_comma();
        let tok = self
            .next()
            .ok_or_else(|| self.end_error("expected a value"))?;
        self.parse_value(tok)
    }

    fn parse_value(&self, tok: &Token) -> Result<Value, DeckError> {
        if let Some(inner) = tok.text.strip_prefix('{').and_then(|t| t.strip_suffix('}')) {
            let lower = inner.to_ascii_lowercase();
            if !valid_name(&lower) {
                return Err(self.error(
                    tok,
                    "bad_name",
                    format!("invalid parameter reference {:?}", tok.text),
                ));
            }
            return Ok(Value::Ref(lower));
        }
        match number::parse_spice(&tok.text) {
            Some(v) => Ok(Value::Lit(v)),
            None => Err(self.error(tok, "bad_number", format!("invalid number {:?}", tok.text))),
        }
    }

    /// `.probe` argument: `v ( node )` or a bare node name.
    fn probe_node(&mut self) -> Result<String, DeckError> {
        let uses_v = self
            .peek()
            .is_some_and(|t| t.text.eq_ignore_ascii_case("v"))
            && self
                .card
                .tokens
                .get(self.pos + 1)
                .is_some_and(|t| t.text == "(");
        if uses_v {
            self.pos += 1;
            self.expect_punct("(")?;
            let node = self.name_token("probed node")?;
            self.expect_punct(")")?;
            Ok(node)
        } else {
            self.name_token("probed node")
        }
    }

    /// `key = value` pairs (with optional `,` separators) to end of card.
    fn kv_pairs(&mut self) -> Result<Vec<(String, Value)>, DeckError> {
        let mut out: Vec<(String, Value)> = Vec::new();
        loop {
            self.skip_comma();
            if self.peek().is_none() {
                return Ok(out);
            }
            let key_tok = self.next().expect("peeked");
            let key = key_tok.text.to_ascii_lowercase();
            if !valid_name(&key) {
                return Err(self.error(
                    key_tok,
                    "bad_name",
                    format!("invalid parameter key {:?}", key_tok.text),
                ));
            }
            if out.iter().any(|(k, _)| *k == key) {
                return Err(self.error(
                    key_tok,
                    "duplicate_param",
                    format!("parameter {key:?} given twice"),
                ));
            }
            self.expect_punct("=")?;
            let value = self.value_token()?;
            out.push((key, value));
        }
    }

    /// `.model <name> nmos [level=…] key=value…`.
    fn model_card(&mut self) -> Result<ModelCard, DeckError> {
        let name = self.name_token("model name")?;
        let kind_tok = self
            .next()
            .ok_or_else(|| self.end_error("expected the model type (\"nmos\")"))?;
        if !kind_tok.text.eq_ignore_ascii_case("nmos") {
            return Err(self.error(
                kind_tok,
                "unsupported_model",
                format!(
                    "unsupported model type {:?} (only \"nmos\" exists in this dialect)",
                    kind_tok.text
                ),
            ));
        }
        let mut level = 1u8;
        let mut params = Vec::new();
        for (key, value) in self.kv_pairs()? {
            if key == "level" {
                level = match value {
                    Value::Lit(1.0) => 1,
                    Value::Lit(3.0) => 3,
                    _ => {
                        return Err(self.error(
                            kind_tok,
                            "unsupported_model",
                            "\"level\" must be the literal 1 or 3",
                        ))
                    }
                };
            } else if MODEL_KEYS.contains(&key.as_str()) {
                params.push((key, value));
            } else {
                return Err(self.error(
                    kind_tok,
                    "unknown_model_param",
                    format!("unknown .model parameter {key:?}"),
                ));
            }
        }
        for required in ["kp", "vto"] {
            if !params.iter().any(|(k, _)| k == required) {
                return Err(self.error(
                    kind_tok,
                    "bad_model",
                    format!("model {name:?} is missing required parameter {required:?}"),
                ));
            }
        }
        Ok(ModelCard {
            name,
            level,
            params,
        })
    }

    /// An element card, dispatched on the (lowercased) name's first letter.
    fn element_card(&mut self, head: &Token, head_lower: &str) -> Result<ElementCard, DeckError> {
        if head.quoted || !valid_name(head_lower) {
            return Err(self.error(
                head,
                "bad_name",
                format!("invalid device name {:?}", head.text),
            ));
        }
        let name = head_lower.to_owned();
        match head_lower.as_bytes()[0] {
            b'r' | b'c' => {
                let a = self.name_token("node")?;
                let b = self.name_token("node")?;
                let value = self.value_token()?;
                self.expect_end()?;
                Ok(if head_lower.as_bytes()[0] == b'r' {
                    ElementCard::Res { name, a, b, value }
                } else {
                    ElementCard::Cap { name, a, b, value }
                })
            }
            b'v' | b'i' => {
                let body = self.source_body(name)?;
                self.expect_end()?;
                Ok(if head_lower.as_bytes()[0] == b'v' {
                    ElementCard::V(body)
                } else {
                    ElementCard::I(body)
                })
            }
            b'm' => {
                let card = self.mos_card(head, name)?;
                self.expect_end()?;
                Ok(ElementCard::Mos(card))
            }
            b'x' => {
                let mut nodes = Vec::new();
                while self.peek().is_some() {
                    nodes.push(self.name_token("node")?);
                }
                if nodes.len() < 2 {
                    return Err(self.error(
                        head,
                        "bad_instance",
                        "subcircuit instance needs at least one node and a subcircuit name",
                    ));
                }
                let subckt = nodes.pop().expect("length checked");
                Ok(ElementCard::Instance {
                    name,
                    nodes,
                    subckt,
                })
            }
            b'l' | b'd' | b'q' | b'k' | b'e' | b'f' | b'g' | b'h' | b'b' | b's' | b'w' | b't'
            | b'o' | b'u' | b'j' | b'z' => Err(self.error(
                head,
                "unsupported_element",
                format!(
                    "element {:?} is not in the supported subset (R, C, V, I, M, X)",
                    head.text
                ),
            )),
            _ => Err(self.error(
                head,
                "unknown_card",
                format!("cannot classify card starting with {:?}", head.text),
            )),
        }
    }

    /// `n+ n- <wave> [ac mag]` for `V`/`I` cards.
    fn source_body(&mut self, name: String) -> Result<SourceCardBody, DeckError> {
        let plus = self.name_token("node")?;
        let minus = self.name_token("node")?;
        let kind_tok = self
            .next()
            .ok_or_else(|| self.end_error("expected a waveform"))?;
        let wave = match kind_tok.text.to_ascii_lowercase().as_str() {
            "pulse" => {
                self.expect_punct("(")?;
                let mut vals = Vec::with_capacity(7);
                for _ in 0..7 {
                    vals.push(self.value_token()?);
                }
                self.expect_punct(")")?;
                let vals: [Value; 7] = vals.try_into().expect("exactly 7");
                WaveSpec::Pulse(vals)
            }
            "pwl" => {
                self.expect_punct("(")?;
                let mut vals = Vec::new();
                loop {
                    self.skip_comma();
                    match self.peek() {
                        Some(tok) if tok.text == ")" => {
                            self.pos += 1;
                            break;
                        }
                        Some(_) => vals.push(self.value_token()?),
                        None => return Err(self.end_error("expected \")\"")),
                    }
                }
                if vals.is_empty() || vals.len() % 2 != 0 {
                    return Err(self.error(
                        kind_tok,
                        "bad_waveform",
                        format!(
                            "pwl needs an even, nonzero number of values, got {}",
                            vals.len()
                        ),
                    ));
                }
                WaveSpec::Pwl(vals)
            }
            "dc" => WaveSpec::Dc(self.value_token()?),
            _ => WaveSpec::Dc(self.parse_value(kind_tok)?),
        };
        let ac_mag = if self
            .peek()
            .is_some_and(|t| t.text.eq_ignore_ascii_case("ac"))
        {
            self.pos += 1;
            Some(self.value_token()?)
        } else {
            None
        };
        Ok(SourceCardBody {
            name,
            plus,
            minus,
            wave,
            ac_mag,
        })
    }

    /// `d g s [b] model [w=…] [l=…] [wol=…]` for `M` cards.
    fn mos_card(&mut self, head: &Token, name: String) -> Result<MosCard, DeckError> {
        let mut plain = Vec::new();
        while let Some(tok) = self.peek() {
            // A `key = value` tail starts where the next-but-one token
            // is `=`.
            if self
                .card
                .tokens
                .get(self.pos + 1)
                .is_some_and(|t| t.text == "=")
            {
                break;
            }
            if tok.text == "," {
                self.pos += 1;
                continue;
            }
            plain.push(self.name_token("node or model name")?);
        }
        let (d, g, s, bulk, model) = match plain.len() {
            4 => {
                let mut it = plain.into_iter();
                let (d, g, s, model) = (
                    it.next().expect("4 items"),
                    it.next().expect("4 items"),
                    it.next().expect("4 items"),
                    it.next().expect("4 items"),
                );
                (d, g, s, None, model)
            }
            5 => {
                let mut it = plain.into_iter();
                let (d, g, s, b, model) = (
                    it.next().expect("5 items"),
                    it.next().expect("5 items"),
                    it.next().expect("5 items"),
                    it.next().expect("5 items"),
                    it.next().expect("5 items"),
                );
                (d, g, s, Some(b), model)
            }
            n => {
                return Err(self.error(
                    head,
                    "bad_mos_card",
                    format!("MOSFET card needs \"d g s [b] model\", got {n} names"),
                ))
            }
        };
        let mut card = MosCard {
            name,
            d,
            g,
            s,
            bulk,
            model,
            w: None,
            l: None,
            wol: None,
        };
        for (key, value) in self.kv_pairs()? {
            match key.as_str() {
                "w" => card.w = Some(value),
                "l" => card.l = Some(value),
                "wol" => card.wol = Some(value),
                other => {
                    return Err(self.error(
                        head,
                        "unknown_mos_param",
                        format!("unknown MOSFET instance parameter {other:?}"),
                    ))
                }
            }
        }
        Ok(card)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::DenyIncludes;

    fn parse(text: &str) -> Result<Deck, DeckError> {
        parse_cards(lex::read_deck(text, &mut DenyIncludes)?)
    }

    #[test]
    fn elements_and_suffixes() {
        let d =
            parse("* demo\nR1 A B 1k\nCload b 0 2.2u\nVin a 0 DC 1.2\niload b 0 10meg\n").unwrap();
        let cards = d.cards_only();
        assert_eq!(cards.len(), 4);
        match cards[0] {
            Card::Element(ElementCard::Res { name, a, b, value }) => {
                assert_eq!((name.as_str(), a.as_str(), b.as_str()), ("r1", "a", "b"));
                assert_eq!(*value, Value::Lit(1e3));
            }
            other => panic!("expected resistor, got {other:?}"),
        }
        match cards[2] {
            Card::Element(ElementCard::V(body)) => {
                assert_eq!(body.wave, WaveSpec::Dc(Value::Lit(1.2)));
                assert_eq!(body.ac_mag, None);
            }
            other => panic!("expected vsource, got {other:?}"),
        }
    }

    #[test]
    fn waveforms_params_probes_analyses() {
        let d = parse(concat!(
            ".param vdd=1.2\n",
            "v1 in 0 pulse ( 0 {vdd} 1n 1n 1n 5u 0 ) ac 1\n",
            "v2 inn 0 pwl ( 0 0, 1n {vdd} )\n",
            ".probe v(out)\n",
            ".probe raw\n",
            ".op\n",
            ".dc v1 0 1.2 0.1\n",
            ".tran 1n 100n\n",
            ".ac dec 10 1k 1meg\n",
        ))
        .unwrap();
        let cards = d.cards_only();
        assert_eq!(
            cards[0],
            &Card::Param {
                name: "vdd".into(),
                value: Value::Lit(1.2)
            }
        );
        match cards[1] {
            Card::Element(ElementCard::V(b)) => {
                assert!(matches!(&b.wave, WaveSpec::Pulse(v) if v[1] == Value::Ref("vdd".into())));
                assert_eq!(b.ac_mag, Some(Value::Lit(1.0)));
            }
            other => panic!("{other:?}"),
        }
        match cards[2] {
            Card::Element(ElementCard::V(b)) => {
                assert!(matches!(&b.wave, WaveSpec::Pwl(v) if v.len() == 4));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(cards[3], &Card::Probe { node: "out".into() });
        assert_eq!(cards[4], &Card::Probe { node: "raw".into() });
        assert_eq!(cards[5], &Card::Analysis(AnalysisCard::Op));
        assert!(matches!(
            cards[6],
            Card::Analysis(AnalysisCard::Dc { source, .. }) if source == "v1"
        ));
        assert!(matches!(
            cards[7],
            Card::Analysis(AnalysisCard::Tran { .. })
        ));
        assert!(matches!(
            cards[8],
            Card::Analysis(AnalysisCard::Ac {
                scale: AcScale::Dec,
                ..
            })
        ));
    }

    #[test]
    fn model_and_mos_cards() {
        let d = parse(concat!(
            ".model swa NMOS level=3 kp=2e-4 vto=0.7 lambda=0.01 wol=2 cgs=1f cgd=1f\n",
            "m1 d1 g1 0 swa\n",
            "m2 d2 g2 0 0 swa wol=4\n",
        ))
        .unwrap();
        let cards = d.cards_only();
        match cards[0] {
            Card::Model(m) => {
                assert_eq!(m.name, "swa");
                assert_eq!(m.level, 3);
                assert_eq!(m.params[0], ("kp".into(), Value::Lit(2e-4)));
                assert_eq!(m.params[4], ("cgs".into(), Value::Lit(1e-15)));
            }
            other => panic!("{other:?}"),
        }
        match cards[2] {
            Card::Element(ElementCard::Mos(m)) => {
                assert_eq!(m.bulk.as_deref(), Some("0"));
                assert_eq!(m.wol, Some(Value::Lit(4.0)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subckt_definitions_flatten_later() {
        let d = parse(concat!(
            ".subckt rc in out\n",
            "r1 in out 1k\n",
            "c1 out 0 1p\n",
            ".ends rc\n",
            "x1 a b rc\n",
        ))
        .unwrap();
        let cards = d.cards_only();
        match cards[0] {
            Card::Subckt(def) => {
                assert_eq!(def.name, "rc");
                assert_eq!(def.ports, ["in", "out"]);
                assert_eq!(def.body.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            cards[1],
            Card::Element(ElementCard::Instance { subckt, .. }) if subckt == "rc"
        ));
    }

    #[test]
    fn end_stops_parsing() {
        let d = parse("r1 a b 1\n.end\nthis is not ( valid\n").unwrap();
        assert_eq!(d.cards.len(), 1);
    }

    #[test]
    fn errors_carry_positions() {
        for (text, code, line) in [
            ("r1 a b\n", "truncated_card", 1),
            ("r1 a b 1k extra\n", "trailing_tokens", 1),
            ("* t\nr1 a b 1x2\n", "bad_number", 2),
            ("q1 a b c\n", "unsupported_element", 1),
            ("?1 a b 1\n", "bad_name", 1),
            ("81 a b 1\n", "unknown_card", 1),
            (".noise v(out)\n", "unknown_directive", 1),
            (".model m pmos kp=1 vto=1\n", "unsupported_model", 1),
            (
                ".model m nmos kp=1 vto=1 beta=3\n",
                "unknown_model_param",
                1,
            ),
            (".model m nmos vto=1\n", "bad_model", 1),
            (".model m nmos kp=1 vto=1 kp=2\n", "duplicate_param", 1),
            ("m1 d g swa\n", "bad_mos_card", 1),
            ("v1 a 0 pwl ( 0 )\n", "bad_waveform", 1),
            (".ends\n", "unmatched_ends", 1),
            (".subckt s a\nr1 a 0 1\n", "unclosed_subckt", 0),
            (".subckt s a\n.op\n", "bad_subckt_body", 2),
            ("v1 a 0 1e999\n", "bad_number", 1),
        ] {
            let e = parse(text).unwrap_err();
            assert_eq!(e.code, code, "{text:?} → {e}");
            if line > 0 {
                assert_eq!(e.line, line, "{text:?} → {e}");
            }
            assert!(e.line >= 1 && e.col >= 1, "{text:?} → {e}");
        }
    }
}
