//! [`SimJob`] → deck text, the inverse of [`crate::elaborate`].
//!
//! The exporter targets *bit-reproducibility*: elaborating the exported
//! deck yields a job whose results are byte-identical to the original's.
//! That means preserving two orders the MNA system is sensitive to —
//! node creation order (via the always-emitted `.nodeorder` dialect card)
//! and device insertion order — and reconstructing `.dc` ladders whose
//! regenerated values are bitwise equal.
//!
//! Only the deck-expressible subset exports: jobs with deadlines, AC
//! sweeps, non-default solver selection, adaptive transients, or
//! non-default sample caps return an error instead of a lossy deck.
//! Labels and retry policies are *not* represented (elaboration assigns
//! positional labels and the default policy); neither affects outcomes.

use std::collections::HashMap;

use fts_engine::{Analysis, SimJob, DEFAULT_MAX_SAMPLES};
use fts_spice::analysis::{Integrator, Stepping};
use fts_spice::{DeviceView, Mos3Params, MosParams, Netlist, NodeId, SolverKind, Waveform};

use crate::ast::{
    AnalysisCard, Card, Deck, ElementCard, ModelCard, MosCard, SourceCard, SourceCardBody, Value,
    WaveSpec,
};
use crate::parse::valid_name;
use crate::print::render;

/// Title comment prepended to every exported deck.
const TITLE: &str = "* exported by fts-netlist; node and device order are load-bearing\n";

/// Renders `job` as a deck that elaborates back to a job with
/// byte-identical results. `out` is the report node; it becomes the first
/// `.probe` card (for transient jobs it must be the job's first probe).
///
/// # Errors
///
/// A human-readable message when the job is outside the deck-expressible
/// subset.
pub fn export_job(job: &SimJob, out: NodeId) -> Result<String, String> {
    if job.deadline.is_some() {
        return Err("jobs with deadlines are not deck-expressible".to_owned());
    }
    let nl = &job.netlist;
    if nl.solver_kind() != SolverKind::Auto {
        return Err("forced solver selection is not deck-expressible".to_owned());
    }
    if nl.device_count() == 0 {
        return Err("empty netlist".to_owned());
    }
    if nl.device_count() + nl.node_count() > 60_000 {
        return Err("netlist too large for the deck card limit".to_owned());
    }

    let mut deck = Deck::default();
    let card = |card: Card| SourceCard { line: 0, card };

    // Node order is load-bearing: it fixes MNA row order, hence pivoting,
    // hence the last bits of every solve.
    let mut nodes = Vec::with_capacity(nl.node_count().saturating_sub(1));
    for idx in 1..nl.node_count() {
        let name = nl.node_name(nl.node_id(idx)).to_ascii_lowercase();
        if !valid_name(&name) || name == "0" {
            return Err(format!("node name {name:?} is not deck-expressible"));
        }
        if nodes.contains(&name) {
            return Err(format!("node names collide after lowercasing: {name:?}"));
        }
        nodes.push(name);
    }
    deck.cards.push(card(Card::NodeOrder(nodes)));

    // Models, deduplicated bitwise, named in first-use order.
    let mut exporter = ModelTable::default();
    let views: Vec<DeviceView> = nl.devices().collect();
    for view in &views {
        match view {
            DeviceView::Nmos { params, .. } => exporter.intern1(params),
            DeviceView::Nmos3 { params, .. } => exporter.intern3(params),
            _ => {}
        }
    }
    for model in &exporter.cards {
        deck.cards.push(card(Card::Model(model.clone())));
    }

    // Devices in insertion order, skipping the gate capacitors that
    // `Netlist::nmos3` auto-instantiates (elaboration re-adds them at the
    // same position).
    let mut dc_source: Option<String> = None;
    let wanted_source = match &job.analysis {
        Analysis::DcSweep { source, .. } => Some(source.as_str()),
        _ => None,
    };
    let mut i = 0;
    while i < views.len() {
        let view = &views[i];
        let element = match view {
            DeviceView::Resistor { name, a, b, ohms } => ElementCard::Res {
                name: device_name(name, b'r')?,
                a: node(nl, *a),
                b: node(nl, *b),
                value: lit(*ohms)?,
            },
            DeviceView::Capacitor {
                name, a, b, farads, ..
            } => ElementCard::Cap {
                name: device_name(name, b'c')?,
                a: node(nl, *a),
                b: node(nl, *b),
                value: lit(*farads)?,
            },
            DeviceView::VSource {
                name,
                plus,
                minus,
                wave,
            } => {
                let deck_name = device_name(name, b'v')?;
                if wanted_source == Some(*name) {
                    dc_source = Some(deck_name.clone());
                }
                ElementCard::V(SourceCardBody {
                    name: deck_name,
                    plus: node(nl, *plus),
                    minus: node(nl, *minus),
                    wave: wave_spec(wave)?,
                    ac_mag: None,
                })
            }
            DeviceView::ISource {
                name,
                from,
                to,
                wave,
            } => ElementCard::I(SourceCardBody {
                name: device_name(name, b'i')?,
                plus: node(nl, *from),
                minus: node(nl, *to),
                wave: wave_spec(wave)?,
                ac_mag: None,
            }),
            DeviceView::Nmos {
                name,
                d,
                g,
                s,
                params,
            } => ElementCard::Mos(MosCard {
                name: device_name(name, b'm')?,
                d: node(nl, *d),
                g: node(nl, *g),
                s: node(nl, *s),
                bulk: None,
                model: exporter.name1(params),
                w: None,
                l: None,
                wol: Some(lit(params.w_over_l)?),
            }),
            DeviceView::Nmos3 {
                name,
                d,
                g,
                s,
                params,
            } => {
                // Skip the auto-instantiated `<name>_cgs` / `<name>_cgd`
                // companions; elaboration recreates them identically.
                for (suffix, cap_b, farads) in [("_cgs", *s, params.cgs), ("_cgd", *d, params.cgd)]
                {
                    if farads <= 0.0 {
                        continue;
                    }
                    let expect = format!("{name}{suffix}");
                    match views.get(i + 1) {
                        Some(DeviceView::Capacitor {
                            name: cname,
                            a,
                            b,
                            farads: f,
                        }) if *cname == expect
                            && *a == *g
                            && *b == cap_b
                            && f.to_bits() == farads.to_bits() =>
                        {
                            i += 1;
                        }
                        _ => {
                            return Err(format!(
                                "MOSFET {name:?} lacks its auto gate capacitor {expect:?}"
                            ))
                        }
                    }
                }
                ElementCard::Mos(MosCard {
                    name: device_name(name, b'm')?,
                    d: node(nl, *d),
                    g: node(nl, *g),
                    s: node(nl, *s),
                    bulk: None,
                    model: exporter.name3(params),
                    w: None,
                    l: None,
                    wol: Some(lit(params.w_over_l)?),
                })
            }
        };
        deck.cards.push(card(Card::Element(element)));
        i += 1;
    }

    // Probes: the report node first, then any further transient probes.
    let mut probe_ids = vec![out];
    if let Analysis::Transient { probes, .. } = &job.analysis {
        if probes.is_empty() {
            return Err("transient jobs must carry explicit probes to export".to_owned());
        }
        if probes[0] != out {
            return Err("the report node must be the first transient probe".to_owned());
        }
        probe_ids = probes.clone();
    }
    for id in &probe_ids {
        if *id == Netlist::GROUND || id.index() >= nl.node_count() {
            return Err("probe node is ground or foreign".to_owned());
        }
        deck.cards.push(card(Card::Probe {
            node: node(nl, *id),
        }));
    }

    // The analysis card.
    let analysis = match &job.analysis {
        Analysis::Op => AnalysisCard::Op,
        Analysis::DcSweep { values, .. } => {
            let source = dc_source.ok_or("swept source not found among voltage sources")?;
            let (start, stop, step) = sweep_params(values)?;
            AnalysisCard::Dc {
                source,
                start: lit(start)?,
                stop: lit(stop)?,
                step: lit(step)?,
            }
        }
        Analysis::Transient {
            config,
            max_samples,
            ..
        } => {
            if *max_samples != DEFAULT_MAX_SAMPLES {
                return Err("non-default max_samples is not deck-expressible".to_owned());
            }
            let Stepping::Fixed { dt } = config.stepping else {
                return Err("adaptive transients are not deck-expressible".to_owned());
            };
            if config.integrator != Integrator::Trapezoidal || config.uic {
                return Err("non-default transient config is not deck-expressible".to_owned());
            }
            AnalysisCard::Tran {
                dt: lit(dt)?,
                tstop: lit(config.tstop)?,
            }
        }
        Analysis::Ac { .. } => return Err("AC jobs are not deck-expressible".to_owned()),
    };
    deck.cards.push(card(Card::Analysis(analysis)));

    let text = format!("{TITLE}{}", render(&deck));
    if text.len() > crate::lex::MAX_FILE_BYTES {
        return Err("exported deck exceeds the parser's file-size limit".to_owned());
    }
    Ok(text)
}

fn node(nl: &Netlist, id: NodeId) -> String {
    nl.node_name(id).to_ascii_lowercase()
}

fn lit(v: f64) -> Result<Value, String> {
    if !v.is_finite() {
        return Err(format!("non-finite value {v} is not deck-expressible"));
    }
    Ok(Value::Lit(v))
}

/// Lowercases a device name and pins the SPICE element letter in front
/// when the name doesn't already start with it.
fn device_name(name: &str, letter: u8) -> Result<String, String> {
    let mut lower = name.to_ascii_lowercase();
    if lower.as_bytes().first() != Some(&letter) {
        lower.insert(0, letter as char);
    }
    if !valid_name(&lower) {
        return Err(format!("device name {name:?} is not deck-expressible"));
    }
    Ok(lower)
}

fn wave_spec(wave: &Waveform) -> Result<WaveSpec, String> {
    Ok(match wave {
        Waveform::Dc(v) => WaveSpec::Dc(lit(*v)?),
        Waveform::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
            period,
        } => WaveSpec::Pulse([
            lit(*v0)?,
            lit(*v1)?,
            lit(*delay)?,
            lit(*rise)?,
            lit(*fall)?,
            lit(*width)?,
            lit(*period)?,
        ]),
        Waveform::Pwl(points) => {
            if points.is_empty() {
                return Err("empty PWL waveform is not deck-expressible".to_owned());
            }
            let mut vals = Vec::with_capacity(points.len() * 2);
            for (t, v) in points {
                vals.push(lit(*t)?);
                vals.push(lit(*v)?);
            }
            WaveSpec::Pwl(vals)
        }
    })
}

/// Inverts the elaborator's `start + k·step` ladder, verifying bitwise
/// uniformity so re-elaboration regenerates the exact values.
fn sweep_params(values: &[f64]) -> Result<(f64, f64, f64), String> {
    match values {
        [] => Err("empty DC sweep".to_owned()),
        [v] => Ok((*v, *v, 1.0)),
        [first, second, ..] => {
            let (start, step) = (*first, second - first);
            if step == 0.0 || !step.is_finite() {
                return Err("DC sweep values are not a ladder".to_owned());
            }
            for (k, v) in values.iter().enumerate() {
                if (start + k as f64 * step).to_bits() != v.to_bits() {
                    return Err("DC sweep values are not bitwise uniform".to_owned());
                }
            }
            Ok((start, values[values.len() - 1], step))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::{elaborate, ElabOptions};
    use crate::lex::{read_deck, DenyIncludes};
    use crate::parse::parse_cards;
    use fts_spice::analysis::TranConfig;

    fn reelaborate(text: &str) -> crate::elaborate::Elaborated {
        let deck = parse_cards(read_deck(text, &mut DenyIncludes).unwrap()).unwrap();
        elaborate(&deck, &ElabOptions::default()).unwrap()
    }

    fn sample_netlist() -> (Netlist, NodeId) {
        let mut nl = Netlist::new();
        let inp = nl.node("IN");
        let out = nl.node("OUT");
        let mid = nl.node("Mid");
        nl.vsource(
            "Vdrv",
            inp,
            Netlist::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.2,
                delay: 1e-9,
                rise: 1e-9,
                fall: 1e-9,
                width: 8e-9,
                period: 20e-9,
            },
        )
        .unwrap();
        nl.resistor("R1", inp, mid, 1e3).unwrap();
        nl.nmos(
            "S0_0_A0",
            mid,
            inp,
            Netlist::GROUND,
            MosParams {
                kp: 2e-4,
                vth: 0.7,
                lambda: 0.01,
                w_over_l: 2.0,
            },
        )
        .unwrap();
        nl.nmos3(
            "S0_1_B0",
            out,
            mid,
            Netlist::GROUND,
            Mos3Params {
                kp: 2e-4,
                vth: 0.7,
                lambda: 0.0,
                w_over_l: 3.0,
                theta: 0.1,
                esat_l: 1.5,
                cgs: 1e-15,
                cgd: 2e-15,
            },
        )
        .unwrap();
        nl.capacitor("Cload", out, Netlist::GROUND, 1e-12).unwrap();
        (nl, out)
    }

    fn device_fingerprint(nl: &Netlist) -> Vec<String> {
        nl.devices()
            .map(|d| match d {
                DeviceView::Resistor { a, b, ohms, .. } => {
                    format!("r {} {} {ohms:?}", a.index(), b.index())
                }
                DeviceView::Capacitor { a, b, farads, .. } => {
                    format!("c {} {} {farads:?}", a.index(), b.index())
                }
                DeviceView::VSource {
                    plus, minus, wave, ..
                } => format!("v {} {} {wave:?}", plus.index(), minus.index()),
                DeviceView::ISource { from, to, wave, .. } => {
                    format!("i {} {} {wave:?}", from.index(), to.index())
                }
                DeviceView::Nmos {
                    d, g, s, params, ..
                } => {
                    format!("m {} {} {} {params:?}", d.index(), g.index(), s.index())
                }
                DeviceView::Nmos3 {
                    d, g, s, params, ..
                } => {
                    format!("m3 {} {} {} {params:?}", d.index(), g.index(), s.index())
                }
            })
            .collect()
    }

    #[test]
    fn op_job_round_trips_structurally() {
        let (nl, out) = sample_netlist();
        let job = SimJob::op(nl);
        let text = export_job(&job, out).unwrap();
        let e = reelaborate(&text);
        // Same node order…
        assert_eq!(e.netlist.node_count(), job.netlist.node_count());
        for idx in 0..e.netlist.node_count() {
            assert_eq!(
                e.netlist.node_name(e.netlist.node_id(idx)),
                job.netlist
                    .node_name(job.netlist.node_id(idx))
                    .to_ascii_lowercase()
            );
        }
        // …same devices in the same order (names aside)…
        assert_eq!(
            device_fingerprint(&e.netlist),
            device_fingerprint(&job.netlist)
        );
        // …and the same report node.
        assert_eq!(e.out.index(), out.index());
        assert!(matches!(e.jobs[0].analysis, Analysis::Op));
    }

    #[test]
    fn transient_and_dc_round_trip() {
        let (nl, out) = sample_netlist();
        let tran = SimJob::transient(nl.clone(), TranConfig::fixed(0.5e-9, 40e-9)).probes(&[out]);
        let text = export_job(&tran, out).unwrap();
        let e = reelaborate(&text);
        match (&e.jobs[0].analysis, &tran.analysis) {
            (
                Analysis::Transient {
                    config: got,
                    probes,
                    max_samples,
                },
                Analysis::Transient { config: want, .. },
            ) => {
                assert_eq!(got.tstop.to_bits(), want.tstop.to_bits());
                assert_eq!(probes, &[e.out]);
                assert_eq!(*max_samples, DEFAULT_MAX_SAMPLES);
            }
            other => panic!("{other:?}"),
        }

        let values: Vec<f64> = (0..=12).map(|k| 0.0 + k as f64 * 0.1).collect();
        let dc = SimJob::dc_sweep(nl, "Vdrv", values.clone());
        let text = export_job(&dc, out).unwrap();
        let e = reelaborate(&text);
        match &e.jobs[0].analysis {
            Analysis::DcSweep {
                source,
                values: got,
            } => {
                assert_eq!(source, "vdrv");
                assert_eq!(got.len(), values.len());
                for (a, b) in got.iter().zip(&values) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsupported_jobs_are_refused() {
        let (nl, out) = sample_netlist();
        let with_deadline = SimJob::op(nl.clone()).deadline(std::time::Duration::from_secs(1));
        assert!(export_job(&with_deadline, out).is_err());
        let ac = SimJob::ac(nl.clone(), "Vdrv", vec![1e3, 1e4]);
        assert!(export_job(&ac, out).is_err());
        let unprobed = SimJob::transient(nl.clone(), TranConfig::fixed(1e-9, 1e-8));
        assert!(export_job(&unprobed, out).is_err());
        let shrunk = SimJob::transient(nl, TranConfig::fixed(1e-9, 1e-8))
            .probes(&[out])
            .max_samples(7);
        assert!(export_job(&shrunk, out).is_err());
    }

    #[test]
    fn model_dedup_names_in_first_use_order() {
        let (nl, out) = sample_netlist();
        let text = export_job(&SimJob::op(nl), out).unwrap();
        assert_eq!(text.matches(".model").count(), 2);
        assert!(text.contains(".model m1 nmos level=1"));
        assert!(text.contains(".model m2 nmos level=3"));
        assert!(text.contains(".nodeorder in out mid"));
    }
}

/// Bitwise model deduplication: identical parameter sets share one
/// `.model` card named `m1`, `m2`, … in first-use order.
#[derive(Default)]
struct ModelTable {
    names: HashMap<Vec<u64>, String>,
    cards: Vec<ModelCard>,
}

impl ModelTable {
    fn key1(p: &MosParams) -> Vec<u64> {
        vec![1, p.kp.to_bits(), p.vth.to_bits(), p.lambda.to_bits()]
    }

    fn key3(p: &Mos3Params) -> Vec<u64> {
        vec![
            3,
            p.kp.to_bits(),
            p.vth.to_bits(),
            p.lambda.to_bits(),
            p.theta.to_bits(),
            p.esat_l.to_bits(),
            p.cgs.to_bits(),
            p.cgd.to_bits(),
        ]
    }

    fn intern(&mut self, key: Vec<u64>, level: u8, params: Vec<(String, f64)>) {
        if self.names.contains_key(&key) {
            return;
        }
        let name = format!("m{}", self.cards.len() + 1);
        self.names.insert(key, name.clone());
        self.cards.push(ModelCard {
            name,
            level,
            params: params
                .into_iter()
                .map(|(k, v)| (k, Value::Lit(v)))
                .collect(),
        });
    }

    fn intern1(&mut self, p: &MosParams) {
        let mut params = vec![("kp".to_owned(), p.kp), ("vto".to_owned(), p.vth)];
        if p.lambda != 0.0 {
            params.push(("lambda".to_owned(), p.lambda));
        }
        self.intern(Self::key1(p), 1, params);
    }

    fn intern3(&mut self, p: &Mos3Params) {
        let mut params = vec![("kp".to_owned(), p.kp), ("vto".to_owned(), p.vth)];
        for (key, v) in [
            ("lambda", p.lambda),
            ("theta", p.theta),
            ("cgs", p.cgs),
            ("cgd", p.cgd),
        ] {
            if v != 0.0 {
                params.push((key.to_owned(), v));
            }
        }
        if p.esat_l.is_finite() {
            params.push(("esatl".to_owned(), p.esat_l));
        }
        self.intern(Self::key3(p), 3, params);
    }

    fn name1(&self, p: &MosParams) -> String {
        self.names[&Self::key1(p)].clone()
    }

    fn name3(&self, p: &Mos3Params) -> String {
        self.names[&Self::key3(p)].clone()
    }
}
