//! Physical lines → logical cards.
//!
//! The lexer owns everything below the grammar: comment stripping (`*`
//! full lines, `;` to end of line), `+` continuation joining, `.include`
//! splicing, and tokenization. Every token carries its 1-based line and
//! column (within its own file for included decks), which is what lets
//! every downstream error point at real source.
//!
//! All resource bounds live here: per-file and total byte caps, include
//! depth and count caps, and a per-card token cap, so hostile input is a
//! structured [`DeckError`] long before it can exhaust memory or stack.

use std::sync::Arc;

use crate::error::DeckError;

/// Largest single deck or include file \[bytes\].
pub const MAX_FILE_BYTES: usize = 1 << 20;
/// Largest total input across the deck and every include \[bytes\].
pub const MAX_TOTAL_BYTES: usize = 4 << 20;
/// Deepest permitted `.include` nesting.
pub const MAX_INCLUDE_DEPTH: usize = 8;
/// Most `.include` directives honored in one deck.
pub const MAX_INCLUDES: usize = 64;
/// Most tokens one logical card may accumulate across continuations.
pub const MAX_TOKENS_PER_CARD: usize = 4096;
/// Most logical cards in one deck.
pub const MAX_CARDS: usize = 65_536;

/// One lexical token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Verbatim token text (case preserved; the parser lowercases where
    /// the grammar is case-insensitive).
    pub text: String,
    /// 1-based source line within the token's file.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
    /// True for `"…"` quoted tokens (include paths).
    pub quoted: bool,
}

impl Token {
    /// A [`DeckError`] at this token's position.
    pub fn error(&self, code: &'static str, message: impl Into<String>) -> DeckError {
        DeckError::new(code, self.line, self.col, message)
    }
}

/// One logical card: a non-empty token list, possibly joined from
/// continuation lines, tagged with the include file it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Card {
    /// The tokens, in source order.
    pub tokens: Vec<Token>,
    /// The include file path this card came from (`None` = the main deck).
    pub origin: Option<Arc<str>>,
}

/// Resolves `.include` paths to file contents.
pub trait IncludeLoader {
    /// Loads the contents of `path`, or a human-readable failure message.
    ///
    /// # Errors
    ///
    /// A message embedded into the resulting `include_failed` [`DeckError`].
    fn load(&mut self, path: &str) -> Result<String, String>;
}

/// Refuses every `.include` — the right loader for network input
/// (`POST /v1/decks`) and manifest-embedded decks, where a deck must not
/// reach into the server's filesystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenyIncludes;

impl IncludeLoader for DenyIncludes {
    fn load(&mut self, _path: &str) -> Result<String, String> {
        Err("\".include\" is not allowed in this context".to_owned())
    }
}

/// Loads includes from the filesystem relative to a base directory
/// (`fts run` uses the deck file's directory).
#[derive(Debug, Clone)]
pub struct FsIncludes {
    base: std::path::PathBuf,
}

impl FsIncludes {
    /// A loader resolving relative include paths against `base`.
    pub fn new(base: impl Into<std::path::PathBuf>) -> FsIncludes {
        FsIncludes { base: base.into() }
    }
}

impl IncludeLoader for FsIncludes {
    fn load(&mut self, path: &str) -> Result<String, String> {
        let full = self.base.join(path);
        std::fs::read_to_string(&full).map_err(|e| format!("{}: {e}", full.display()))
    }
}

/// One file being lexed: its pre-split lines and a cursor.
struct Frame {
    lines: Vec<String>,
    next: usize,
    origin: Option<Arc<str>>,
}

/// Lexes `text` (splicing `.include`s through `loader`) into logical
/// cards.
///
/// # Errors
///
/// Structured [`DeckError`]s for size/depth/count violations, unterminated
/// strings, misplaced continuations, and include failures.
pub fn read_deck(text: &str, loader: &mut dyn IncludeLoader) -> Result<Vec<Card>, DeckError> {
    if text.len() > MAX_FILE_BYTES {
        return Err(DeckError::new(
            "deck_too_large",
            1,
            1,
            format!("deck is {} bytes; the cap is {MAX_FILE_BYTES}", text.len()),
        ));
    }
    let mut total = text.len();
    let mut includes = 0usize;
    let mut stack = vec![Frame {
        lines: text.lines().map(str::to_owned).collect(),
        next: 0,
        origin: None,
    }];
    let mut cards: Vec<Card> = Vec::new();

    while let Some(frame) = stack.last_mut() {
        let Some(line) = frame.lines.get(frame.next) else {
            stack.pop();
            continue;
        };
        let lineno = (frame.next + 1) as u32;
        frame.next += 1;
        let origin = frame.origin.clone();

        // Classify by first non-whitespace character.
        let mut chars = line.char_indices().skip_while(|(_, c)| c.is_whitespace());
        let Some((first_idx, first)) = chars.next() else {
            continue; // blank line
        };
        if first == '*' {
            continue; // comment line
        }
        let continuation = first == '+';
        let start = if continuation {
            first_idx + first.len_utf8()
        } else {
            first_idx
        };
        let start_col = line[..start].chars().count() as u32 + 1;
        let tokens = tokenize(&line[start..], lineno, start_col)?;
        if tokens.is_empty() {
            continue; // lone "+" or ";comment" line
        }

        if continuation {
            let Some(card) = cards.last_mut() else {
                return Err(DeckError::new(
                    "bad_continuation",
                    lineno,
                    start_col.saturating_sub(1),
                    "continuation line with no card to continue",
                ));
            };
            if card.tokens.len() + tokens.len() > MAX_TOKENS_PER_CARD {
                return Err(DeckError::new(
                    "card_too_long",
                    lineno,
                    1,
                    format!("card exceeds {MAX_TOKENS_PER_CARD} tokens"),
                ));
            }
            card.tokens.extend(tokens);
            continue;
        }

        if tokens[0].text.eq_ignore_ascii_case(".include") {
            let path_tok = match tokens.as_slice() {
                [_, p] => p,
                _ => {
                    return Err(tokens[0].error(
                        "bad_include",
                        "\".include\" takes exactly one path argument",
                    ))
                }
            };
            includes += 1;
            if includes > MAX_INCLUDES {
                return Err(path_tok.error(
                    "include_count",
                    format!("more than {MAX_INCLUDES} .include directives"),
                ));
            }
            if stack.len() > MAX_INCLUDE_DEPTH {
                return Err(path_tok.error(
                    "include_depth",
                    format!("includes nested deeper than {MAX_INCLUDE_DEPTH}"),
                ));
            }
            let loaded = loader
                .load(&path_tok.text)
                .map_err(|msg| path_tok.error("include_failed", msg))?;
            if loaded.len() > MAX_FILE_BYTES {
                return Err(path_tok.error(
                    "deck_too_large",
                    format!(
                        "include {:?} is {} bytes; the cap is {MAX_FILE_BYTES}",
                        path_tok.text,
                        loaded.len()
                    ),
                ));
            }
            total += loaded.len();
            if total > MAX_TOTAL_BYTES {
                return Err(path_tok.error(
                    "deck_too_large",
                    format!("total deck size exceeds {MAX_TOTAL_BYTES} bytes"),
                ));
            }
            stack.push(Frame {
                lines: loaded.lines().map(str::to_owned).collect(),
                next: 0,
                origin: Some(Arc::from(path_tok.text.as_str())),
            });
            continue;
        }

        if tokens.len() > MAX_TOKENS_PER_CARD {
            return Err(DeckError::new(
                "card_too_long",
                lineno,
                1,
                format!("card exceeds {MAX_TOKENS_PER_CARD} tokens"),
            ));
        }
        if cards.len() >= MAX_CARDS {
            return Err(DeckError::new(
                "deck_too_large",
                lineno,
                1,
                format!("more than {MAX_CARDS} cards"),
            ));
        }
        cards.push(Card { tokens, origin });
    }
    Ok(cards)
}

/// Tokenizes one line fragment. `col0` is the 1-based column of the
/// fragment's first character.
fn tokenize(text: &str, line: u32, col0: u32) -> Result<Vec<Token>, DeckError> {
    let mut out = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let col = col0 + i as u32;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == ';' {
            break; // inline comment
        }
        if c == '"' {
            let mut s = String::new();
            i += 1;
            loop {
                match chars.get(i) {
                    None => {
                        return Err(DeckError::new(
                            "unterminated_string",
                            line,
                            col,
                            "unterminated quoted string",
                        ))
                    }
                    Some('"') => {
                        i += 1;
                        break;
                    }
                    Some(&c) => {
                        s.push(c);
                        i += 1;
                    }
                }
            }
            out.push(Token {
                text: s,
                line,
                col,
                quoted: true,
            });
            continue;
        }
        if matches!(c, '(' | ')' | '=' | ',') {
            out.push(Token {
                text: c.to_string(),
                line,
                col,
                quoted: false,
            });
            i += 1;
            continue;
        }
        let start = i;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() || matches!(c, ';' | '"' | '(' | ')' | '=' | ',') {
                break;
            }
            i += 1;
        }
        out.push(Token {
            text: chars[start..i].iter().collect(),
            line,
            col,
            quoted: false,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(text: &str) -> Vec<Card> {
        read_deck(text, &mut DenyIncludes).unwrap()
    }

    fn texts(card: &Card) -> Vec<&str> {
        card.tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn comments_blanks_and_positions() {
        let cards = lex("* title line\n\nr1 a b 1k ; pull-up\n  * indented comment\nc1 b 0 1p\n");
        assert_eq!(cards.len(), 2);
        assert_eq!(texts(&cards[0]), ["r1", "a", "b", "1k"]);
        assert_eq!((cards[0].tokens[0].line, cards[0].tokens[0].col), (3, 1));
        assert_eq!((cards[0].tokens[3].line, cards[0].tokens[3].col), (3, 8));
        assert_eq!(cards[1].tokens[0].line, 5);
    }

    #[test]
    fn continuations_join_cards() {
        let cards = lex("v1 in 0 pulse ( 0 1\n+ 1n 1n 1n\n+5u 0 )\n");
        assert_eq!(cards.len(), 1);
        assert_eq!(
            texts(&cards[0]),
            ["v1", "in", "0", "pulse", "(", "0", "1", "1n", "1n", "1n", "5u", "0", ")"]
        );
        // The continued tokens keep their own line numbers.
        assert_eq!(cards[0].tokens[7].line, 2);
        assert_eq!(cards[0].tokens[10].line, 3);
    }

    #[test]
    fn punctuation_splits_without_spaces() {
        let cards = lex(".probe v(out)\n.model m1 nmos kp=2e-4,vto=0.7\n");
        assert_eq!(texts(&cards[0]), [".probe", "v", "(", "out", ")"]);
        assert_eq!(
            texts(&cards[1]),
            [".model", "m1", "nmos", "kp", "=", "2e-4", ",", "vto", "=", "0.7"]
        );
    }

    #[test]
    fn leading_continuation_is_an_error() {
        let e = read_deck("+ r1 a b 1k\n", &mut DenyIncludes).unwrap_err();
        assert_eq!(e.code, "bad_continuation");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let e = read_deck(".include \"half\n", &mut DenyIncludes).unwrap_err();
        assert_eq!(e.code, "unterminated_string");
        assert_eq!((e.line, e.col), (1, 10));
    }

    #[test]
    fn includes_are_denied_by_default() {
        let e = read_deck("* t\n.include \"lib.cir\"\n", &mut DenyIncludes).unwrap_err();
        assert_eq!(e.code, "include_failed");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("not allowed"), "{e}");
    }

    #[test]
    fn include_depth_bomb_is_bounded() {
        // A loader that returns another include forever.
        struct Bomb;
        impl IncludeLoader for Bomb {
            fn load(&mut self, _p: &str) -> Result<String, String> {
                Ok(".include \"again\"\n".to_owned())
            }
        }
        let e = read_deck(".include \"start\"\n", &mut Bomb).unwrap_err();
        assert_eq!(e.code, "include_depth");
    }

    #[test]
    fn include_count_bomb_is_bounded() {
        // Each include expands to one resistor — fine — but a deck of
        // MAX_INCLUDES+1 direct includes must be refused.
        struct Lib;
        impl IncludeLoader for Lib {
            fn load(&mut self, _p: &str) -> Result<String, String> {
                Ok("r1 a b 1k\n".to_owned())
            }
        }
        let deck: String = (0..=MAX_INCLUDES)
            .map(|k| format!(".include \"lib{k}\"\n"))
            .collect();
        let e = read_deck(&deck, &mut Lib).unwrap_err();
        assert_eq!(e.code, "include_count");
    }

    #[test]
    fn included_cards_carry_their_origin() {
        struct Lib;
        impl IncludeLoader for Lib {
            fn load(&mut self, _p: &str) -> Result<String, String> {
                Ok("* lib\nc9 x 0 1p\n".to_owned())
            }
        }
        let cards = read_deck("r1 a b 1k\n.include \"lib.cir\"\nr2 b 0 2k\n", &mut Lib).unwrap();
        assert_eq!(cards.len(), 3);
        assert_eq!(cards[0].origin, None);
        assert_eq!(cards[1].origin.as_deref(), Some("lib.cir"));
        // Lines inside the include are numbered within the include.
        assert_eq!(cards[1].tokens[0].line, 2);
        assert_eq!(cards[2].origin, None);
        assert_eq!(cards[2].tokens[0].line, 3);
    }

    #[test]
    fn oversized_deck_is_rejected_up_front() {
        let big = "x".repeat(MAX_FILE_BYTES + 1);
        let e = read_deck(&big, &mut DenyIncludes).unwrap_err();
        assert_eq!(e.code, "deck_too_large");
    }

    #[test]
    fn token_bomb_card_is_bounded() {
        let mut deck = String::from("r1");
        for _ in 0..MAX_TOKENS_PER_CARD {
            deck.push_str("\n+ a b");
        }
        let e = read_deck(&deck, &mut DenyIncludes).unwrap_err();
        assert_eq!(e.code, "card_too_long");
    }
}
