//! The one fuzz-hardened number path.
//!
//! Two front ends read floating-point literals from untrusted text: the
//! server's JSON parser (`fts-server::wire::Json`) and the deck parser in
//! this crate. Both validate through this module, so hardening decisions
//! — most importantly **rejecting literals that overflow to infinity**
//! (`1e999` must be a parse error, not `inf` smuggled into a simulation)
//! — are made exactly once.
//!
//! [`parse_json_f64`] enforces the strict JSON number grammar;
//! [`parse_spice`] accepts the lenient SPICE dialect: optional leading
//! `+`, bare `.5` / `5.` forms, SI scale suffixes (`1k`, `2.2u`,
//! `10meg`), and trailing unit letters that SPICE ignores (`1kohm`).

/// Scans a float at the start of `b` and returns the byte length of the
/// numeric part (mantissa + exponent), or `None` when no valid float
/// starts there. `json` selects the strict JSON grammar: no leading `+`,
/// no bare `.5` / `5.`, no leading zeros like `01`.
fn float_len(b: &[u8], json: bool) -> Option<usize> {
    let mut i = 0;
    if i < b.len() && (b[i] == b'-' || (!json && b[i] == b'+')) {
        i += 1;
    }
    let int_start = i;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    let int_digits = i - int_start;
    if json && int_digits == 0 {
        return None;
    }
    if json && int_digits > 1 && b[int_start] == b'0' {
        return None;
    }
    let mut frac_digits = 0;
    if i < b.len() && b[i] == b'.' {
        let dot = i;
        i += 1;
        let frac_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        frac_digits = i - frac_start;
        if frac_digits == 0 {
            if json {
                return None;
            }
            // SPICE accepts "5." but a lone "." is not a number.
            if int_digits == 0 {
                return None;
            }
            let _ = dot;
        }
    }
    if int_digits == 0 && frac_digits == 0 {
        return None;
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        let mark = i;
        i += 1;
        if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
            i += 1;
        }
        let exp_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == exp_start {
            if json {
                return None;
            }
            // SPICE: "1e" is the number 1 followed by a unit letter.
            i = mark;
        }
    }
    Some(i)
}

/// Parses a complete strict-JSON number token to a **finite** `f64`.
///
/// Returns `None` for grammar violations (`+1`, `01`, `1.`, `.5`, empty
/// or trailing text) and for literals whose value overflows to infinity.
pub fn parse_json_f64(text: &str) -> Option<f64> {
    let b = text.as_bytes();
    if float_len(b, true)? != b.len() {
        return None;
    }
    let v: f64 = text.parse().ok()?;
    v.is_finite().then_some(v)
}

/// The scale factor for a SPICE unit suffix, or `None` when `suffix` is
/// not purely alphabetic. Unknown letters scale by 1 (SPICE ignores
/// trailing unit names like `ohm` or `v`); `meg`/`mil` are matched before
/// the single-letter `m`.
fn suffix_scale(suffix: &str) -> Option<f64> {
    if !suffix.bytes().all(|b| b.is_ascii_alphabetic()) {
        return None;
    }
    let lower = suffix.to_ascii_lowercase();
    Some(if lower.starts_with("meg") {
        1e6
    } else if lower.starts_with("mil") {
        25.4e-6
    } else {
        match lower.bytes().next() {
            Some(b't') => 1e12,
            Some(b'g') => 1e9,
            Some(b'k') => 1e3,
            Some(b'm') => 1e-3,
            Some(b'u') => 1e-6,
            Some(b'n') => 1e-9,
            Some(b'p') => 1e-12,
            Some(b'f') => 1e-15,
            _ => 1.0,
        }
    })
}

/// Parses a complete SPICE value token (`1k`, `2.2u`, `10meg`, `.5`,
/// `1kohm`) to a **finite** `f64`.
///
/// Returns `None` when no float starts the token, the trailing suffix is
/// not purely alphabetic, or the scaled value is non-finite.
pub fn parse_spice(text: &str) -> Option<f64> {
    let b = text.as_bytes();
    let n = float_len(b, false)?;
    let v: f64 = text[..n].parse().ok()?;
    let scale = suffix_scale(&text[n..])?;
    let scaled = v * scale;
    scaled.is_finite().then_some(scaled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_grammar_is_strict() {
        assert_eq!(parse_json_f64("1.5"), Some(1.5));
        assert_eq!(parse_json_f64("-2e3"), Some(-2000.0));
        assert_eq!(parse_json_f64("0.5"), Some(0.5));
        assert_eq!(parse_json_f64("0"), Some(0.0));
        for bad in [
            "", "+1", "01", "1.", ".5", "1e", "1e+", "--1", "1x", "nan", "inf", "1 ",
        ] {
            assert_eq!(parse_json_f64(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn overflow_to_infinity_is_rejected_everywhere() {
        assert_eq!(parse_json_f64("1e999"), None);
        assert_eq!(parse_json_f64("-1e999"), None);
        assert_eq!(parse_spice("1e999"), None);
        assert_eq!(parse_spice("1e308k"), None, "finite float, infinite scaled");
    }

    #[test]
    fn spice_suffixes_scale() {
        // The suffix applies by multiplication, so expectations are
        // written as `mantissa * scale` (bit-exact), not as one literal.
        assert_eq!(parse_spice("1k"), Some(1e3));
        assert_eq!(parse_spice("2.2u"), Some(2.2 * 1e-6));
        assert_eq!(parse_spice("10meg"), Some(10e6));
        assert_eq!(parse_spice("10MEG"), Some(10e6));
        assert_eq!(parse_spice("3m"), Some(3.0 * 1e-3));
        assert_eq!(parse_spice("1mil"), Some(25.4e-6));
        assert_eq!(parse_spice("4t"), Some(4e12));
        assert_eq!(parse_spice("5g"), Some(5e9));
        assert_eq!(parse_spice("6n"), Some(6.0 * 1e-9));
        assert_eq!(parse_spice("7p"), Some(7.0 * 1e-12));
        assert_eq!(parse_spice("8f"), Some(8.0 * 1e-15));
        // Trailing unit names are ignored; the scale letter still applies.
        assert_eq!(parse_spice("1kohm"), Some(1e3));
        assert_eq!(parse_spice("5v"), Some(5.0));
        assert_eq!(parse_spice("1e3"), Some(1e3));
        assert_eq!(parse_spice("1e"), Some(1.0), "e starts a unit suffix");
    }

    #[test]
    fn spice_lenient_forms() {
        assert_eq!(parse_spice(".5"), Some(0.5));
        assert_eq!(parse_spice("5."), Some(5.0));
        assert_eq!(parse_spice("+3"), Some(3.0));
        assert_eq!(parse_spice("-1.5n"), Some(-1.5 * 1e-9));
        for bad in ["", ".", "k", "1..2", "1k2", "1-", "1k ", "--3"] {
            assert_eq!(parse_spice(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn display_round_trips_through_json_grammar() {
        // `json_f64` renders finite floats with `{}`; the strict grammar
        // must accept every such rendering exactly.
        for v in [
            0.0,
            -0.0,
            1.5,
            -2.25e-7,
            f64::MIN_POSITIVE,
            f64::MAX,
            1.0 / 3.0,
        ] {
            let text = format!("{v}");
            let back = parse_json_f64(&text).unwrap_or_else(|| panic!("{text} rejected"));
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }
}
